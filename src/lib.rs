//! Umbrella crate for the robust-metabolic-pathway-design workspace.
//!
//! This package re-exports the workspace's public crates under one roof and
//! owns the root-level integration tests (`tests/`) and examples
//! (`examples/`). The science lives in the member crates:
//!
//! * [`linalg`] — vectors, matrices, LU, sparse storage, simplex LP;
//! * [`ode`] — explicit/implicit integrators and steady-state detection;
//! * [`kinetics`] — rate laws, enzyme networks, nitrogen accounting;
//! * [`moo`] — NSGA-II, MOEA/D, the PMO2 archipelago, metrics, mining,
//!   robustness ensembles;
//! * [`fba`] — flux balance analysis and the *Geobacter sulfurreducens*
//!   model;
//! * [`photosynthesis`] — the C3 leaf kinetic model and CO₂-uptake
//!   scenarios;
//! * [`core`] — the paper-level studies, problems, and reporting.
//!
//! ```
//! use pathway::core::prelude::*;
//!
//! let problem = LeafRedesignProblem::new(Scenario::present_low_export());
//! assert_eq!(problem.num_variables(), 23);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub use pathway_core as core;
pub use pathway_fba as fba;
pub use pathway_kinetics as kinetics;
pub use pathway_linalg as linalg;
pub use pathway_moo as moo;
pub use pathway_ode as ode;
pub use pathway_photosynthesis as photosynthesis;

pub use pathway_core::prelude;
