//! The TCP front of the daemon: accept loop, connection handlers, and the
//! bridge between socket lines and scheduler [`Command`]s.
//!
//! # Threading model
//!
//! Three kinds of thread, none of which ever blocks on a job:
//!
//! * **the scheduler thread** runs [`Scheduler::run`] — all job state
//!   lives there, and every generation of every study is stepped there;
//! * **the accept thread** turns incoming connections into detached
//!   connection threads;
//! * **connection threads** parse request lines, ship [`Command`]s to the
//!   scheduler, and write replies. They block only on their own socket
//!   and on per-command reply channels, both of which the scheduler
//!   services between generation steps.
//!
//! `status` replies are assembled on the connection thread so the
//! [`ExecutorHealth`] gauges are read *live* — the scheduler thread only
//! observes the pool between turns, when it is always idle.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use pathway_core::jsonlite::JsonValue;
use pathway_core::obs::{profile_json, ProfileData};
use pathway_moo::engine::telemetry::duration_us;
use pathway_moo::engine::MetricsRegistry;
use pathway_moo::Executor;

use crate::scheduler::{atomic_write, Command, Scheduler};
use crate::wire::{
    error_response, ok_response, ExecutorHealth, JobState, Request, StatusSnapshot, WatchEvent,
    PROTOCOL_VERSION, SERVER_NAME,
};

/// Name of the file under the data dir holding the daemon's live
/// `host:port`, written on startup. Clients resolve a data dir to an
/// address through it (see [`crate::client::read_endpoint`]).
pub const ENDPOINT_FILE: &str = "endpoint";

/// Everything needed to start a daemon.
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub listen: String,
    /// Daemon data directory; jobs live in `<data_dir>/jobs/`.
    pub data_dir: PathBuf,
    /// The shared evaluation executor every job schedules onto.
    pub executor: Arc<Executor>,
    /// Suppress the startup line on stderr.
    pub quiet: bool,
}

/// A running daemon: bound socket, scheduler thread, accept thread.
pub struct Server {
    addr: SocketAddr,
    scheduler_thread: JoinHandle<()>,
    accept_thread: JoinHandle<()>,
    shutting_down: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener, restores the scheduler from the data dir
    /// (resuming every in-flight job), records the live address in the
    /// data dir's [`ENDPOINT_FILE`], and starts serving.
    ///
    /// # Errors
    ///
    /// A message when the address cannot be bound, the data dir cannot be
    /// created or scanned, or the endpoint file cannot be written.
    pub fn start(config: ServeConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(&config.listen)
            .map_err(|err| format!("cannot bind {}: {err}", config.listen))?;
        let addr = listener
            .local_addr()
            .map_err(|err| format!("cannot read bound address: {err}"))?;
        let scheduler = Scheduler::open(&config.data_dir, Arc::clone(&config.executor))?;
        let endpoint = config.data_dir.join(ENDPOINT_FILE);
        atomic_write(&endpoint, format!("{addr}\n").as_bytes())
            .map_err(|err| format!("cannot write {}: {err}", endpoint.display()))?;
        if !config.quiet {
            eprintln!(
                "pathway serve: listening on {addr}, data dir {}",
                config.data_dir.display()
            );
        }

        // Cloned before the scheduler thread takes the scheduler: registry
        // shards are shared, so connection threads snapshot live telemetry
        // without a scheduler round-trip.
        let telemetry = Arc::new(ConnectionTelemetry {
            metrics: scheduler.metrics().clone(),
            label: config.data_dir.display().to_string(),
            started: Instant::now(),
        });
        let (commands, command_rx) = channel::<Command>();
        let scheduler_thread = std::thread::spawn(move || scheduler.run(command_rx));

        let shutting_down = Arc::new(AtomicBool::new(false));
        let accept_flag = Arc::clone(&shutting_down);
        let executor = Arc::clone(&config.executor);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let commands = commands.clone();
                let executor = Arc::clone(&executor);
                let telemetry = Arc::clone(&telemetry);
                std::thread::spawn(move || {
                    handle_connection(stream, commands, executor, telemetry)
                });
            }
            // `commands` drops here; with every connection finished the
            // scheduler loop sees a disconnected channel and exits too.
        });

        Ok(Server {
            addr,
            scheduler_thread,
            accept_thread,
            shutting_down,
        })
    }

    /// The address the daemon actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the daemon shuts down (a client sent `shutdown`), then
    /// tears down the accept loop.
    pub fn join(self) {
        // The scheduler thread returns only after Command::Shutdown has
        // checkpointed every running job.
        let _ = self.scheduler_thread.join();
        self.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept_thread.join();
    }
}

/// What a connection thread needs to answer `metrics` locally: the
/// daemon-wide registry plus the identity fields of the profile document.
struct ConnectionTelemetry {
    metrics: MetricsRegistry,
    label: String,
    started: Instant,
}

/// Writes one reply line; `false` when the client hung up.
fn write_line(stream: &mut TcpStream, line: &str) -> bool {
    use std::io::Write;
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .is_ok()
}

/// One client connection: a sequence of request lines, each answered (or,
/// for `watch`, streamed) before the next is read.
fn handle_connection(
    stream: TcpStream,
    commands: Sender<Command>,
    executor: Arc<Executor>,
    telemetry: Arc<ConnectionTelemetry>,
) {
    use std::io::BufRead;
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let reader = std::io::BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(&line) {
            Ok(request) => request,
            Err(message) => {
                if !write_line(&mut writer, &error_response(message).to_compact()) {
                    return;
                }
                continue;
            }
        };
        let served = match request {
            Request::Ping => write_line(
                &mut writer,
                &ok_response([
                    ("server".to_string(), JsonValue::string(SERVER_NAME)),
                    ("version".to_string(), JsonValue::Int(PROTOCOL_VERSION)),
                ])
                .to_compact(),
            ),
            Request::Submit { spec_text } => {
                let reply = ask(&commands, |reply| Command::Submit {
                    text: spec_text,
                    reply,
                });
                let body = match reply {
                    Some(Ok(jobs)) => ok_response([(
                        "jobs".to_string(),
                        JsonValue::Array(jobs.iter().map(|job| job.to_json()).collect()),
                    )]),
                    Some(Err(message)) => error_response(message),
                    None => error_response("daemon is shutting down"),
                };
                write_line(&mut writer, &body.to_compact())
            }
            Request::Status => {
                let body = match ask(&commands, |reply| Command::Status { reply }) {
                    Some(jobs) => {
                        // Gauges are sampled here, on the connection
                        // thread, while jobs are actually being stepped.
                        let stats = executor.stats();
                        StatusSnapshot {
                            executor: ExecutorHealth {
                                workers: stats.workers,
                                queued_chunks: stats.queued_chunks,
                                active_workers: stats.active_workers,
                            },
                            jobs,
                        }
                        .to_json()
                    }
                    None => error_response("daemon is shutting down"),
                };
                write_line(&mut writer, &body.to_compact())
            }
            Request::Metrics => {
                // Job totals come from the scheduler; the metric shards
                // themselves are snapshotted right here, live.
                let body = match ask(&commands, |reply| Command::Status { reply }) {
                    Some(jobs) => {
                        let generations: u64 = jobs.iter().map(|job| job.generation as u64).sum();
                        let evaluations: u64 = jobs.iter().map(|job| job.evaluations as u64).sum();
                        let snapshot = telemetry.metrics.snapshot();
                        let profile = profile_json(&ProfileData {
                            source: "serve",
                            label: &telemetry.label,
                            generations,
                            evaluations,
                            wall_ms: duration_us(telemetry.started.elapsed()) / 1000,
                            snapshot: &snapshot,
                        });
                        ok_response([("profile".to_string(), profile)])
                    }
                    None => error_response("daemon is shutting down"),
                };
                write_line(&mut writer, &body.to_compact())
            }
            Request::Watch { job } => {
                let reply = ask(&commands, |reply| Command::Watch {
                    job: job.clone(),
                    reply,
                });
                match reply {
                    Some(Ok((summary, reports))) => {
                        let ack = ok_response([
                            ("job".to_string(), JsonValue::string(summary.id.clone())),
                            (
                                "state".to_string(),
                                JsonValue::string(summary.state.as_str()),
                            ),
                        ]);
                        if !write_line(&mut writer, &ack.to_compact()) {
                            return;
                        }
                        let mut last_generation = summary.generation;
                        // Stream until the job finishes (scheduler drops
                        // the observer) or the client hangs up (our write
                        // fails; the scheduler prunes the dead observer
                        // after its next step).
                        let mut client_alive = true;
                        for report in reports {
                            last_generation = report.generation;
                            let event = WatchEvent::Generation {
                                job: summary.id.clone(),
                                generation: report.generation,
                                evaluations: report.evaluations,
                                front_size: report.front_size,
                                hypervolume: report.hypervolume,
                                duration_us: duration_us(report.wall_clock),
                            };
                            if !write_line(&mut writer, &event.encode()) {
                                client_alive = false;
                                break;
                            }
                        }
                        if !client_alive {
                            return;
                        }
                        let state = final_state(&commands, &summary.id).unwrap_or(summary.state);
                        let end = WatchEvent::End {
                            job: summary.id,
                            state,
                            generation: last_generation,
                        };
                        write_line(&mut writer, &end.encode())
                    }
                    Some(Err(message)) => {
                        write_line(&mut writer, &error_response(message).to_compact())
                    }
                    None => write_line(
                        &mut writer,
                        &error_response("daemon is shutting down").to_compact(),
                    ),
                }
            }
            Request::Cancel { job } => {
                let reply = ask(&commands, |reply| Command::Cancel { job, reply });
                let body = match reply {
                    Some(Ok(summary)) => {
                        let JsonValue::Object(fields) = summary.to_json() else {
                            unreachable!("job summaries are objects")
                        };
                        ok_response(fields)
                    }
                    Some(Err(message)) => error_response(message),
                    None => error_response("daemon is shutting down"),
                };
                write_line(&mut writer, &body.to_compact())
            }
            Request::FetchFront { job } => {
                let reply = ask(&commands, |reply| Command::FetchFront { job, reply });
                let body = match reply {
                    Some(Ok((summary, front))) => {
                        let JsonValue::Object(mut fields) = summary.to_json() else {
                            unreachable!("job summaries are objects")
                        };
                        fields.push(("front".to_string(), JsonValue::string(front)));
                        ok_response(fields)
                    }
                    Some(Err(message)) => error_response(message),
                    None => error_response("daemon is shutting down"),
                };
                write_line(&mut writer, &body.to_compact())
            }
            Request::Shutdown => {
                let (written_tx, written_rx) = channel();
                let acknowledged = ask(&commands, |reply| Command::Shutdown {
                    reply,
                    written: written_rx,
                });
                let body = match acknowledged {
                    Some(()) => ok_response([]),
                    None => error_response("daemon is already shutting down"),
                };
                write_line(&mut writer, &body.to_compact());
                // The scheduler holds the daemon open until this signal:
                // only now that the reply is on the wire may the process
                // exit. Without the handshake a loaded host could tear the
                // daemon down before this thread got scheduled to write,
                // and the client would see the connection close instead of
                // its acknowledgement.
                let _ = written_tx.send(());
                return;
            }
        };
        if !served {
            return;
        }
    }
}

/// Ships one command and waits for its reply. `None` when the scheduler is
/// gone (daemon shutting down).
fn ask<R>(commands: &Sender<Command>, build: impl FnOnce(Sender<R>) -> Command) -> Option<R> {
    let (reply_tx, reply_rx) = channel();
    commands.send(build(reply_tx)).ok()?;
    reply_rx.recv().ok()
}

/// The job's state after its watch stream closed, via a status query.
fn final_state(commands: &Sender<Command>, job: &str) -> Option<JobState> {
    let jobs = ask(commands, |reply| Command::Status { reply })?;
    jobs.into_iter()
        .find(|summary| summary.id == job)
        .map(|summary| summary.state)
}
