//! The job scheduler: many concurrent studies as cooperative step-driven
//! actors on one shared [`Executor`].
//!
//! # Why actors instead of worker threads
//!
//! The obvious daemon shape — one blocking thread per job, each calling
//! `Driver::run` — composes badly with the shared evaluation pool: a job
//! thread that blocked inside the pool while other jobs' chunks saturate it
//! is exactly the nested-submission deadlock `Executor::map_chunks`
//! documents. The scheduler dissolves the problem structurally: **no thread
//! ever blocks for a job's lifetime**. Every job is a parked
//! [`Driver`] owning its problem (the owned-driver form
//! [`pathway_core::owned_spec_driver`] builds), and the scheduler thread
//! advances them round-robin, one `Driver::step` per turn. Each step
//! submits its evaluation chunks to the shared pool from the scheduler
//! thread — the ordinary caller-participates path — so the pool's workers
//! only ever see leaf chunk closures, never a whole study. Fairness falls
//! out of the same structure: with turns interleaved generation-by-
//! generation, a 100-generation study cannot starve a 5-generation one,
//! and any number of concurrent jobs make progress on any number of
//! workers (including one).
//!
//! # Durability
//!
//! Every job lives under `<data-dir>/jobs/<id>/`:
//!
//! ```text
//! job.spec       canonical run-spec text (written atomically at submit)
//! checkpoints/   a CheckpointStore, saved at the spec's checkpoint_every
//! front.front    final front, pathway-front v1 (atomic; presence = completed)
//! cancelled      marker file (presence = cancelled)
//! failed         marker file holding the failure message
//! ```
//!
//! [`Scheduler::open`] rebuilds the whole job table from this layout, so a
//! `kill -9` loses at most the generations since each job's last
//! checkpoint boundary — and the engine's bit-identical resume guarantee
//! makes the replayed generations indistinguishable from never having been
//! interrupted.

use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pathway_core::{
    owned_resume_spec_driver, owned_spec_driver, sweep::render_front,
    validate_spec_against_problem, AnyProblem,
};
use pathway_moo::engine::telemetry::duration_us;
use pathway_moo::engine::{
    AnyOptimizer, ChannelObserver, CheckpointStore, Driver, GenerationReport, MetricsRegistry,
    Observer, RunSpec, SweepSpec,
};
use pathway_moo::Executor;

use crate::wire::{JobState, JobSummary};

/// Buckets for per-job turn latency (`serve.turn_us`): one generation of
/// one job, from sub-millisecond benchmarks to multi-second oracles.
const TURN_BOUNDS_US: [f64; 10] = [
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 50000.0, 250000.0, 1000000.0,
];

/// Buckets for scheduler-loop lag (`serve.loop_lag_us`): the gap between
/// consecutive turns spent draining commands and channel-parking.
const LAG_BOUNDS_US: [f64; 8] = [
    10.0, 50.0, 100.0, 500.0, 1000.0, 10000.0, 100000.0, 1000000.0,
];

/// Environment variable throttling the scheduler (milliseconds slept after
/// every job step). Exists for tests that need a window to observe — or
/// kill — a mid-flight daemon; unset or `0` in normal operation.
pub const STEP_SLEEP_ENV: &str = "PATHWAY_SERVE_STEP_SLEEP_MS";

/// One parked study: an owned driver plus its durable surroundings.
struct JobSlot {
    id: String,
    spec: RunSpec,
    dir: PathBuf,
    store: CheckpointStore,
    problem_name: String,
    optimizer_kind: String,
    state: JobState,
    error: Option<String>,
    /// `Some` while running; dropped on completion/cancellation/failure.
    driver: Option<Driver<AnyProblem, AnyOptimizer>>,
    /// One telemetry sink per attached `watch` client; disconnected sinks
    /// are pruned after every step.
    watchers: Vec<ChannelObserver>,
    generation: usize,
    evaluations: usize,
    front_size: usize,
}

impl JobSlot {
    fn summary(&self) -> JobSummary {
        JobSummary {
            id: self.id.clone(),
            state: self.state,
            error: self.error.clone(),
            problem: self.problem_name.clone(),
            optimizer: self.optimizer_kind.clone(),
            spec_hash: format!("{:#018x}", self.spec.content_hash()),
            generation: self.generation,
            max_generations: self.spec.stopping.max_generations,
            evaluations: self.evaluations,
            front_size: self.front_size,
            watchers: self.watchers.len(),
        }
    }
}

/// A command shipped from a connection thread to the scheduler thread.
///
/// Replies go back through per-command channels; a dropped reply receiver
/// (client hung up mid-command) is ignored.
pub enum Command {
    /// Register every job a spec document describes.
    Submit {
        /// Run-spec or sweep-spec text.
        text: String,
        /// Summaries of the registered jobs, or why registration failed.
        reply: Sender<Result<Vec<JobSummary>, String>>,
    },
    /// Snapshot every job.
    Status {
        /// All jobs in submission order.
        reply: Sender<Vec<JobSummary>>,
    },
    /// Attach a telemetry stream to a job.
    Watch {
        /// Job id.
        job: String,
        /// The job at attach time plus the report stream (closed already
        /// for terminal jobs).
        reply: Sender<Result<(JobSummary, Receiver<GenerationReport>), String>>,
    },
    /// Cancel a job.
    Cancel {
        /// Job id.
        job: String,
        /// The job after cancellation.
        reply: Sender<Result<JobSummary, String>>,
    },
    /// Fetch a job's front rendering.
    FetchFront {
        /// Job id.
        job: String,
        /// The job plus its `pathway-front v1` text.
        reply: Sender<Result<(JobSummary, String), String>>,
    },
    /// Checkpoint every running job, then stop the scheduler loop.
    Shutdown {
        /// Acknowledged once every running job is checkpointed.
        reply: Sender<()>,
        /// Signalled (or dropped) by the connection thread once the
        /// acknowledgement has been written to the client socket. The
        /// scheduler delays its exit — and with it process teardown —
        /// until then, so the reply can't lose a race with the daemon's
        /// death and strand the client on a closed connection.
        written: Receiver<()>,
    },
}

/// The scheduler: owns the job table and the scheduling loop.
///
/// Connection threads talk to a running scheduler through [`Command`]s
/// ([`Scheduler::run`]); tests drive it synchronously through
/// [`Scheduler::turn`] and the direct command methods — both paths share
/// the same implementation.
pub struct Scheduler {
    data_dir: PathBuf,
    executor: Arc<Executor>,
    jobs: Vec<JobSlot>,
    /// Round-robin position for the next turn.
    cursor: usize,
    /// Next job number (one past the highest ever used).
    next_job: usize,
    /// Test-only throttle; see [`STEP_SLEEP_ENV`].
    step_sleep: Duration,
    /// Daemon-wide telemetry: job drivers, the shared executor, and the
    /// scheduler loop itself all record here; `metrics` requests snapshot
    /// it live.
    metrics: MetricsRegistry,
    /// When the previous [`Scheduler::turn`] finished stepping a job;
    /// the gap to the next turn is `serve.loop_lag_us`.
    last_turn_ended: Option<Instant>,
}

impl Scheduler {
    /// Opens (or creates) a daemon data directory and restores every job
    /// recorded in it: completed/cancelled/failed jobs come back as
    /// terminal rows, in-flight jobs resume from their latest checkpoint —
    /// bit-identically, per the engine's resume guarantee — or from
    /// scratch if none was written yet.
    ///
    /// # Errors
    ///
    /// A message when the data directory cannot be created or scanned. A
    /// *single job* failing to restore does not fail the open; the job is
    /// surfaced as [`JobState::Failed`] instead.
    pub fn open(data_dir: impl Into<PathBuf>, executor: Arc<Executor>) -> Result<Self, String> {
        let data_dir = data_dir.into();
        let jobs_dir = data_dir.join("jobs");
        std::fs::create_dir_all(&jobs_dir)
            .map_err(|err| format!("cannot create {}: {err}", jobs_dir.display()))?;
        let step_sleep = std::env::var(STEP_SLEEP_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::ZERO);
        let metrics = MetricsRegistry::new();
        // First-wins: a fresh daemon executor adopts this registry; an
        // executor that already reports elsewhere keeps doing so.
        executor.set_metrics(metrics.clone());
        let mut scheduler = Scheduler {
            data_dir,
            executor,
            jobs: Vec::new(),
            cursor: 0,
            next_job: 1,
            step_sleep,
            metrics,
            last_turn_ended: None,
        };
        scheduler.restore(&jobs_dir)?;
        Ok(scheduler)
    }

    /// The daemon data directory this scheduler persists into.
    pub fn data_dir(&self) -> &Path {
        &self.data_dir
    }

    /// The daemon-wide telemetry registry. Clone it before spawning the
    /// scheduler loop; snapshots taken from other threads merge every
    /// shard live.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    fn jobs_dir(&self) -> PathBuf {
        self.data_dir.join("jobs")
    }

    /// Rebuilds the job table from the on-disk layout.
    fn restore(&mut self, jobs_dir: &Path) -> Result<(), String> {
        let mut names: Vec<String> = std::fs::read_dir(jobs_dir)
            .map_err(|err| format!("cannot scan {}: {err}", jobs_dir.display()))?
            .filter_map(|entry| entry.ok())
            .filter(|entry| entry.path().is_dir())
            .filter_map(|entry| entry.file_name().into_string().ok())
            .filter(|name| parse_job_number(name).is_some())
            .collect();
        // Submission order == id order; restart must preserve both the
        // round-robin order and the id counter.
        names.sort();
        for name in names {
            let number = parse_job_number(&name).expect("filtered above");
            self.next_job = self.next_job.max(number + 1);
            let dir = jobs_dir.join(&name);
            match self.restore_job(&name, &dir) {
                Ok(slot) => self.jobs.push(slot),
                Err(message) => {
                    // A damaged job directory must not take the daemon (and
                    // every other tenant's studies) down with it.
                    eprintln!("serve: job {name} failed to restore: {message}");
                    self.jobs.push(failed_slot(&name, &dir, message));
                }
            }
        }
        Ok(())
    }

    fn restore_job(&self, id: &str, dir: &Path) -> Result<JobSlot, String> {
        let spec_path = dir.join("job.spec");
        let spec_text = std::fs::read_to_string(&spec_path)
            .map_err(|err| format!("cannot read {}: {err}", spec_path.display()))?;
        let spec = RunSpec::from_text(&spec_text).map_err(|err| format!("job.spec: {err}"))?;
        let store = CheckpointStore::create(dir.join("checkpoints"), &spec)
            .map_err(|err| format!("checkpoint store: {err}"))?;
        let mut slot = JobSlot {
            id: id.to_string(),
            problem_name: spec.problem.name.clone(),
            optimizer_kind: spec.optimizer.kind().to_string(),
            spec,
            dir: dir.to_path_buf(),
            store,
            state: JobState::Running,
            error: None,
            driver: None,
            watchers: Vec::new(),
            generation: 0,
            evaluations: 0,
            front_size: 0,
        };

        // Terminal states are recorded as marker files.
        if let Ok(message) = std::fs::read_to_string(dir.join("failed")) {
            slot.state = JobState::Failed;
            slot.error = Some(message.trim_end().to_string());
            return Ok(slot);
        }
        let latest = slot
            .store
            .latest()
            .map_err(|err| format!("scanning checkpoints: {err}"))?;
        if let Some(path) = &latest {
            // Stats for terminal jobs come from the last checkpoint.
            let stored = CheckpointStore::load_matching(path, &slot.spec)
                .map_err(|err| format!("{}: {err}", path.display()))?;
            slot.generation = stored.generation();
            slot.evaluations = stored.evaluations();
        }
        if dir.join("cancelled").exists() {
            slot.state = JobState::Cancelled;
            return Ok(slot);
        }
        if dir.join("front.front").exists() {
            slot.state = JobState::Completed;
            slot.front_size = front_file_size(&dir.join("front.front"));
            return Ok(slot);
        }

        // Still in flight: rebuild the owned driver, resuming if possible.
        let problem = AnyProblem::from_spec(&slot.spec.problem).map_err(|err| err.to_string())?;
        let mut exec_spec = slot.spec.clone();
        exec_spec.log_every = None; // a daemon must not log to its own stderr per spec
        let driver = match latest {
            Some(path) => {
                let stored = CheckpointStore::load_matching(&path, &slot.spec)
                    .map_err(|err| format!("{}: {err}", path.display()))?;
                owned_resume_spec_driver(
                    &exec_spec,
                    problem,
                    stored.checkpoint,
                    Arc::clone(&self.executor),
                )
                .map_err(|err| format!("cannot resume: {err}"))?
            }
            None => owned_spec_driver(&exec_spec, problem, Arc::clone(&self.executor)),
        };
        let driver = driver.with_metrics(self.metrics.clone());
        slot.generation = driver.generation();
        slot.driver = Some(driver);
        Ok(slot)
    }

    /// Registers every job a submitted document describes: one job for a
    /// run spec, one per cell for a sweep spec. Validation and problem
    /// construction happen before anything touches disk, so a rejected
    /// submission leaves no trace.
    ///
    /// # Errors
    ///
    /// A message when the text parses as neither document kind, a spec
    /// does not validate, or the job directory cannot be written.
    pub fn submit_text(&mut self, text: &str) -> Result<Vec<JobSummary>, String> {
        let specs: Vec<RunSpec> = if pathway_moo::engine::is_sweep_text(text) {
            let sweep = SweepSpec::from_text(text).map_err(|err| err.to_string())?;
            sweep
                .expand()
                .map_err(|err| err.to_string())?
                .into_iter()
                .map(|cell| cell.spec)
                .collect()
        } else {
            vec![RunSpec::from_text(text).map_err(|err| err.to_string())?]
        };
        let mut summaries = Vec::with_capacity(specs.len());
        for spec in specs {
            summaries.push(self.register(spec)?);
        }
        Ok(summaries)
    }

    fn register(&mut self, spec: RunSpec) -> Result<JobSummary, String> {
        // Build and validate first — a bad spec must not burn a job id or
        // leave a half-written directory.
        let problem = AnyProblem::from_spec(&spec.problem).map_err(|err| err.to_string())?;
        validate_spec_against_problem(&spec, &problem).map_err(|err| err.to_string())?;

        let id = format!("job-{:04}", self.next_job);
        let dir = self.jobs_dir().join(&id);
        let store = CheckpointStore::create(dir.join("checkpoints"), &spec)
            .map_err(|err| format!("{id}: checkpoint store: {err}"))?;
        // The durable submission record. Atomic write: restart scanning
        // never sees a torn spec.
        atomic_write(&dir.join("job.spec"), spec.to_text().as_bytes())
            .map_err(|err| format!("{id}: job.spec: {err}"))?;

        let mut exec_spec = spec.clone();
        exec_spec.log_every = None;
        let driver = owned_spec_driver(&exec_spec, problem, Arc::clone(&self.executor))
            .with_metrics(self.metrics.clone());
        self.next_job += 1;
        let slot = JobSlot {
            id,
            problem_name: spec.problem.name.clone(),
            optimizer_kind: spec.optimizer.kind().to_string(),
            spec,
            dir,
            store,
            state: JobState::Running,
            error: None,
            driver: Some(driver),
            watchers: Vec::new(),
            generation: 0,
            evaluations: 0,
            front_size: 0,
        };
        let summary = slot.summary();
        self.jobs.push(slot);
        Ok(summary)
    }

    /// Summaries of every job, in submission order.
    pub fn status(&self) -> Vec<JobSummary> {
        self.jobs.iter().map(JobSlot::summary).collect()
    }

    /// `true` while at least one job is runnable.
    pub fn has_runnable(&self) -> bool {
        self.jobs.iter().any(|slot| slot.state == JobState::Running)
    }

    fn find(&mut self, job: &str) -> Result<usize, String> {
        self.jobs
            .iter()
            .position(|slot| slot.id == job)
            .ok_or_else(|| format!("no such job '{job}'"))
    }

    /// Attaches a telemetry stream to a job. For jobs already in a
    /// terminal state the returned receiver is closed, so a consumer sees
    /// an immediately-ending stream rather than an error.
    ///
    /// # Errors
    ///
    /// A message when the job does not exist.
    pub fn watch(&mut self, job: &str) -> Result<(JobSummary, Receiver<GenerationReport>), String> {
        let index = self.find(job)?;
        let (observer, receiver) = ChannelObserver::channel();
        let slot = &mut self.jobs[index];
        if slot.state == JobState::Running {
            slot.watchers.push(observer);
        }
        // Terminal job: the observer drops here, closing the channel.
        Ok((slot.summary(), receiver))
    }

    /// Cancels a running job: checkpoints its current state (for
    /// forensics), marks it terminal on disk, and drops its driver and
    /// watchers. Cancelling a terminal job is a harmless no-op.
    ///
    /// # Errors
    ///
    /// A message when the job does not exist.
    pub fn cancel(&mut self, job: &str) -> Result<JobSummary, String> {
        let index = self.find(job)?;
        let slot = &mut self.jobs[index];
        if slot.state == JobState::Running {
            if let Some(driver) = &slot.driver {
                let _ = slot.store.save(&driver.checkpoint());
            }
            let _ = atomic_write(&slot.dir.join("cancelled"), b"");
            slot.state = JobState::Cancelled;
            slot.driver = None;
            slot.watchers.clear();
        }
        Ok(slot.summary())
    }

    /// A job's front in the `pathway-front v1` rendering.
    ///
    /// Completed jobs return the bytes of their durable `front.front` file
    /// — byte-identical to what `pathway run --front-out` writes for the
    /// same spec. Running jobs return a live snapshot of the current
    /// front.
    ///
    /// # Errors
    ///
    /// A message when the job does not exist, is cancelled/failed, or its
    /// front file cannot be read.
    pub fn fetch_front(&mut self, job: &str) -> Result<(JobSummary, String), String> {
        let index = self.find(job)?;
        let slot = &self.jobs[index];
        let front = match slot.state {
            JobState::Completed => {
                let path = slot.dir.join("front.front");
                std::fs::read_to_string(&path)
                    .map_err(|err| format!("cannot read {}: {err}", path.display()))?
            }
            JobState::Running => {
                let driver = slot.driver.as_ref().ok_or("job has no driver")?;
                render_front(&driver.front())
            }
            JobState::Cancelled => return Err(format!("job '{job}' was cancelled")),
            JobState::Failed => {
                return Err(format!(
                    "job '{job}' failed: {}",
                    slot.error.as_deref().unwrap_or("unknown error")
                ))
            }
        };
        Ok((self.jobs[index].summary(), front))
    }

    /// Advances the next runnable job by exactly one generation and
    /// returns `true`, or returns `false` when no job is runnable.
    ///
    /// This is the scheduling quantum: calling it in a loop interleaves
    /// all running jobs fairly (round-robin, one generation each), which
    /// is what the fairness tests drive directly.
    pub fn turn(&mut self) -> bool {
        let count = self.jobs.len();
        if count == 0 {
            return false;
        }
        let runnable = self
            .jobs
            .iter()
            .filter(|slot| slot.state == JobState::Running)
            .count();
        self.metrics
            .set_gauge("serve.jobs_runnable", runnable as f64);
        for offset in 0..count {
            let index = (self.cursor + offset) % count;
            if self.jobs[index].state == JobState::Running {
                self.cursor = (index + 1) % count;
                if let Some(ended) = self.last_turn_ended {
                    self.metrics.observe(
                        "serve.loop_lag_us",
                        &LAG_BOUNDS_US,
                        duration_us(ended.elapsed()) as f64,
                    );
                }
                let started = Instant::now();
                self.step_job(index);
                self.metrics.observe(
                    "serve.turn_us",
                    &TURN_BOUNDS_US,
                    duration_us(started.elapsed()) as f64,
                );
                self.last_turn_ended = Some(Instant::now());
                if !self.step_sleep.is_zero() {
                    std::thread::sleep(self.step_sleep);
                }
                return true;
            }
        }
        false
    }

    /// One generation of one job, with panic containment and checkpoint /
    /// completion bookkeeping.
    fn step_job(&mut self, index: usize) {
        let slot = &mut self.jobs[index];
        let Some(driver) = slot.driver.as_mut() else {
            slot.state = JobState::Failed;
            slot.error = Some("internal: running job without a driver".to_string());
            return;
        };
        if driver.should_stop() {
            self.complete(index);
            return;
        }
        // A panicking oracle fails its own job, never the daemon. The
        // driver may be mid-generation when it unwinds, so it is dropped
        // with the job.
        let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| driver.step()));
        let report = match report {
            Ok(report) => report,
            Err(payload) => {
                let message = format!("step panicked: {}", panic_message(&payload));
                self.fail(index, message);
                return;
            }
        };

        slot.generation = report.generation;
        slot.evaluations = report.evaluations;
        slot.front_size = report.front_size;
        for watcher in &mut slot.watchers {
            watcher.on_generation(&report);
        }
        // A disconnected watch client must not cost clones forever.
        slot.watchers.retain(|w| !w.is_disconnected());

        let every = slot.spec.checkpoint_every;
        if every > 0 && report.generation % every == 0 {
            let checkpoint = slot.driver.as_ref().expect("stepped above").checkpoint();
            let write_started = Instant::now();
            let saved = slot.store.save(&checkpoint);
            self.metrics
                .record_phase("checkpoint_write", write_started.elapsed());
            if let Err(err) = saved {
                // Durability is the contract; a job that cannot persist is
                // failed loudly rather than silently running volatile.
                let message = format!("checkpoint write failed: {err}");
                self.fail(index, message);
                return;
            }
        }
        if self.jobs[index]
            .driver
            .as_ref()
            .expect("stepped above")
            .should_stop()
        {
            self.complete(index);
        }
    }

    /// Finishes a job: final checkpoint, durable front file, terminal
    /// state. Watchers drop here, which ends their streams.
    fn complete(&mut self, index: usize) {
        let slot = &mut self.jobs[index];
        let Some(driver) = slot.driver.take() else {
            return;
        };
        let front = driver.front();
        slot.generation = driver.generation();
        slot.evaluations = driver.optimizer().evaluations();
        slot.front_size = front.len();
        let write_started = Instant::now();
        let saved = slot.store.save(&driver.checkpoint());
        self.metrics
            .record_phase("checkpoint_write", write_started.elapsed());
        if let Err(err) = saved {
            let message = format!("final checkpoint write failed: {err}");
            self.fail(index, message);
            return;
        }
        // `front.front` doubles as the completion marker, so it must land
        // atomically *after* the final checkpoint is durable.
        if let Err(err) = atomic_write(
            &slot.dir.join("front.front"),
            render_front(&front).as_bytes(),
        ) {
            let message = format!("front write failed: {err}");
            self.fail(index, message);
            return;
        }
        slot.state = JobState::Completed;
        slot.watchers.clear();
    }

    /// Marks a job failed: terminal state in memory and on disk, driver
    /// and watchers dropped.
    fn fail(&mut self, index: usize, message: String) {
        let slot = &mut self.jobs[index];
        eprintln!("serve: job {} failed: {message}", slot.id);
        let _ = atomic_write(&slot.dir.join("failed"), message.as_bytes());
        slot.state = JobState::Failed;
        slot.error = Some(message);
        slot.driver = None;
        slot.watchers.clear();
    }

    /// Handles one command; returns `true` when it was [`Command::Shutdown`].
    fn handle(&mut self, command: Command) -> bool {
        match command {
            Command::Submit { text, reply } => {
                let _ = reply.send(self.submit_text(&text));
            }
            Command::Status { reply } => {
                let _ = reply.send(self.status());
            }
            Command::Watch { job, reply } => {
                let _ = reply.send(self.watch(&job));
            }
            Command::Cancel { job, reply } => {
                let _ = reply.send(self.cancel(&job));
            }
            Command::FetchFront { job, reply } => {
                let _ = reply.send(self.fetch_front(&job));
            }
            Command::Shutdown { reply, written } => {
                // Clean shutdown loses nothing: every running job is
                // checkpointed at its current generation.
                for slot in &mut self.jobs {
                    if slot.state == JobState::Running {
                        if let Some(driver) = &slot.driver {
                            let _ = slot.store.save(&driver.checkpoint());
                        }
                    }
                }
                let _ = reply.send(());
                // Hold the loop (and therefore the process) open until the
                // reply has reached the socket; a connection thread that
                // died drops its sender and unblocks this immediately. The
                // timeout is a backstop against a wedged client write.
                let _ = written.recv_timeout(Duration::from_secs(5));
                return true;
            }
        }
        false
    }

    /// The scheduler loop: drain pending commands, advance one job one
    /// generation, repeat; block on the command channel while no job is
    /// runnable. Returns after [`Command::Shutdown`] or once every command
    /// sender is gone.
    pub fn run(mut self, commands: Receiver<Command>) {
        loop {
            // Commands between turns: clients never wait behind more than
            // one generation step of any job.
            loop {
                match commands.try_recv() {
                    Ok(command) => {
                        if self.handle(command) {
                            return;
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => return,
                }
            }
            if !self.turn() {
                // Nothing runnable: park on the channel instead of
                // spinning. The timeout re-checks runnability so a
                // freshly-submitted job starts promptly even under command
                // bursts.
                match commands.recv_timeout(Duration::from_millis(100)) {
                    Ok(command) => {
                        if self.handle(command) {
                            return;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
        }
    }
}

/// `job-0042` → `Some(42)`.
fn parse_job_number(name: &str) -> Option<usize> {
    let digits = name.strip_prefix("job-")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// A terminal slot for a job directory that could not be restored.
fn failed_slot(id: &str, dir: &Path, message: String) -> JobSlot {
    JobSlot {
        id: id.to_string(),
        spec: RunSpec::default(),
        dir: dir.to_path_buf(),
        store: CheckpointStore::create(dir.join("checkpoints"), &RunSpec::default())
            .unwrap_or_else(|_| {
                CheckpointStore::create(std::env::temp_dir(), &RunSpec::default())
                    .expect("temp dir checkpoint store")
            }),
        problem_name: "?".to_string(),
        optimizer_kind: "?".to_string(),
        state: JobState::Failed,
        error: Some(message),
        driver: None,
        watchers: Vec::new(),
        generation: 0,
        evaluations: 0,
        front_size: 0,
    }
}

/// Lines in a `pathway-front v1` file minus the header.
fn front_file_size(path: &Path) -> usize {
    std::fs::read_to_string(path)
        .map(|text| text.lines().count().saturating_sub(1))
        .unwrap_or(0)
}

/// Write-temp-then-rename, fsynced: readers (and restart scans) only ever
/// see absent or complete files.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Best-effort rendering of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
