//! `pathway-serve`: a multi-tenant study daemon with durable jobs and
//! streamed telemetry.
//!
//! The daemon (`pathway serve <data-dir>`) accepts run-spec and sweep-spec
//! documents over a line-delimited JSON TCP protocol and schedules them as
//! concurrent jobs on one shared [`pathway_moo::Executor`]. Three design
//! commitments shape everything here:
//!
//! 1. **Cooperative jobs, not job threads.** Every study is a parked
//!    [`pathway_moo::engine::Driver`] advanced one generation per
//!    scheduling turn on a single scheduler thread ([`Scheduler`]). No
//!    thread is ever tied up for a job's lifetime, so any number of
//!    concurrent jobs make progress on any number of pool workers, and
//!    long studies cannot starve short ones — fairness is round-robin by
//!    construction.
//! 2. **Durability through the engine's own checkpoints.** Each job owns a
//!    [`pathway_moo::engine::CheckpointStore`] under the data dir; a
//!    killed daemon restarts with every in-flight study resumed
//!    bit-identically from its last checkpoint boundary.
//! 3. **A self-describing, hardened wire format.** One compact JSON
//!    document per line ([`wire`]), parsed by `pathway_core::jsonlite`
//!    with its nesting-depth cap and strict escape handling — socket bytes
//!    are untrusted input.
//!
//! [`Server`] is the TCP front end, [`Client`] the blocking client the
//! CLI subcommands wrap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod scheduler;
pub mod server;
pub mod wire;

pub use client::{read_endpoint, Client, ClientError};
pub use scheduler::{Command, Scheduler, STEP_SLEEP_ENV};
pub use server::{ServeConfig, Server, ENDPOINT_FILE};
pub use wire::{
    ExecutorHealth, JobState, JobSummary, Request, StatusSnapshot, WatchEvent, PROTOCOL_VERSION,
    SERVER_NAME,
};
