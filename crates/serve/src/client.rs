//! A blocking client for the `pathway serve` wire protocol.
//!
//! One [`Client`] wraps one TCP connection; every method is a synchronous
//! request/reply exchange (plus, for [`Client::watch`], a streamed tail).
//! The `pathway` CLI's client subcommands are thin wrappers around this
//! type, and the integration tests drive daemons through it directly.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;

use pathway_core::jsonlite::JsonValue;

use crate::server::ENDPOINT_FILE;
use crate::wire::{JobSummary, Request, StatusSnapshot, WatchEvent};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection itself failed (refused, reset, closed mid-reply).
    Io(std::io::Error),
    /// The server sent something that does not parse as a reply.
    Protocol(String),
    /// The server answered `{"ok":false,…}`; the payload is its `error`.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "connection error: {err}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        ClientError::Io(err)
    }
}

/// Reads the daemon address recorded in a data dir's endpoint file.
///
/// # Errors
///
/// The underlying I/O error when the file is missing (no daemon has run
/// against this data dir) or unreadable.
pub fn read_endpoint(data_dir: &Path) -> std::io::Result<String> {
    let text = std::fs::read_to_string(data_dir.join(ENDPOINT_FILE))?;
    Ok(text.trim().to_string())
}

/// One blocking connection to a daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon at `host:port`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the connection cannot be established.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        self.writer.write_all(request.encode().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(line.trim_end().to_string())
    }

    /// Reads one reply line and enforces the `ok` contract.
    fn read_reply(&mut self) -> Result<JsonValue, ClientError> {
        let line = self.read_line()?;
        let value = JsonValue::parse(&line)
            .map_err(|err| ClientError::Protocol(format!("unparseable reply: {err}")))?;
        match value.get("ok").and_then(JsonValue::as_bool) {
            Some(true) => Ok(value),
            Some(false) => Err(ClientError::Server(
                value
                    .get("error")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unspecified server error")
                    .to_string(),
            )),
            None => Err(ClientError::Protocol(format!(
                "reply has no 'ok' field: {line}"
            ))),
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Result<JsonValue, ClientError> {
        self.send(request)?;
        self.read_reply()
    }

    /// Probes the daemon; returns `(server name, protocol version)`.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn ping(&mut self) -> Result<(String, i64), ClientError> {
        let reply = self.roundtrip(&Request::Ping)?;
        let server = reply
            .get("server")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ClientError::Protocol("ping reply has no 'server'".to_string()))?
            .to_string();
        let version = reply
            .get("version")
            .and_then(JsonValue::as_i64)
            .ok_or_else(|| ClientError::Protocol("ping reply has no 'version'".to_string()))?;
        Ok((server, version))
    }

    /// Submits a run- or sweep-spec document; returns one summary per
    /// registered job (a sweep registers one job per cell).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the document is rejected; `Io` /
    /// `Protocol` on transport problems.
    pub fn submit(&mut self, spec_text: &str) -> Result<Vec<JobSummary>, ClientError> {
        let reply = self.roundtrip(&Request::Submit {
            spec_text: spec_text.to_string(),
        })?;
        reply
            .get("jobs")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ClientError::Protocol("submit reply has no 'jobs'".to_string()))?
            .iter()
            .map(|job| JobSummary::from_json(job).map_err(ClientError::Protocol))
            .collect()
    }

    /// Fetches executor health plus every job.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn status(&mut self) -> Result<StatusSnapshot, ClientError> {
        let reply = self.roundtrip(&Request::Status)?;
        StatusSnapshot::from_json(&reply).map_err(ClientError::Protocol)
    }

    /// Fetches the daemon's live telemetry snapshot as a
    /// `pathway-profile` JSON document (the object itself, not a rendered
    /// string) — the same schema `pathway run --profile-out` writes, with
    /// `source` `"serve"`. Validate it with
    /// [`pathway_core::obs::validate_profile_json`].
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn metrics(&mut self) -> Result<JsonValue, ClientError> {
        let reply = self.roundtrip(&Request::Metrics)?;
        reply
            .get("profile")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("metrics reply has no 'profile'".to_string()))
    }

    /// Cancels a job; returns its post-cancellation summary.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the job does not exist.
    pub fn cancel(&mut self, job: &str) -> Result<JobSummary, ClientError> {
        let reply = self.roundtrip(&Request::Cancel {
            job: job.to_string(),
        })?;
        JobSummary::from_json(&reply).map_err(ClientError::Protocol)
    }

    /// Fetches a job's front in the `pathway-front v1` rendering —
    /// byte-identical to a `pathway run --front-out` file for completed
    /// jobs, a live snapshot for running ones.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the job does not exist or is
    /// cancelled/failed.
    pub fn fetch_front(&mut self, job: &str) -> Result<(JobSummary, String), ClientError> {
        let reply = self.roundtrip(&Request::FetchFront {
            job: job.to_string(),
        })?;
        let summary = JobSummary::from_json(&reply).map_err(ClientError::Protocol)?;
        let front = reply
            .get("front")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ClientError::Protocol("fetch-front reply has no 'front'".to_string()))?
            .to_string();
        Ok((summary, front))
    }

    /// Streams a job's telemetry: `on_event` sees every
    /// [`WatchEvent::Generation`] in order; the returned event is the
    /// stream's final [`WatchEvent::End`]. For an already-terminal job the
    /// stream ends immediately.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the job does not exist; `Io` /
    /// `Protocol` on transport problems.
    pub fn watch(
        &mut self,
        job: &str,
        mut on_event: impl FnMut(&WatchEvent),
    ) -> Result<WatchEvent, ClientError> {
        self.send(&Request::Watch {
            job: job.to_string(),
        })?;
        // The ack is an ordinary ok/error reply; the stream follows it.
        self.read_reply()?;
        loop {
            let line = self.read_line()?;
            let event = WatchEvent::parse(&line).map_err(ClientError::Protocol)?;
            if matches!(event, WatchEvent::End { .. }) {
                return Ok(event);
            }
            on_event(&event);
        }
    }

    /// Asks the daemon to checkpoint every running job and exit.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.roundtrip(&Request::Shutdown)?;
        Ok(())
    }
}
