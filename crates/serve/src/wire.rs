//! The `pathway serve` wire protocol: typed requests, responses, and
//! telemetry events over line-delimited JSON.
//!
//! # Framing
//!
//! Every message is one compact JSON document
//! ([`JsonValue::to_compact`]) followed by `\n`. Compact rendering escapes
//! every control character, so a message never contains a literal newline
//! — the frame boundary is unambiguous. Requests carry a `cmd` field;
//! responses carry `ok` (`true`/`false`, with `error` holding the message
//! on failure); streamed telemetry lines carry `event` instead of `ok`.
//!
//! # Commands
//!
//! | `cmd`         | fields        | reply                                         |
//! |---------------|---------------|-----------------------------------------------|
//! | `ping`        | —             | `{ok, server, version}`                       |
//! | `submit`      | `spec`        | `{ok, jobs: [job summary…]}`                  |
//! | `status`      | —             | `{ok, executor: {…}, jobs: [job summary…]}`   |
//! | `metrics`     | —             | `{ok, profile: {…}}` (a `pathway-profile` doc)|
//! | `watch`       | `job`         | `{ok, job, state}` then `event` lines         |
//! | `cancel`      | `job`         | `{ok, job summary}`                           |
//! | `fetch-front` | `job`         | `{ok, job summary, front}`                    |
//! | `shutdown`    | —             | `{ok}`                                        |
//!
//! `submit`'s `spec` is the canonical run-spec text (`pathway-spec v1`) or
//! sweep text (`pathway-sweep v1`); a sweep expands into one job per cell.
//! A `watch` reply is followed by zero or more
//! `{"event":"generation",…}` lines and exactly one `{"event":"end",…}`
//! line, after which the connection is ready for the next request.

use pathway_core::jsonlite::JsonValue;

/// Wire protocol version, reported by `ping`.
pub const PROTOCOL_VERSION: i64 = 1;

/// Server identifier, reported by `ping`.
pub const SERVER_NAME: &str = "pathway-serve";

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// Submit a run- or sweep-spec document for scheduling.
    Submit {
        /// Canonical `pathway-spec v1` or `pathway-sweep v1` text.
        spec_text: String,
    },
    /// Snapshot of every job plus executor health.
    Status,
    /// Live telemetry snapshot as a `pathway-profile` document.
    Metrics,
    /// Stream per-generation telemetry for one job.
    Watch {
        /// Job id, e.g. `job-0001`.
        job: String,
    },
    /// Cancel one job (terminal; its checkpoints remain on disk).
    Cancel {
        /// Job id.
        job: String,
    },
    /// Fetch a job's Pareto front in `pathway-front v1` rendering.
    FetchFront {
        /// Job id.
        job: String,
    },
    /// Checkpoint every running job and stop the daemon.
    Shutdown,
}

impl Request {
    /// Renders the request as one compact JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let value = match self {
            Request::Ping => JsonValue::object([("cmd", JsonValue::string("ping"))]),
            Request::Submit { spec_text } => JsonValue::object([
                ("cmd", JsonValue::string("submit")),
                ("spec", JsonValue::string(spec_text.clone())),
            ]),
            Request::Status => JsonValue::object([("cmd", JsonValue::string("status"))]),
            Request::Metrics => JsonValue::object([("cmd", JsonValue::string("metrics"))]),
            Request::Watch { job } => JsonValue::object([
                ("cmd", JsonValue::string("watch")),
                ("job", JsonValue::string(job.clone())),
            ]),
            Request::Cancel { job } => JsonValue::object([
                ("cmd", JsonValue::string("cancel")),
                ("job", JsonValue::string(job.clone())),
            ]),
            Request::FetchFront { job } => JsonValue::object([
                ("cmd", JsonValue::string("fetch-front")),
                ("job", JsonValue::string(job.clone())),
            ]),
            Request::Shutdown => JsonValue::object([("cmd", JsonValue::string("shutdown"))]),
        };
        value.to_compact()
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A human-readable message (sent back verbatim as the `error` field)
    /// when the line is not valid JSON, has no `cmd`, names an unknown
    /// command, or is missing a required field.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value = JsonValue::parse(line).map_err(|err| format!("malformed request: {err}"))?;
        let cmd = value
            .get("cmd")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "request has no string 'cmd' field".to_string())?;
        let job = |value: &JsonValue| -> Result<String, String> {
            value
                .get("job")
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("'{cmd}' needs a string 'job' field"))
        };
        match cmd {
            "ping" => Ok(Request::Ping),
            "submit" => {
                let spec_text = value
                    .get("spec")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| "'submit' needs a string 'spec' field".to_string())?
                    .to_string();
                Ok(Request::Submit { spec_text })
            }
            "status" => Ok(Request::Status),
            "metrics" => Ok(Request::Metrics),
            "watch" => Ok(Request::Watch { job: job(&value)? }),
            "cancel" => Ok(Request::Cancel { job: job(&value)? }),
            "fetch-front" => Ok(Request::FetchFront { job: job(&value)? }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown command '{other}'")),
        }
    }
}

/// Lifecycle state of a scheduled job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Scheduled; advances one generation per scheduling turn.
    Running,
    /// Finished; its final front is durable under the data dir.
    Completed,
    /// Cancelled by a client; terminal.
    Cancelled,
    /// Died (step panic, checkpoint write failure, restore error); terminal.
    Failed,
}

impl JobState {
    /// The wire spelling, e.g. `running`.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// Parses the wire spelling (inverse of [`JobState::as_str`]).
    pub fn parse(text: &str) -> Option<JobState> {
        match text {
            "running" => Some(JobState::Running),
            "completed" => Some(JobState::Completed),
            "cancelled" => Some(JobState::Cancelled),
            "failed" => Some(JobState::Failed),
            _ => None,
        }
    }

    /// `true` for states a job can never leave.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Running)
    }
}

/// One job's row in a `status` reply (and the job-shaped part of `submit`,
/// `cancel`, and `fetch-front` replies).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSummary {
    /// Job id, e.g. `job-0001`.
    pub id: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Failure message, for [`JobState::Failed`] jobs.
    pub error: Option<String>,
    /// Problem name from the job's spec.
    pub problem: String,
    /// Optimizer kind from the job's spec (`nsga2`, `moead`, `archipelago`).
    pub optimizer: String,
    /// The spec's content hash, `0x`-prefixed hex.
    pub spec_hash: String,
    /// Generations completed so far.
    pub generation: usize,
    /// The spec's generation budget (0 = unbounded).
    pub max_generations: usize,
    /// Cumulative candidate evaluations.
    pub evaluations: usize,
    /// Size of the latest known non-dominated front.
    pub front_size: usize,
    /// Telemetry streams currently attached via `watch`.
    pub watchers: usize,
}

impl JobSummary {
    /// The JSON object shape shared by every job-carrying reply.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("job".to_string(), JsonValue::string(self.id.clone())),
            ("state".to_string(), JsonValue::string(self.state.as_str())),
        ];
        if let Some(error) = &self.error {
            fields.push(("error".to_string(), JsonValue::string(error.clone())));
        }
        fields.extend([
            (
                "problem".to_string(),
                JsonValue::string(self.problem.clone()),
            ),
            (
                "optimizer".to_string(),
                JsonValue::string(self.optimizer.clone()),
            ),
            (
                "spec_hash".to_string(),
                JsonValue::string(self.spec_hash.clone()),
            ),
            ("generation".to_string(), int(self.generation)),
            ("max_generations".to_string(), int(self.max_generations)),
            ("evaluations".to_string(), int(self.evaluations)),
            ("front_size".to_string(), int(self.front_size)),
            ("watchers".to_string(), int(self.watchers)),
        ]);
        JsonValue::Object(fields)
    }

    /// Parses the object shape [`JobSummary::to_json`] produces.
    ///
    /// # Errors
    ///
    /// A message naming the missing or mistyped field.
    pub fn from_json(value: &JsonValue) -> Result<JobSummary, String> {
        let state_text = required_str(value, "state")?;
        let state = JobState::parse(&state_text)
            .ok_or_else(|| format!("unknown job state '{state_text}'"))?;
        Ok(JobSummary {
            id: required_str(value, "job")?,
            state,
            error: value
                .get("error")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            problem: required_str(value, "problem")?,
            optimizer: required_str(value, "optimizer")?,
            spec_hash: required_str(value, "spec_hash")?,
            generation: required_usize(value, "generation")?,
            max_generations: required_usize(value, "max_generations")?,
            evaluations: required_usize(value, "evaluations")?,
            front_size: required_usize(value, "front_size")?,
            watchers: required_usize(value, "watchers")?,
        })
    }
}

/// Executor health in a `status` reply — the live
/// [`pathway_moo::ExecutorStats`] snapshot taken when the reply is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorHealth {
    /// Configured parallelism (caller lane included).
    pub workers: usize,
    /// Chunks waiting in the pool queue at snapshot time.
    pub queued_chunks: usize,
    /// Lanes executing a chunk at snapshot time.
    pub active_workers: usize,
}

impl ExecutorHealth {
    /// The `executor` object of a `status` reply.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("workers", int(self.workers)),
            ("queued_chunks", int(self.queued_chunks)),
            ("active_workers", int(self.active_workers)),
        ])
    }

    /// Parses the object [`ExecutorHealth::to_json`] produces.
    ///
    /// # Errors
    ///
    /// A message naming the missing or mistyped field.
    pub fn from_json(value: &JsonValue) -> Result<ExecutorHealth, String> {
        Ok(ExecutorHealth {
            workers: required_usize(value, "workers")?,
            queued_chunks: required_usize(value, "queued_chunks")?,
            active_workers: required_usize(value, "active_workers")?,
        })
    }
}

/// A full `status` reply: executor health plus every job.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusSnapshot {
    /// Live executor load.
    pub executor: ExecutorHealth,
    /// Every job the daemon knows about, in submission order.
    pub jobs: Vec<JobSummary>,
}

impl StatusSnapshot {
    /// The reply body (an `ok` response with `executor` and `jobs`).
    pub fn to_json(&self) -> JsonValue {
        ok_response([
            ("executor".to_string(), self.executor.to_json()),
            (
                "jobs".to_string(),
                JsonValue::Array(self.jobs.iter().map(JobSummary::to_json).collect()),
            ),
        ])
    }

    /// Parses the reply [`StatusSnapshot::to_json`] produces.
    ///
    /// # Errors
    ///
    /// A message naming the missing or mistyped field.
    pub fn from_json(value: &JsonValue) -> Result<StatusSnapshot, String> {
        let executor = ExecutorHealth::from_json(
            value
                .get("executor")
                .ok_or_else(|| "status reply has no 'executor'".to_string())?,
        )?;
        let jobs = value
            .get("jobs")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "status reply has no 'jobs' array".to_string())?
            .iter()
            .map(JobSummary::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StatusSnapshot { executor, jobs })
    }
}

/// One line of a `watch` stream.
#[derive(Debug, Clone, PartialEq)]
pub enum WatchEvent {
    /// A completed generation of the watched job.
    Generation {
        /// Watched job id.
        job: String,
        /// 1-based generation index.
        generation: usize,
        /// Cumulative evaluations.
        evaluations: usize,
        /// Current front size.
        front_size: usize,
        /// Current hypervolume (absent on the wire when NaN).
        hypervolume: f64,
        /// Wall-clock of this generation, microseconds (0 when the
        /// server predates the field).
        duration_us: u64,
    },
    /// The stream is over; the job reached `state` at `generation`.
    End {
        /// Watched job id.
        job: String,
        /// The job's state when the stream closed.
        state: JobState,
        /// Generations completed when the stream closed.
        generation: usize,
    },
}

impl WatchEvent {
    /// Renders the event as one compact JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            WatchEvent::Generation {
                job,
                generation,
                evaluations,
                front_size,
                hypervolume,
                duration_us,
            } => {
                let mut fields = vec![
                    ("event".to_string(), JsonValue::string("generation")),
                    ("job".to_string(), JsonValue::string(job.clone())),
                    ("generation".to_string(), int(*generation)),
                    ("evaluations".to_string(), int(*evaluations)),
                    ("front_size".to_string(), int(*front_size)),
                    (
                        "duration_us".to_string(),
                        JsonValue::Int(i64::try_from(*duration_us).unwrap_or(i64::MAX)),
                    ),
                ];
                // JSON has no NaN literal; an unmeasurable hypervolume is
                // simply absent.
                if !hypervolume.is_nan() {
                    fields.push(("hypervolume".to_string(), JsonValue::Number(*hypervolume)));
                }
                JsonValue::Object(fields).to_compact()
            }
            WatchEvent::End {
                job,
                state,
                generation,
            } => JsonValue::object([
                ("event", JsonValue::string("end")),
                ("job", JsonValue::string(job.clone())),
                ("state", JsonValue::string(state.as_str())),
                ("generation", int(*generation)),
            ])
            .to_compact(),
        }
    }

    /// Parses one stream line.
    ///
    /// # Errors
    ///
    /// A message naming the malformed part.
    pub fn parse(line: &str) -> Result<WatchEvent, String> {
        let value = JsonValue::parse(line).map_err(|err| format!("malformed event: {err}"))?;
        let event = value
            .get("event")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "stream line has no string 'event' field".to_string())?;
        match event {
            "generation" => Ok(WatchEvent::Generation {
                job: required_str(&value, "job")?,
                generation: required_usize(&value, "generation")?,
                evaluations: required_usize(&value, "evaluations")?,
                front_size: required_usize(&value, "front_size")?,
                hypervolume: value
                    .get("hypervolume")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(f64::NAN),
                // Absent from pre-telemetry servers; 0 means "unreported".
                duration_us: value
                    .get("duration_us")
                    .and_then(JsonValue::as_i64)
                    .and_then(|v| u64::try_from(v).ok())
                    .unwrap_or(0),
            }),
            "end" => {
                let state_text = required_str(&value, "state")?;
                Ok(WatchEvent::End {
                    job: required_str(&value, "job")?,
                    state: JobState::parse(&state_text)
                        .ok_or_else(|| format!("unknown job state '{state_text}'"))?,
                    generation: required_usize(&value, "generation")?,
                })
            }
            other => Err(format!("unknown event '{other}'")),
        }
    }
}

/// Builds a success reply: `{"ok":true, …fields}`.
pub fn ok_response(fields: impl IntoIterator<Item = (String, JsonValue)>) -> JsonValue {
    let mut all = vec![("ok".to_string(), JsonValue::Bool(true))];
    all.extend(fields);
    JsonValue::Object(all)
}

/// Builds a failure reply: `{"ok":false,"error":message}`.
pub fn error_response(message: impl Into<String>) -> JsonValue {
    JsonValue::object([
        ("ok", JsonValue::Bool(false)),
        ("error", JsonValue::string(message.into())),
    ])
}

fn int(value: usize) -> JsonValue {
    JsonValue::Int(value as i64)
}

fn required_str(value: &JsonValue, key: &str) -> Result<String, String> {
    value
        .get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn required_usize(value: &JsonValue, key: &str) -> Result<usize, String> {
    value
        .get(key)
        .and_then(JsonValue::as_i64)
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_their_wire_form() {
        let requests = [
            Request::Ping,
            Request::Submit {
                spec_text: "pathway-spec v1\n[run]\nproblem = schaffer\n".to_string(),
            },
            Request::Status,
            Request::Metrics,
            Request::Watch {
                job: "job-0003".to_string(),
            },
            Request::Cancel {
                job: "job-0001".to_string(),
            },
            Request::FetchFront {
                job: "job-0002".to_string(),
            },
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.encode();
            assert!(!line.contains('\n'), "frame must be one line: {line}");
            assert_eq!(Request::parse(&line).unwrap(), request);
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("{}").unwrap_err().contains("cmd"));
        assert!(Request::parse(r#"{"cmd":"warp"}"#)
            .unwrap_err()
            .contains("unknown command"));
        assert!(Request::parse(r#"{"cmd":"watch"}"#)
            .unwrap_err()
            .contains("job"));
        assert!(Request::parse(r#"{"cmd":"submit"}"#)
            .unwrap_err()
            .contains("spec"));
    }

    fn summary(state: JobState) -> JobSummary {
        JobSummary {
            id: "job-0001".to_string(),
            state,
            error: match state {
                JobState::Failed => Some("step panicked".to_string()),
                _ => None,
            },
            problem: "schaffer".to_string(),
            optimizer: "nsga2".to_string(),
            spec_hash: "0x00000000deadbeef".to_string(),
            generation: 7,
            max_generations: 40,
            evaluations: 1234,
            front_size: 16,
            watchers: 2,
        }
    }

    #[test]
    fn job_summaries_and_status_snapshots_round_trip() {
        for state in [
            JobState::Running,
            JobState::Completed,
            JobState::Cancelled,
            JobState::Failed,
        ] {
            let original = summary(state);
            let reparsed = JobSummary::from_json(&original.to_json()).unwrap();
            assert_eq!(original, reparsed);
        }

        let snapshot = StatusSnapshot {
            executor: ExecutorHealth {
                workers: 4,
                queued_chunks: 3,
                active_workers: 2,
            },
            jobs: vec![summary(JobState::Running), summary(JobState::Completed)],
        };
        let json = snapshot.to_json();
        assert_eq!(json.get("ok").and_then(JsonValue::as_bool), Some(true));
        let reparsed = StatusSnapshot::from_json(&json).unwrap();
        assert_eq!(snapshot, reparsed);
    }

    #[test]
    fn watch_events_round_trip_including_nan_hypervolume() {
        let generation = WatchEvent::Generation {
            job: "job-0001".to_string(),
            generation: 3,
            evaluations: 300,
            front_size: 12,
            hypervolume: 1.25,
            duration_us: 1500,
        };
        assert_eq!(WatchEvent::parse(&generation.encode()).unwrap(), generation);

        // NaN is absent on the wire and comes back as NaN.
        let nan = WatchEvent::Generation {
            job: "job-0001".to_string(),
            generation: 4,
            evaluations: 400,
            front_size: 12,
            hypervolume: f64::NAN,
            duration_us: 0,
        };
        let line = nan.encode();
        assert!(!line.contains("hypervolume"));
        match WatchEvent::parse(&line).unwrap() {
            WatchEvent::Generation { hypervolume, .. } => assert!(hypervolume.is_nan()),
            other => panic!("unexpected event {other:?}"),
        }

        let end = WatchEvent::End {
            job: "job-0001".to_string(),
            state: JobState::Completed,
            generation: 40,
        };
        assert_eq!(WatchEvent::parse(&end.encode()).unwrap(), end);
    }

    #[test]
    fn generation_events_without_duration_parse_as_zero() {
        // A line from a pre-telemetry server carries no duration_us.
        let legacy = r#"{"event":"generation","job":"job-0001","generation":3,"evaluations":300,"front_size":12}"#;
        match WatchEvent::parse(legacy).unwrap() {
            WatchEvent::Generation { duration_us, .. } => assert_eq!(duration_us, 0),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn responses_carry_the_ok_flag() {
        let ok = ok_response([("server".to_string(), JsonValue::string(SERVER_NAME))]);
        assert_eq!(ok.get("ok").and_then(JsonValue::as_bool), Some(true));
        let err = error_response("no such job");
        assert_eq!(err.get("ok").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(
            err.get("error").and_then(JsonValue::as_str),
            Some("no such job")
        );
    }
}
