//! Serve-crate integration tests: scheduler fairness, kill-and-restore
//! durability, and a full in-process TCP round-trip.

use std::path::PathBuf;
use std::sync::Arc;

use pathway_moo::{EvalBackend, Executor};
use pathway_serve::wire::WatchEvent;
use pathway_serve::{Client, JobState, Scheduler, ServeConfig, Server};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pathway-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(seed: u64, max_generations: usize, checkpoint_every: usize) -> String {
    format!(
        "pathway-spec v1\n\n\
         [problem]\nname = schaffer\n\n\
         [optimizer]\nkind = nsga2\npopulation = 16\n\n\
         [run]\nseed = {seed}\ncheckpoint_every = {checkpoint_every}\nreference_point = 25, 25\n\n\
         [stop]\nmax_generations = {max_generations}\n"
    )
}

/// The fairness contract: three jobs on a *serial* executor (one lane, so
/// concurrent jobs > worker threads) advance in lockstep, one generation
/// per turn, regardless of how long each job's budget is.
#[test]
fn round_robin_interleaves_jobs_fairly_on_one_lane() {
    let dir = temp_dir("fair");
    let mut scheduler = Scheduler::open(&dir, Arc::new(Executor::serial())).expect("open");
    scheduler.submit_text(&spec(1, 40, 0)).expect("submit long");
    scheduler.submit_text(&spec(2, 3, 0)).expect("submit short");
    scheduler.submit_text(&spec(3, 40, 0)).expect("submit long");

    // One round of turns: every job moves exactly one generation.
    for _ in 0..3 {
        assert!(scheduler.turn(), "a job should be runnable");
    }
    let after_one_round = scheduler.status();
    assert_eq!(after_one_round.len(), 3);
    for job in &after_one_round {
        assert_eq!(
            job.generation, 1,
            "{} should have exactly one generation after one round",
            job.id
        );
    }

    // Two more rounds: the short job (3 generations) completes and drops
    // out of the rotation; the long jobs keep advancing evenly.
    for _ in 0..6 {
        scheduler.turn();
    }
    let status = scheduler.status();
    assert_eq!(status[1].state, JobState::Completed);
    assert_eq!(status[1].generation, 3);
    assert_eq!(status[0].generation, status[2].generation);
    assert!(status[0].generation >= 3, "long jobs kept making progress");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The durability contract at the scheduler level: drop a scheduler
/// mid-flight (no shutdown checkpoint — the moral equivalent of `kill
/// -9`), reopen the same data dir, and the resumed job's final front is
/// byte-identical to an uninterrupted run of the same spec.
#[test]
fn reopened_scheduler_resumes_and_matches_an_uninterrupted_run() {
    let interrupted = temp_dir("resume-a");
    let pristine = temp_dir("resume-b");
    let text = spec(7, 8, 2);

    // Uninterrupted baseline.
    let mut baseline = Scheduler::open(&pristine, Arc::new(Executor::serial())).expect("open");
    let id = baseline.submit_text(&text).expect("submit")[0].id.clone();
    while baseline.turn() {}
    let (summary, want_front) = baseline.fetch_front(&id).expect("baseline front");
    assert_eq!(summary.state, JobState::Completed);

    // Interrupted run: 5 of 8 generations (last checkpoint at 4), then
    // the scheduler is dropped with the job mid-flight.
    let mut first = Scheduler::open(&interrupted, Arc::new(Executor::serial())).expect("open");
    let id = first.submit_text(&text).expect("submit")[0].id.clone();
    for _ in 0..5 {
        assert!(first.turn());
    }
    assert_eq!(first.status()[0].generation, 5);
    drop(first);

    // Restart: the job comes back running from generation 4 and finishes
    // with exactly the baseline's front bytes.
    let mut second = Scheduler::open(&interrupted, Arc::new(Executor::serial())).expect("reopen");
    let restored = second.status();
    assert_eq!(restored.len(), 1);
    assert_eq!(restored[0].state, JobState::Running);
    assert_eq!(
        restored[0].generation, 4,
        "resume starts at the last checkpoint boundary"
    );
    while second.turn() {}
    let (summary, got_front) = second.fetch_front(&id).expect("resumed front");
    assert_eq!(summary.state, JobState::Completed);
    assert_eq!(summary.generation, 8);
    assert_eq!(
        got_front, want_front,
        "kill + resume must be invisible in the final front"
    );

    let _ = std::fs::remove_dir_all(&interrupted);
    let _ = std::fs::remove_dir_all(&pristine);
}

/// Cancel and error paths at the scheduler level.
#[test]
fn cancel_is_terminal_and_unknown_jobs_are_reported() {
    let dir = temp_dir("cancel");
    let mut scheduler = Scheduler::open(&dir, Arc::new(Executor::serial())).expect("open");
    let id = scheduler.submit_text(&spec(1, 40, 0)).expect("submit")[0]
        .id
        .clone();
    scheduler.turn();

    let cancelled = scheduler.cancel(&id).expect("cancel");
    assert_eq!(cancelled.state, JobState::Cancelled);
    // Cancel is idempotent, a cancelled front is an error, and the job no
    // longer takes turns.
    assert_eq!(
        scheduler.cancel(&id).expect("re-cancel").state,
        JobState::Cancelled
    );
    assert!(scheduler.fetch_front(&id).is_err());
    assert!(!scheduler.turn(), "no runnable job remains");
    assert!(scheduler.cancel("job-9999").is_err());
    assert!(scheduler.submit_text("not a spec").is_err());

    let _ = std::fs::remove_dir_all(&dir);
}

/// The full TCP path: submit over a socket, watch telemetry to the end,
/// check status and executor health, fetch the front, shut down cleanly.
#[test]
fn tcp_round_trip_submits_watches_and_fetches() {
    let dir = temp_dir("tcp");
    std::fs::create_dir_all(&dir).expect("data dir");
    let server = Server::start(ServeConfig {
        listen: "127.0.0.1:0".to_string(),
        data_dir: dir.clone(),
        executor: Arc::new(Executor::new(EvalBackend::Threads(2))),
        quiet: true,
    })
    .expect("start server");
    let addr = server.addr().to_string();
    assert_eq!(
        pathway_serve::read_endpoint(&dir).expect("endpoint file"),
        addr
    );

    let mut client = Client::connect(&addr).expect("connect");
    let (name, version) = client.ping().expect("ping");
    assert_eq!(name, "pathway-serve");
    assert_eq!(version, 1);

    let jobs = client.submit(&spec(11, 6, 2)).expect("submit");
    assert_eq!(jobs.len(), 1);
    let id = jobs[0].id.clone();

    // Watch from a second connection while the submitting connection
    // stays usable; generations arrive in order and the stream ends in a
    // terminal state.
    let mut watcher = Client::connect(&addr).expect("connect watcher");
    let mut seen = Vec::new();
    let mut evaluation_counts = Vec::new();
    let end = watcher
        .watch(&id, |event| {
            if let WatchEvent::Generation {
                generation,
                evaluations,
                ..
            } = event
            {
                seen.push(*generation);
                evaluation_counts.push(*evaluations);
            }
        })
        .expect("watch");
    assert!(seen.windows(2).all(|w| w[0] < w[1]), "ordered: {seen:?}");
    assert!(
        evaluation_counts.windows(2).all(|w| w[0] < w[1]),
        "evaluations are cumulative: {evaluation_counts:?}"
    );
    match end {
        WatchEvent::End { state, .. } => assert_eq!(state, JobState::Completed),
        other => panic!("expected end event, got {other:?}"),
    }

    let status = client.status().expect("status");
    assert!(status.executor.workers >= 2);
    assert_eq!(status.jobs.len(), 1);
    assert_eq!(status.jobs[0].state, JobState::Completed);
    assert_eq!(status.jobs[0].generation, 6);

    // The live telemetry snapshot is a schema-valid pathway-profile
    // document with the daemon's job totals.
    let profile = client.metrics().expect("metrics");
    let check = pathway_core::obs::validate_profile_json(&profile.to_pretty())
        .expect("daemon profile validates");
    assert_eq!(check.source, "serve");
    assert_eq!(check.generations, 6);
    assert!(
        check.phases.iter().any(|phase| phase.name == "generation"),
        "driver phases flow into the daemon registry: {:?}",
        check.phases
    );
    assert!(
        check
            .phases
            .iter()
            .any(|phase| phase.name == "checkpoint_write"),
        "checkpoint writes are phased: {:?}",
        check.phases
    );

    let (summary, front) = client.fetch_front(&id).expect("fetch front");
    assert_eq!(summary.state, JobState::Completed);
    assert!(front.starts_with("pathway-front v1"));
    assert!(front.lines().count() > 1, "front has points");

    // Unknown jobs fail with a server-side message, and the connection
    // survives to serve the next request.
    assert!(client.fetch_front("job-9999").is_err());
    client.shutdown().expect("shutdown");
    server.join();

    let _ = std::fs::remove_dir_all(&dir);
}

/// A sweep document expands into one job per cell, all sharing the
/// executor.
#[test]
fn sweep_submission_registers_one_job_per_cell() {
    let dir = temp_dir("sweep");
    let mut scheduler = Scheduler::open(&dir, Arc::new(Executor::serial())).expect("open");
    let sweep = "pathway-sweep v1\n\n\
                 [sweep]\nrun.seed = 1 | 2 | 3\n\n\
                 [problem]\nname = schaffer\n\n\
                 [optimizer]\nkind = nsga2\npopulation = 16\n\n\
                 [run]\nseed = 1\n\n\
                 [stop]\nmax_generations = 2\n";
    let jobs = scheduler.submit_text(sweep).expect("submit sweep");
    assert_eq!(jobs.len(), 3);
    while scheduler.turn() {}
    assert!(scheduler
        .status()
        .iter()
        .all(|job| job.state == JobState::Completed));

    let _ = std::fs::remove_dir_all(&dir);
}
