//! Black-box tests for the `pathway-moo` algorithmic invariants:
//! non-dominated sort ranks on hand-built fronts, crowding-distance boundary
//! behaviour, and the hypervolume of known two-dimensional fronts.

use pathway_moo::metrics::hypervolume;
use pathway_moo::{
    assign_crowding_distance, constrained_dominates, dominates, fast_nondominated_sort, Individual,
};

fn individual(objectives: &[f64]) -> Individual {
    Individual {
        variables: Vec::new(),
        objectives: objectives.to_vec(),
        violation: 0.0,
        rank: usize::MAX,
        crowding: 0.0,
    }
}

// --------------------------------------------------- non-dominated sorting --

#[test]
fn nondominated_sort_ranks_hand_built_fronts() {
    // Three nested layers plus a duplicate objective vector on the first.
    //   rank 0: (0,3), (1,2), (3,0), (1,2)
    //   rank 1: (2,3), (3,2)
    //   rank 2: (4,4)
    let mut population = vec![
        individual(&[0.0, 3.0]), // 0 → rank 0
        individual(&[2.0, 3.0]), // 1 → rank 1
        individual(&[1.0, 2.0]), // 2 → rank 0
        individual(&[4.0, 4.0]), // 3 → rank 2
        individual(&[3.0, 0.0]), // 4 → rank 0
        individual(&[3.0, 2.0]), // 5 → rank 1
        individual(&[1.0, 2.0]), // 6 → rank 0 (duplicate of 2)
    ];
    let fronts = fast_nondominated_sort(&mut population);

    assert_eq!(fronts.len(), 3);
    let mut front0 = fronts[0].clone();
    front0.sort_unstable();
    assert_eq!(front0, vec![0, 2, 4, 6]);
    let mut front1 = fronts[1].clone();
    front1.sort_unstable();
    assert_eq!(front1, vec![1, 5]);
    assert_eq!(fronts[2], vec![3]);

    // The rank fields agree with the front partition.
    for (depth, front) in fronts.iter().enumerate() {
        for &index in front {
            assert_eq!(population[index].rank, depth);
        }
    }
}

#[test]
fn nondominated_sort_on_a_single_front_yields_one_layer() {
    // A pure trade-off curve: no point dominates any other.
    let mut population: Vec<Individual> = (0..5)
        .map(|i| individual(&[i as f64, 4.0 - i as f64]))
        .collect();
    let fronts = fast_nondominated_sort(&mut population);
    assert_eq!(fronts.len(), 1);
    assert_eq!(fronts[0].len(), 5);
    assert!(population.iter().all(|p| p.rank == 0));
}

#[test]
fn dominance_relations_match_their_definitions() {
    assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
    assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
    assert!(
        !dominates(&[1.0, 1.0], &[1.0, 1.0]),
        "equal points do not dominate"
    );
    assert!(!dominates(&[0.0, 2.0], &[1.0, 1.0]), "incomparable points");

    // A feasible individual beats an infeasible one regardless of objectives.
    let feasible = individual(&[100.0, 100.0]);
    let mut infeasible = individual(&[0.0, 0.0]);
    infeasible.violation = 1.0;
    assert!(constrained_dominates(&feasible, &infeasible));
    assert!(!constrained_dominates(&infeasible, &feasible));
}

// ------------------------------------------------------- crowding distance --

#[test]
fn crowding_distance_boundaries_are_infinite() {
    let mut population = vec![
        individual(&[0.0, 4.0]),
        individual(&[1.0, 2.5]),
        individual(&[2.0, 1.5]),
        individual(&[4.0, 0.0]),
    ];
    let front: Vec<usize> = (0..population.len()).collect();
    assign_crowding_distance(&mut population, &front);

    assert_eq!(population[0].crowding, f64::INFINITY);
    assert_eq!(population[3].crowding, f64::INFINITY);
    for interior in &[&population[1], &population[2]] {
        assert!(interior.crowding.is_finite());
        assert!(interior.crowding > 0.0);
    }
}

#[test]
fn crowding_distance_of_tiny_fronts_is_infinite_everywhere() {
    let mut population = vec![individual(&[0.0, 1.0]), individual(&[1.0, 0.0])];
    let front = vec![0, 1];
    assign_crowding_distance(&mut population, &front);
    assert!(population.iter().all(|p| p.crowding == f64::INFINITY));
}

#[test]
fn crowding_distance_prefers_sparse_regions() {
    // Five points on a line; index 2 sits in a crowded cluster, index 3 is
    // isolated, so the isolated interior point must score higher.
    let mut population = vec![
        individual(&[0.0, 10.0]),
        individual(&[0.1, 9.9]),
        individual(&[0.2, 9.8]),
        individual(&[5.0, 5.0]),
        individual(&[10.0, 0.0]),
    ];
    let front: Vec<usize> = (0..population.len()).collect();
    assign_crowding_distance(&mut population, &front);
    assert!(population[3].crowding > population[1].crowding);
    assert!(population[3].crowding > population[2].crowding);
}

// ------------------------------------------------------------- hypervolume --

#[test]
fn hypervolume_of_a_known_staircase_front() {
    // (1,3), (2,2), (3,1) against reference (4,4): three rectangles of areas
    // 1, 2 and 3.
    let front = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
    let hv = hypervolume(&front, &[4.0, 4.0]);
    assert!((hv - 6.0).abs() < 1e-12);
}

#[test]
fn hypervolume_of_a_single_point_is_its_box() {
    let hv = hypervolume(&[vec![0.25, 0.5]], &[1.0, 1.0]);
    assert!((hv - 0.75 * 0.5).abs() < 1e-12);
}

#[test]
fn hypervolume_ignores_dominated_and_out_of_reference_points() {
    let base = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
    let baseline = hypervolume(&base, &[4.0, 4.0]);

    // A dominated point adds nothing.
    let mut with_dominated = base.clone();
    with_dominated.push(vec![2.5, 2.5]);
    assert!((hypervolume(&with_dominated, &[4.0, 4.0]) - baseline).abs() < 1e-12);

    // A point beyond the reference adds nothing.
    let mut with_outlier = base.clone();
    with_outlier.push(vec![5.0, 0.5]);
    assert!((hypervolume(&with_outlier, &[4.0, 4.0]) - baseline).abs() < 1e-12);

    // A genuinely new non-dominated point strictly increases the volume.
    let mut with_improvement = base;
    with_improvement.push(vec![0.5, 3.5]);
    assert!(hypervolume(&with_improvement, &[4.0, 4.0]) > baseline + 1e-9);
}

#[test]
fn hypervolume_is_zero_for_empty_or_non_dominating_fronts() {
    assert_eq!(hypervolume(&[], &[1.0, 1.0]), 0.0);
    // Every point is outside the reference box.
    assert_eq!(hypervolume(&[vec![2.0, 2.0]], &[1.0, 1.0]), 0.0);
}

#[test]
fn hypervolume_agrees_between_2d_and_degenerate_3d() {
    // Embedding a 2-D front at a constant third objective must scale the
    // 2-D volume by the remaining thickness to the reference.
    let front2 = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
    let front3: Vec<Vec<f64>> = front2.iter().map(|p| vec![p[0], p[1], 0.0]).collect();
    let hv2 = hypervolume(&front2, &[4.0, 4.0]);
    let hv3 = hypervolume(&front3, &[4.0, 4.0, 2.0]);
    assert!((hv3 - hv2 * 2.0).abs() < 1e-12);
}
