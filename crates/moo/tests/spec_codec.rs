//! Property tests for the [`RunSpec`] text codec.
//!
//! The codec's contract is exact round-tripping: for every valid spec,
//! `from_text(to_text(spec)) == spec` and the content hash is stable. These
//! tests sweep randomized specs across all optimizer kinds, optional-field
//! combinations and float-valued knobs (floats are rendered with Rust's
//! shortest round-trip formatting, so bit-exactness is expected, not
//! approximate equality).

use proptest::prelude::*;

use pathway_moo::engine::{
    ArchipelagoSpec, CheckpointRetention, MoeadSpec, Nsga2Spec, OptimizerSpec, ProblemSpec,
    RunSpec, SpecError, StoppingSpec,
};
use pathway_moo::{EvalBackend, MigrationTopology};

/// Deterministically expands a handful of drawn scalars into a full spec,
/// exercising every enum arm and optional field.
#[allow(clippy::too_many_arguments)]
fn build_spec(
    kind: usize,
    population: usize,
    probability: f64,
    eta: f64,
    options: usize,
    seed: u64,
    generations: usize,
    threads: usize,
) -> RunSpec {
    let backend = if threads == 0 {
        EvalBackend::Serial
    } else {
        EvalBackend::Threads(threads)
    };
    let mutation_probability = if options & 1 == 0 {
        None
    } else {
        Some(probability * 0.5)
    };
    let island = Nsga2Spec {
        population: population.max(2),
        crossover_probability: probability,
        eta_crossover: eta,
        mutation_probability,
        eta_mutation: eta + 1.0,
        backend,
    };
    let optimizer = match kind {
        0 => OptimizerSpec::Nsga2(island),
        1 => OptimizerSpec::Moead(MoeadSpec {
            population: population.max(2),
            neighborhood: (population / 2).max(1),
            eta_crossover: eta,
            eta_mutation: eta + 2.0,
            mutation_probability,
            backend,
        }),
        _ => OptimizerSpec::Archipelago(ArchipelagoSpec {
            islands: (population % 5).max(1),
            island,
            migration_interval: (generations / 3).max(1),
            migration_probability: probability,
            topology: match options % 3 {
                0 => MigrationTopology::Broadcast,
                1 => MigrationTopology::Ring,
                _ => MigrationTopology::Isolated,
            },
        }),
    };
    let mut problem = ProblemSpec::named("zdt1");
    if options & 2 != 0 {
        problem = problem.with_param("variables", population.to_string());
    }
    RunSpec {
        problem,
        optimizer,
        seed,
        checkpoint_every: options % 7,
        retention: if options & 64 != 0 {
            Some(CheckpointRetention {
                keep_last: (options % 5) + 1,
                // Exercise both the "keep_every omitted from the text" (0)
                // and the explicit-modular form.
                keep_every: if options & 8 != 0 { options % 13 } else { 0 },
            })
        } else {
            None
        },
        reference_point: if options & 4 != 0 {
            Some(vec![
                probability * 10.0 + 1.0,
                eta,
                seed as f64 * 0.25 + 0.5,
            ])
        } else {
            None
        },
        stopping: StoppingSpec {
            max_generations: generations.max(1),
            max_evaluations: if options & 8 != 0 {
                Some(generations * population)
            } else {
                None
            },
            stagnation: if options & 16 != 0 {
                Some(((options % 9) + 1, probability * 1e-6))
            } else {
                None
            },
        },
        log_every: if options & 32 != 0 {
            Some((options % 11) + 1)
        } else {
            None
        },
    }
}

proptest! {
    #[test]
    fn prop_canonical_text_round_trips_exactly(
        kind in 0usize..3,
        population in 2usize..300,
        probability in 0.0f64..1.0,
        eta in 0.5f64..40.0,
        options in 0usize..128,
        seed in 0u64..1_000_000,
        generations in 1usize..1000,
        threads in 0usize..9,
    ) {
        let spec = build_spec(kind, population, probability, eta, options, seed, generations, threads);
        spec.validate().expect("generated specs are valid");
        let text = spec.to_text();
        let reparsed = RunSpec::from_text(&text).expect("canonical text parses");
        prop_assert_eq!(&reparsed, &spec);
        // Hash is a pure function of the canonical form.
        prop_assert_eq!(reparsed.content_hash(), spec.content_hash());
        // Re-rendering is idempotent.
        prop_assert_eq!(reparsed.to_text(), text);
    }

    #[test]
    fn prop_formatting_noise_is_normalized_away(
        kind in 0usize..3,
        population in 2usize..100,
        probability in 0.0f64..1.0,
        eta in 0.5f64..40.0,
        options in 0usize..128,
        seed in 0u64..1000,
    ) {
        let spec = build_spec(kind, population, probability, eta, options, seed, 50, 0);
        // Extra whitespace, comments and blank lines must not affect the
        // parsed value or its hash.
        let noisy: String = spec
            .to_text()
            .lines()
            .map(|line| format!("  {}   # noise\n\n", line.replace(" = ", "   =  ")))
            .collect();
        let reparsed = RunSpec::from_text(&noisy).expect("noisy text parses");
        prop_assert_eq!(&reparsed, &spec);
        prop_assert_eq!(reparsed.content_hash(), spec.content_hash());
    }

    #[test]
    fn prop_truncated_documents_never_panic(
        kind in 0usize..3,
        cut in 0usize..2000,
        seed in 0u64..1000,
    ) {
        let spec = build_spec(kind, 20, 0.5, 15.0, 63, seed, 50, 2);
        let text = spec.to_text();
        let cut = cut.min(text.len());
        if !text.is_char_boundary(cut) {
            return; // align on a UTF-8 boundary; content is ASCII anyway
        }
        // Parsing any prefix must either succeed (a shorter but complete
        // document) or fail with a structured error — never panic.
        let _ = RunSpec::from_text(&text[..cut]);
    }
}

#[test]
fn field_errors_name_the_offending_field() {
    let mut spec = build_spec(2, 20, 0.5, 15.0, 0, 1, 50, 0);
    if let OptimizerSpec::Archipelago(arch) = &mut spec.optimizer {
        arch.island.crossover_probability = 7.0;
    }
    match spec.validate() {
        Err(SpecError::Field { field, .. }) => {
            assert_eq!(field, "optimizer.crossover_probability");
        }
        other => panic!("expected a field error, got {other:?}"),
    }
}

#[test]
fn line_errors_point_at_the_line() {
    // Line 6 holds the broken value.
    let text =
        "pathway-spec v1\n[problem]\nname = zdt1\n[optimizer]\nkind = archipelago\nislands = two\n";
    match RunSpec::from_text(text) {
        Err(SpecError::Parse { line, message }) => {
            assert_eq!(line, 6);
            assert!(message.contains("islands"), "{message}");
        }
        other => panic!("expected a parse error, got {other:?}"),
    }
}
