//! Property tests for the telemetry registry's merge semantics.
//!
//! The registry's contract is that shard merging is deterministic: counters
//! add, gauges take the maximum, same-bounds histograms add elementwise —
//! all commutative and associative — so *any* merge order over *any*
//! sharding of the same recordings yields the same snapshot. These tests
//! sweep randomized operation streams split across snapshots and compare
//! left fold, right fold and balanced-tree merge orders.

use proptest::prelude::*;

use pathway_moo::engine::telemetry::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};

/// One randomized recording. Values are kept finite: gauge merging uses
/// `f64::max`, whose NaN handling is symmetric but makes snapshots
/// incomparable under `PartialEq`.
#[derive(Debug, Clone)]
enum Op {
    Add(usize, u64),
    Gauge(usize, f64),
    Observe(usize, f64),
}

const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];
const BOUNDS: [f64; 4] = [1.0, 10.0, 100.0, 1000.0];

/// Deterministically expands one drawn `u64` into an operation (the
/// vendored proptest shim has no combinators, so the decoding lives here).
fn decode(seed: u64) -> Op {
    let kind = seed % 3;
    let name = ((seed / 3) % NAMES.len() as u64) as usize;
    let magnitude = (seed >> 8) % 1_000_000;
    match kind {
        0 => Op::Add(name, magnitude % 1000),
        1 => Op::Gauge(name, magnitude as f64 - 500_000.0),
        _ => Op::Observe(name, magnitude as f64 / 50.0 - 10.0),
    }
}

fn apply(snapshot: &mut MetricsSnapshot, op: &Op) {
    match op {
        // Distinct name prefixes per kind: one name must stay one metric type.
        Op::Add(name, delta) => snapshot.add(&format!("count.{}", NAMES[*name]), *delta),
        Op::Gauge(name, value) => snapshot.set_gauge(&format!("gauge.{}", NAMES[*name]), *value),
        Op::Observe(name, value) => {
            snapshot.observe(&format!("hist.{}", NAMES[*name]), &BOUNDS, *value);
        }
    }
}

/// Splits an operation stream into `shards` snapshots round-robin, like
/// worker threads each recording into their own shard.
fn shard_ops(ops: &[Op], shards: usize) -> Vec<MetricsSnapshot> {
    let mut snapshots = vec![MetricsSnapshot::default(); shards.max(1)];
    for (index, op) in ops.iter().enumerate() {
        apply(&mut snapshots[index % shards.max(1)], op);
    }
    snapshots
}

fn merge_left_fold(shards: &[MetricsSnapshot]) -> MetricsSnapshot {
    let mut merged = MetricsSnapshot::default();
    for shard in shards {
        merged.merge(shard);
    }
    merged
}

fn merge_right_fold(shards: &[MetricsSnapshot]) -> MetricsSnapshot {
    let mut merged = MetricsSnapshot::default();
    for shard in shards.iter().rev() {
        merged.merge(shard);
    }
    merged
}

fn merge_tree(shards: &[MetricsSnapshot]) -> MetricsSnapshot {
    match shards.len() {
        0 => MetricsSnapshot::default(),
        1 => shards[0].clone(),
        n => {
            let mut left = merge_tree(&shards[..n / 2]);
            left.merge(&merge_tree(&shards[n / 2..]));
            left
        }
    }
}

proptest! {
    /// Merge order never changes a snapshot: left fold, right fold and
    /// balanced tree agree for any op stream and any shard count.
    #[test]
    fn merge_order_never_changes_a_snapshot(
        seeds in proptest::collection::vec(0u64..u64::MAX, 0..120),
        shards in 1usize..8,
    ) {
        let ops: Vec<Op> = seeds.iter().copied().map(decode).collect();
        let sharded = shard_ops(&ops, shards);
        let left = merge_left_fold(&sharded);
        prop_assert_eq!(&left, &merge_right_fold(&sharded));
        prop_assert_eq!(&left, &merge_tree(&sharded));
    }

    /// Sharding itself is irrelevant: everything recorded into one shard
    /// equals the same stream split across many shards and merged — for
    /// counters and histograms exactly; gauges are excluded because
    /// splitting a *sequenced* stream of sets across shards legitimately
    /// changes which value is "last" (merge then takes the max).
    #[test]
    fn shard_count_is_irrelevant_for_counters_and_histograms(
        seeds in proptest::collection::vec(0u64..u64::MAX, 0..120),
        shards in 2usize..8,
    ) {
        let ops: Vec<Op> = seeds.iter().copied().map(decode).collect();
        let drop_gauges = |mut snapshot: MetricsSnapshot| {
            snapshot.metrics.retain(|name, _| !name.starts_with("gauge."));
            snapshot
        };
        let single = drop_gauges(merge_left_fold(&shard_ops(&ops, 1)));
        let many = drop_gauges(merge_left_fold(&shard_ops(&ops, shards)));
        prop_assert_eq!(single, many);
    }

    /// Every histogram observation lands in exactly one bucket, `count`
    /// equals the number of observations, and bucket assignment respects
    /// the inclusive upper bound.
    #[test]
    fn histogram_accounting_is_exact(values in proptest::collection::vec(-10.0f64..2e4, 0..200)) {
        let mut histogram = HistogramSnapshot::new(&BOUNDS);
        for value in &values {
            histogram.observe(*value);
        }
        prop_assert_eq!(histogram.count, values.len() as u64);
        prop_assert_eq!(histogram.counts.iter().sum::<u64>(), values.len() as u64);
        // The sum is fixed-point (~1e-6 resolution per observation).
        let expected_sum: f64 = values.iter().sum();
        prop_assert!((histogram.sum() - expected_sum).abs() <= 1e-5 * (values.len() + 1) as f64);
    }
}

#[test]
fn bucket_boundaries_are_inclusive_upper_bounds() {
    let mut histogram = HistogramSnapshot::new(&BOUNDS);
    for bound in BOUNDS {
        histogram.observe(bound); // exactly on each bound
        histogram.observe(bound + 1e-9); // just above each bound
    }
    // Each exact bound lands in its own bucket; each bound+ε lands one
    // bucket later (the last one overflowing).
    assert_eq!(histogram.counts, vec![1, 2, 2, 2, 1]);
    assert_eq!(histogram.count, 8);
}

#[test]
fn concurrent_registry_recordings_merge_exactly() {
    let registry = MetricsRegistry::new();
    std::thread::scope(|scope| {
        for worker in 0..6 {
            let registry = registry.clone();
            scope.spawn(move || {
                for i in 0..50 {
                    registry.add("count.total", 1);
                    registry.observe("hist.latency", &BOUNDS, (worker * 50 + i) as f64);
                }
            });
        }
    });
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("count.total"), Some(300));
    let histogram = snapshot.histogram("hist.latency").expect("recorded");
    assert_eq!(histogram.count, 300);
    assert_eq!(histogram.counts.iter().sum::<u64>(), 300);
}
