//! Property check: the bi-objective sweep fast path of
//! `fast_nondominated_sort` must agree with a textbook reference
//! implementation on random populations full of exact ties, duplicates and
//! infeasible solutions.

use pathway_moo::{constrained_dominates, fast_nondominated_sort, Individual};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn reference_ranks(individuals: &[Individual]) -> Vec<usize> {
    let n = individuals.len();
    let mut count = vec![0usize; n];
    let mut dominated: Vec<Vec<usize>> = vec![Vec::new(); n];
    for p in 0..n {
        for q in 0..n {
            if p != q && constrained_dominates(&individuals[p], &individuals[q]) {
                dominated[p].push(q);
            } else if p != q && constrained_dominates(&individuals[q], &individuals[p]) {
                count[p] += 1;
            }
        }
    }
    let mut ranks = vec![0usize; n];
    let mut current: Vec<usize> = (0..n).filter(|&p| count[p] == 0).collect();
    let mut rank = 0;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &p in &current {
            ranks[p] = rank;
            for &q in &dominated[p] {
                count[q] -= 1;
                if count[q] == 0 {
                    next.push(q);
                }
            }
        }
        rank += 1;
        current = next;
    }
    ranks
}

fn individual(objectives: Vec<f64>, violation: f64) -> Individual {
    Individual {
        variables: vec![],
        objectives,
        violation,
        rank: usize::MAX,
        crowding: 0.0,
    }
}

#[test]
fn sweep_matches_textbook_reference_on_random_bi_objective_populations() {
    let mut rng = StdRng::seed_from_u64(42);
    for trial in 0..500 {
        let n = rng.gen_range(1..40);
        let mut individuals: Vec<Individual> = (0..n)
            .map(|_| {
                // Coarse grid => lots of exact ties and duplicates.
                let f1 = rng.gen_range(0..6) as f64;
                let f2 = rng.gen_range(0..6) as f64;
                let violation = if rng.gen_bool(0.3) {
                    rng.gen_range(0..4) as f64
                } else {
                    0.0
                };
                individual(vec![f1, f2], violation)
            })
            .collect();
        let expected = reference_ranks(&individuals);
        let fronts = fast_nondominated_sort(&mut individuals);
        let got: Vec<usize> = individuals.iter().map(|i| i.rank).collect();
        assert_eq!(got, expected, "trial {trial} diverged");
        // Fronts must be consistent with ranks and cover everyone once.
        let mut seen = vec![false; n];
        for (rank, front) in fronts.iter().enumerate() {
            for &i in front {
                assert_eq!(individuals[i].rank, rank);
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
