//! Durable-checkpoint integration tests: golden-file format stability,
//! corruption/truncation error paths, and store-level spec-hash rejection.
//!
//! The golden file (`tests/golden/checkpoint-v1.ckpt`) pins the v1 byte
//! format: if the encoder drifts, old checkpoints silently stop loading, so
//! the test fails loudly instead. Regenerate deliberately with
//! `PATHWAY_REGEN_GOLDEN=1 cargo test -p pathway-moo --test checkpoint_store`
//! after bumping the format version.

use std::path::{Path, PathBuf};

use pathway_moo::engine::{
    decode_checkpoint, encode_checkpoint, read_checkpoint_file, write_checkpoint_file,
    ArchipelagoSpec, ArchipelagoState, CheckpointError, CheckpointRetention, CheckpointStore,
    Nsga2Spec, Nsga2State, OptimizerSpec, OptimizerState, ProblemSpec, RngState, RunCheckpoint,
    RunSpec, StoppingSpec,
};
use pathway_moo::{Individual, MigrationTopology};

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/checkpoint-v1.ckpt")
}

fn fixture_spec() -> RunSpec {
    RunSpec {
        problem: ProblemSpec::named("schaffer"),
        optimizer: OptimizerSpec::Archipelago(ArchipelagoSpec {
            islands: 2,
            island: Nsga2Spec {
                population: 4,
                ..Default::default()
            },
            migration_interval: 2,
            migration_probability: 0.5,
            topology: MigrationTopology::Ring,
        }),
        seed: 7,
        checkpoint_every: 2,
        retention: None,
        reference_point: Some(vec![30.0, 30.0]),
        stopping: StoppingSpec {
            max_generations: 6,
            ..Default::default()
        },
        log_every: None,
    }
}

/// An individual with hand-picked values, including the edge values the
/// codec must preserve bit-exactly (unassigned rank, infinite crowding,
/// negative zero).
fn fixture_individual(offset: f64, boundary: bool) -> Individual {
    let mut individual = Individual::from_evaluated(
        vec![offset, offset + 0.5, -0.0],
        vec![offset * offset, (offset - 2.0) * (offset - 2.0)],
        if boundary { 0.0 } else { 0.125 },
    );
    individual.rank = if boundary { usize::MAX } else { 1 };
    individual.crowding = if boundary { f64::INFINITY } else { 0.75 };
    individual
}

fn fixture_checkpoint() -> RunCheckpoint {
    RunCheckpoint {
        generation: 3,
        optimizer: OptimizerState::Archipelago(ArchipelagoState {
            islands: vec![
                Nsga2State {
                    rng: RngState([1, 2, 3, 4]),
                    evaluations: 16,
                    population: vec![
                        fixture_individual(0.25, false),
                        fixture_individual(1.5, true),
                    ],
                },
                Nsga2State {
                    rng: RngState([u64::MAX, 0, 42, 7]),
                    evaluations: 16,
                    population: vec![fixture_individual(0.75, false)],
                },
            ],
            archives: vec![vec![fixture_individual(1.0, true)], vec![]],
            migration_rng: RngState([9, 8, 7, 6]),
            generations_done: 3,
        }),
        // NaN entries must survive the trip (hypervolume can be
        // unmeasurable); NaN bit patterns are preserved via to_bits.
        hypervolume_history: vec![1.5, f64::NAN, 2.25],
        reference_point: Some(vec![30.0, 30.0]),
    }
}

/// Structural equality that treats NaN as equal to itself (PartialEq on the
/// checkpoint would fail on the NaN history entry).
fn assert_checkpoint_eq(a: &RunCheckpoint, b: &RunCheckpoint) {
    assert_eq!(a.generation, b.generation);
    assert_eq!(a.reference_point, b.reference_point);
    assert_eq!(a.hypervolume_history.len(), b.hypervolume_history.len());
    for (x, y) in a.hypervolume_history.iter().zip(&b.hypervolume_history) {
        assert_eq!(x.to_bits(), y.to_bits(), "hypervolume bits must match");
    }
    assert_eq!(a.optimizer, b.optimizer);
}

#[test]
fn golden_checkpoint_bytes_are_stable() {
    let path = golden_path();
    let bytes = encode_checkpoint(&fixture_spec().to_text(), &fixture_checkpoint());
    if std::env::var("PATHWAY_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
    }
    let golden = std::fs::read(&path)
        .expect("golden checkpoint file missing — run with PATHWAY_REGEN_GOLDEN=1 to (re)generate");
    assert_eq!(
        golden, bytes,
        "encoder output drifted from the committed v1 golden bytes; \
         old checkpoints would no longer load"
    );
    let stored = decode_checkpoint(&golden).expect("golden file decodes");
    assert_checkpoint_eq(&stored.checkpoint, &fixture_checkpoint());
    assert_eq!(stored.spec_text, fixture_spec().to_text());
    assert_eq!(stored.spec_hash, fixture_spec().content_hash());
}

#[test]
fn every_truncation_errors_instead_of_panicking() {
    let bytes = encode_checkpoint(&fixture_spec().to_text(), &fixture_checkpoint());
    for len in 0..bytes.len() {
        let result = decode_checkpoint(&bytes[..len]);
        assert!(
            result.is_err(),
            "decoding a {len}-byte prefix of a {}-byte checkpoint must fail",
            bytes.len()
        );
    }
}

#[test]
fn every_single_byte_flip_is_detected() {
    let bytes = encode_checkpoint(&fixture_spec().to_text(), &fixture_checkpoint());
    // Exhaustive over offsets is slow in debug builds; stride through the
    // file and always include the first/last bytes.
    let mut offsets: Vec<usize> = (0..bytes.len()).step_by(7).collect();
    offsets.push(bytes.len() - 1);
    for offset in offsets {
        let mut corrupted = bytes.clone();
        corrupted[offset] ^= 0x01;
        assert!(
            decode_checkpoint(&corrupted).is_err(),
            "flipping byte {offset} went undetected"
        );
    }
}

#[test]
fn atomic_write_leaves_no_partial_files_behind() {
    let dir = std::env::temp_dir().join(format!("pathway-atomic-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let target = dir.join("gen-3.ckpt");
    write_checkpoint_file(&target, &fixture_spec().to_text(), &fixture_checkpoint()).unwrap();
    let stored = read_checkpoint_file(&target).unwrap();
    assert_checkpoint_eq(&stored.checkpoint, &fixture_checkpoint());
    // The temporary file was renamed away.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|entry| entry.file_name().to_string_lossy().ends_with(".tmp"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_rejects_resume_under_a_different_spec() {
    let dir = std::env::temp_dir().join(format!("pathway-mismatch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = fixture_spec();
    let store = CheckpointStore::create(&dir, &spec).unwrap();
    let path = store.save(&fixture_checkpoint()).unwrap();

    // Same spec: accepted.
    CheckpointStore::load_matching(&path, &spec).expect("matching spec loads");

    // Any semantic difference (here: topology) is a refusal, not a warning.
    let mut divergent = spec.clone();
    if let OptimizerSpec::Archipelago(arch) = &mut divergent.optimizer {
        arch.topology = MigrationTopology::Broadcast;
    }
    match CheckpointStore::load_matching(&path, &divergent) {
        Err(CheckpointError::SpecMismatch { expected, found }) => {
            assert_eq!(expected, divergent.content_hash());
            assert_eq!(found, spec.content_hash());
        }
        other => panic!("expected SpecMismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn latest_picks_the_highest_generation() {
    let dir = std::env::temp_dir().join(format!("pathway-latest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = fixture_spec();
    let store = CheckpointStore::create(&dir, &spec).unwrap();
    for generation in [2, 10, 6] {
        let mut checkpoint = fixture_checkpoint();
        checkpoint.generation = generation;
        store.save(&checkpoint).unwrap();
    }
    let latest = store.latest().unwrap().expect("checkpoints exist");
    assert_eq!(CheckpointStore::generation_of(&latest), Some(10));
    std::fs::remove_dir_all(&dir).ok();
}

fn stored_generations(store: &CheckpointStore) -> Vec<usize> {
    let mut generations: Vec<usize> = std::fs::read_dir(store.dir())
        .unwrap()
        .filter_map(|entry| CheckpointStore::generation_of(&entry.unwrap().path()))
        .collect();
    generations.sort_unstable();
    generations
}

fn save_generation(store: &CheckpointStore, generation: usize) {
    let mut checkpoint = fixture_checkpoint();
    checkpoint.generation = generation;
    store.save(&checkpoint).unwrap();
}

#[test]
fn retention_keeps_last_k_plus_every_mth() {
    let dir = std::env::temp_dir().join(format!("pathway-retain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = fixture_spec();
    let store = CheckpointStore::create(&dir, &spec)
        .unwrap()
        .with_retention(Some(CheckpointRetention {
            keep_last: 2,
            keep_every: 4,
        }));
    for generation in 1..=10 {
        save_generation(&store, generation);
    }
    // Newest two (9, 10) plus the multiples of four (4, 8) survive.
    assert_eq!(stored_generations(&store), vec![4, 8, 9, 10]);
    // The latest checkpoint is always among the survivors.
    let latest = store.latest().unwrap().expect("survivors exist");
    assert_eq!(CheckpointStore::generation_of(&latest), Some(10));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retention_without_modular_keeps_is_a_sliding_window() {
    let dir = std::env::temp_dir().join(format!("pathway-retain-win-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = fixture_spec();
    let store = CheckpointStore::create(&dir, &spec)
        .unwrap()
        .with_retention(Some(CheckpointRetention {
            keep_last: 3,
            keep_every: 0,
        }));
    for generation in [5, 1, 9, 3, 7] {
        save_generation(&store, generation);
    }
    assert_eq!(stored_generations(&store), vec![5, 7, 9]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retention_never_deletes_the_checkpoint_just_saved() {
    // A directory with stale *higher* generations left by an earlier run:
    // a resumed run saving gen-9 must not have its fresh checkpoint
    // swallowed just because gen-10 outranks it.
    let dir = std::env::temp_dir().join(format!("pathway-retain-stale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = fixture_spec();
    let store = CheckpointStore::create(&dir, &spec)
        .unwrap()
        .with_retention(Some(CheckpointRetention {
            keep_last: 1,
            keep_every: 4,
        }));
    for generation in [4, 8, 10] {
        save_generation(&store, generation);
    }
    save_generation(&store, 9);
    let stored = stored_generations(&store);
    assert!(
        stored.contains(&9),
        "the just-saved gen-9 must survive its own prune (on disk: {stored:?})"
    );
    // An explicit prune (no fresh save to protect) applies the bare policy.
    store.prune().unwrap();
    assert_eq!(stored_generations(&store), vec![4, 8, 10]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn default_store_keeps_everything_and_spec_retention_is_wired_through() {
    let dir = std::env::temp_dir().join(format!("pathway-retain-def-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Default: no retention, all ten checkpoints stay.
    let store = CheckpointStore::create(&dir, &fixture_spec()).unwrap();
    assert_eq!(store.retention(), None);
    for generation in 1..=10 {
        save_generation(&store, generation);
    }
    assert_eq!(stored_generations(&store).len(), 10);
    std::fs::remove_dir_all(&dir).ok();

    // A spec-carried policy is installed by `create` automatically.
    let mut spec = fixture_spec();
    spec.retention = Some(CheckpointRetention {
        keep_last: 1,
        keep_every: 0,
    });
    let store = CheckpointStore::create(&dir, &spec).unwrap();
    assert_eq!(
        store.retention(),
        Some(CheckpointRetention {
            keep_last: 1,
            keep_every: 0
        })
    );
    for generation in 1..=10 {
        save_generation(&store, generation);
    }
    assert_eq!(stored_generations(&store), vec![10]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn latest_orders_generations_numerically_not_lexically() {
    // "gen-9.ckpt" > "gen-100.ckpt" as strings; a lexical `latest` would
    // resume a sweep cell from the wrong (older) generation. Guard the
    // numeric comparison with generations spanning one, two and three
    // digits.
    let dir = std::env::temp_dir().join(format!("pathway-latest-num-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::create(&dir, &fixture_spec()).unwrap();
    for generation in [2, 9, 10, 11, 100] {
        save_generation(&store, generation);
    }
    let latest = store.latest().unwrap().expect("five checkpoints on disk");
    assert_eq!(
        latest.file_name().and_then(|name| name.to_str()),
        Some("gen-100.ckpt"),
        "latest() picked {} — lexical ordering?",
        latest.display()
    );
    assert_eq!(CheckpointStore::generation_of(&latest), Some(100));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn latest_and_prune_ignore_stray_files() {
    // Sweeps multiply checkpoint directories; editors, rsync and notes
    // drop stray files into them. None of those may be picked as "latest"
    // and none may be deleted by retention pruning.
    let dir = std::env::temp_dir().join(format!("pathway-stray-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut spec = fixture_spec();
    spec.retention = Some(CheckpointRetention {
        keep_last: 2,
        keep_every: 10,
    });
    let store = CheckpointStore::create(&dir, &spec).unwrap();
    let strays = [
        "notes.txt",        // unrelated file
        "gen-x.ckpt",       // unparsable generation
        "gen-999.ckpt.tmp", // a leftover atomic-write temp file
        "zzz-gen-5.ckpt",   // lexically after every real checkpoint
    ];
    for stray in strays {
        std::fs::write(dir.join(stray), b"not a checkpoint").unwrap();
    }
    for generation in 1..=12 {
        save_generation(&store, generation);
    }
    // Retention kept the newest two (11, 12) and the every-10th (10);
    // every stray survived the pruning that deleted 1..=9.
    assert_eq!(stored_generations(&store), vec![10, 11, 12]);
    for stray in strays {
        assert!(dir.join(stray).exists(), "prune deleted stray '{stray}'");
    }
    let latest = store.latest().unwrap().expect("checkpoints on disk");
    assert_eq!(
        latest.file_name().and_then(|name| name.to_str()),
        Some("gen-12.ckpt")
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn two_digit_generations_resume_from_the_true_newest() {
    // keep_last = 1 across the 9 -> 10 digit-count boundary: the numeric
    // rank must keep gen-10 and drop gen-9, not the other way around.
    let dir = std::env::temp_dir().join(format!("pathway-digits-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut spec = fixture_spec();
    spec.retention = Some(CheckpointRetention {
        keep_last: 1,
        keep_every: 0,
    });
    let store = CheckpointStore::create(&dir, &spec).unwrap();
    save_generation(&store, 9);
    save_generation(&store, 10);
    assert_eq!(stored_generations(&store), vec![10]);
    let stored = CheckpointStore::load(&store.latest().unwrap().unwrap()).unwrap();
    assert_eq!(stored.generation(), 10);
    std::fs::remove_dir_all(&dir).ok();
}
