//! `Optimizer` trait conformance suite, run against every shipped
//! implementation (NSGA-II, MOEA/D, the PMO2 archipelago).
//!
//! The contract checked here is what `Driver` relies on:
//!
//! * `initialize` is idempotent and populates the population;
//! * `step` strictly increases the evaluation odometer;
//! * `front` is a mutually non-dominating subset of the population;
//! * `state`/`restore` round-trip the full run state: a restored optimizer
//!   continues bit-identically.

use pathway_moo::engine::{EngineError, Optimizer, OptimizerState};
use pathway_moo::problems::{Schaffer, Zdt1};
use pathway_moo::{
    dominates, Archipelago, ArchipelagoConfig, Individual, Moead, MoeadConfig, Nsga2, Nsga2Config,
};

fn signature(front: &[Individual]) -> Vec<(Vec<f64>, Vec<f64>, f64)> {
    front
        .iter()
        .map(|i| (i.variables.clone(), i.objectives.clone(), i.violation))
        .collect()
}

fn nsga2() -> Nsga2 {
    Nsga2::new(
        Nsga2Config {
            population_size: 20,
            ..Default::default()
        },
        7,
    )
}

fn moead() -> Moead {
    Moead::new(
        MoeadConfig {
            population_size: 20,
            neighborhood_size: 6,
            ..Default::default()
        },
        7,
    )
}

fn archipelago() -> Archipelago {
    Archipelago::new(
        ArchipelagoConfig {
            islands: 2,
            island_config: Nsga2Config {
                population_size: 12,
                ..Default::default()
            },
            migration_interval: 2,
            migration_probability: 0.5,
            ..Default::default()
        },
        7,
    )
}

/// The shared conformance checks, generic over the optimizer under test.
fn conformance<O, F>(make: F)
where
    O: Optimizer<Schaffer>,
    F: Fn() -> O,
{
    let problem = Schaffer;
    let mut optimizer = make();

    // Fresh optimizers are empty and have spent nothing.
    assert_eq!(optimizer.evaluations(), 0);
    assert!(optimizer.population().is_empty());
    assert!(optimizer.front().is_empty());

    // initialize populates and is idempotent.
    optimizer.initialize(&problem);
    let after_init = optimizer.evaluations();
    assert!(after_init > 0);
    let population = optimizer.population();
    assert!(!population.is_empty());
    optimizer.initialize(&problem);
    assert_eq!(
        optimizer.evaluations(),
        after_init,
        "initialize must be idempotent"
    );
    assert_eq!(optimizer.population().len(), population.len());

    // step strictly increases the evaluation odometer.
    let mut previous = after_init;
    for generation in 0..5 {
        optimizer.step(&problem);
        let now = optimizer.evaluations();
        assert!(
            now > previous,
            "step {generation} did not spend evaluations ({previous} -> {now})"
        );
        previous = now;
    }

    // The front is non-empty, mutually non-dominating, and drawn from the
    // population.
    let front = optimizer.front();
    assert!(!front.is_empty());
    for a in &front {
        for b in &front {
            assert!(
                !dominates(&a.objectives, &b.objectives) || a.objectives == b.objectives,
                "front members must not dominate each other"
            );
        }
    }
    let population = optimizer.population();
    for member in &front {
        assert!(
            population
                .iter()
                .any(|p| p.variables == member.variables && p.objectives == member.objectives),
            "every front member must come from the population"
        );
    }

    // state/restore round-trips bit for bit: a restored twin stays in
    // lock-step with the original.
    let snapshot = optimizer.state();
    let mut twin = make();
    twin.restore(snapshot)
        .expect("same-configuration restore succeeds");
    assert_eq!(twin.evaluations(), optimizer.evaluations());
    assert_eq!(signature(&twin.front()), signature(&optimizer.front()));
    for _ in 0..3 {
        optimizer.step(&problem);
        twin.step(&problem);
    }
    assert_eq!(signature(&twin.front()), signature(&optimizer.front()));
    assert_eq!(twin.evaluations(), optimizer.evaluations());
}

#[test]
fn nsga2_conforms_to_the_optimizer_contract() {
    conformance(nsga2);
}

#[test]
fn moead_conforms_to_the_optimizer_contract() {
    conformance(moead);
}

#[test]
fn archipelago_conforms_to_the_optimizer_contract() {
    conformance(archipelago);
}

#[test]
fn restore_rejects_foreign_snapshots() {
    let problem = Zdt1 { variables: 4 };
    let mut donor = nsga2();
    donor.initialize(&problem);
    let nsga2_state = Optimizer::<Zdt1>::state(&donor);

    let mut wrong = moead();
    match Optimizer::<Zdt1>::restore(&mut wrong, nsga2_state.clone()) {
        Err(EngineError::StateMismatch { expected, found }) => {
            assert_eq!(expected, "Moead");
            assert_eq!(found, "Nsga2");
        }
        other => panic!("expected a state mismatch, got {other:?}"),
    }

    let mut also_wrong = archipelago();
    assert!(Optimizer::<Zdt1>::restore(&mut also_wrong, nsga2_state).is_err());
}

#[test]
fn restore_rejects_mismatched_island_counts() {
    let mut donor = archipelago();
    donor.initialize(&Schaffer);
    let state = Optimizer::<Schaffer>::state(&donor);

    let mut three_islands = Archipelago::new(
        ArchipelagoConfig {
            islands: 3,
            island_config: Nsga2Config {
                population_size: 12,
                ..Default::default()
            },
            migration_interval: 2,
            ..Default::default()
        },
        7,
    );
    match Optimizer::<Schaffer>::restore(&mut three_islands, state) {
        Err(EngineError::ConfigMismatch { detail }) => {
            assert!(detail.contains("islands"), "unexpected detail: {detail}")
        }
        other => panic!("expected a config mismatch, got {other:?}"),
    }
}

#[test]
fn snapshots_are_plain_data() {
    let mut optimizer = archipelago();
    optimizer.initialize(&Schaffer);
    optimizer.step(&Schaffer);
    // The snapshot is inspectable plain data: islands, archives, counters.
    match Optimizer::<Schaffer>::state(&optimizer) {
        OptimizerState::Archipelago(state) => {
            assert_eq!(state.islands.len(), 2);
            assert_eq!(state.archives.len(), 2);
            assert_eq!(state.generations_done, 1);
            let spent: usize = state.islands.iter().map(|i| i.evaluations).sum();
            assert_eq!(spent, optimizer.evaluations());
        }
        other => panic!(
            "archipelago must snapshot as Archipelago, got {}",
            other.kind()
        ),
    }
}
