//! Pareto-front mining: trade-off selection strategies (Section 2.2 of the
//! paper).
//!
//! Multi-objective optimization returns a set of non-dominated solutions; in a
//! design setting somebody still has to pick one. The paper proposes three
//! automatic criteria — the solution closest to the ideal point, the
//! per-objective shadow minima, and a spread of equally spaced representatives
//! — and uses the *Pareto Relative Minimum* (the per-objective minimum
//! achieved by the algorithm) in place of the unknown true ideal point.

use crate::Individual;

/// The Pareto Relative Minimum (PRM): the minimum value achieved on each
/// objective across a front. Used as the ideal point when the true minima are
/// unknown.
///
/// Returns an empty vector for an empty front.
///
/// # Example
///
/// ```
/// use pathway_moo::mining::pareto_relative_minimum;
///
/// let front = vec![vec![1.0, 5.0], vec![3.0, 2.0]];
/// assert_eq!(pareto_relative_minimum(&front), vec![1.0, 2.0]);
/// ```
pub fn pareto_relative_minimum(front: &[Vec<f64>]) -> Vec<f64> {
    if front.is_empty() {
        return Vec::new();
    }
    let dim = front[0].len();
    (0..dim)
        .map(|m| front.iter().map(|p| p[m]).fold(f64::INFINITY, f64::min))
        .collect()
}

/// Per-objective ranges of a front (max - min), used for normalization.
fn objective_ranges(front: &[Vec<f64>]) -> Vec<f64> {
    if front.is_empty() {
        return Vec::new();
    }
    let dim = front[0].len();
    (0..dim)
        .map(|m| {
            let min = front.iter().map(|p| p[m]).fold(f64::INFINITY, f64::min);
            let max = front.iter().map(|p| p[m]).fold(f64::NEG_INFINITY, f64::max);
            (max - min).max(f64::EPSILON)
        })
        .collect()
}

/// Index of the front member closest (normalized Euclidean distance) to the
/// ideal point. Uses the PRM as the ideal point, exactly as the paper does.
///
/// Returns `None` for an empty front.
pub fn closest_to_ideal(front: &[Vec<f64>]) -> Option<usize> {
    if front.is_empty() {
        return None;
    }
    let ideal = pareto_relative_minimum(front);
    let ranges = objective_ranges(front);
    front
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            let da: f64 = a
                .iter()
                .zip(&ideal)
                .zip(&ranges)
                .map(|((v, z), r)| ((v - z) / r).powi(2))
                .sum();
            let db: f64 = b
                .iter()
                .zip(&ideal)
                .zip(&ranges)
                .map(|((v, z), r)| ((v - z) / r).powi(2))
                .sum();
            da.partial_cmp(&db).expect("distances are finite")
        })
        .map(|(i, _)| i)
}

/// Indices of the shadow minima: for each objective, the front member that
/// achieves the lowest value on that objective.
///
/// Returns one index per objective (indices may repeat if one solution is best
/// on several objectives); empty for an empty front.
pub fn shadow_minima(front: &[Vec<f64>]) -> Vec<usize> {
    if front.is_empty() {
        return Vec::new();
    }
    let dim = front[0].len();
    (0..dim)
        .map(|m| {
            front
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a[m].partial_cmp(&b[m]).expect("objectives are not NaN"))
                .map(|(i, _)| i)
                .expect("front is non-empty")
        })
        .collect()
}

/// Picks `count` representatives spread equally along the front, ordered by
/// the first objective. The paper uses this to select the 50 points whose
/// robustness builds the Figure 3 Pareto surface.
///
/// If the front has fewer than `count` members, every index is returned.
pub fn equally_spaced(front: &[Vec<f64>], count: usize) -> Vec<usize> {
    if front.is_empty() || count == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..front.len()).collect();
    order.sort_by(|&a, &b| {
        front[a][0]
            .partial_cmp(&front[b][0])
            .expect("objectives are not NaN")
    });
    if front.len() <= count {
        return order;
    }
    (0..count)
        .map(|k| {
            let position = k as f64 / (count - 1).max(1) as f64 * (order.len() - 1) as f64;
            order[position.round() as usize]
        })
        .collect()
}

/// Convenience: applies [`closest_to_ideal`] to a set of [`Individual`]s and
/// returns a clone of the selected one.
pub fn select_closest_to_ideal(front: &[Individual]) -> Option<Individual> {
    let objectives: Vec<Vec<f64>> = front.iter().map(|i| i.objectives.clone()).collect();
    closest_to_ideal(&objectives).map(|index| front[index].clone())
}

/// Convenience: applies [`shadow_minima`] to a set of [`Individual`]s.
pub fn select_shadow_minima(front: &[Individual]) -> Vec<Individual> {
    let objectives: Vec<Vec<f64>> = front.iter().map(|i| i.objectives.clone()).collect();
    shadow_minima(&objectives)
        .into_iter()
        .map(|index| front[index].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staircase() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 10.0],
            vec![2.0, 6.0],
            vec![5.0, 5.0],
            vec![8.0, 2.0],
            vec![10.0, 0.0],
        ]
    }

    #[test]
    fn prm_is_the_componentwise_minimum() {
        assert_eq!(pareto_relative_minimum(&staircase()), vec![0.0, 0.0]);
        assert!(pareto_relative_minimum(&[]).is_empty());
    }

    #[test]
    fn closest_to_ideal_picks_the_knee() {
        // With both objectives normalized to [0,1], the point (2,6) has
        // normalized distance sqrt(0.2²+0.6²) ≈ 0.63, which beats (5,5) at
        // sqrt(0.5²+0.5²) ≈ 0.71 and all the extremes (1.0).
        assert_eq!(closest_to_ideal(&staircase()), Some(1));
        assert_eq!(closest_to_ideal(&[]), None);
    }

    #[test]
    fn closest_to_ideal_normalizes_objective_scales() {
        // Same staircase but the second objective is 1000x larger; the pick
        // must not change because of the normalization.
        let scaled: Vec<Vec<f64>> = staircase()
            .into_iter()
            .map(|p| vec![p[0], p[1] * 1000.0])
            .collect();
        assert_eq!(closest_to_ideal(&scaled), closest_to_ideal(&staircase()));
    }

    #[test]
    fn shadow_minima_pick_the_extremes() {
        let minima = shadow_minima(&staircase());
        assert_eq!(minima, vec![0, 4]);
        assert!(shadow_minima(&[]).is_empty());
    }

    #[test]
    fn shadow_minima_may_repeat_when_one_point_wins_everywhere() {
        let front = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        assert_eq!(shadow_minima(&front), vec![0, 0]);
    }

    #[test]
    fn equally_spaced_selects_spread_points() {
        let front: Vec<Vec<f64>> = (0..101).map(|i| vec![i as f64, 100.0 - i as f64]).collect();
        let picks = equally_spaced(&front, 5);
        assert_eq!(picks.len(), 5);
        let values: Vec<f64> = picks.iter().map(|&i| front[i][0]).collect();
        assert_eq!(values, vec![0.0, 25.0, 50.0, 75.0, 100.0]);
    }

    #[test]
    fn equally_spaced_handles_small_fronts_and_zero_count() {
        let front = staircase();
        assert_eq!(equally_spaced(&front, 10).len(), front.len());
        assert!(equally_spaced(&front, 0).is_empty());
        assert!(equally_spaced(&[], 5).is_empty());
    }

    #[test]
    fn individual_wrappers_return_clones() {
        let individuals: Vec<Individual> = staircase()
            .into_iter()
            .map(|objectives| Individual {
                variables: vec![],
                objectives,
                violation: 0.0,
                rank: 0,
                crowding: 0.0,
            })
            .collect();
        let knee = select_closest_to_ideal(&individuals).unwrap();
        assert_eq!(knee.objectives, vec![2.0, 6.0]);
        let minima = select_shadow_minima(&individuals);
        assert_eq!(minima.len(), 2);
        assert_eq!(minima[0].objectives, vec![0.0, 10.0]);
        assert_eq!(minima[1].objectives, vec![10.0, 0.0]);
    }
}
