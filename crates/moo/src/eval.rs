//! Evaluation backends: how a batch of candidate decision vectors is turned
//! into evaluated [`Individual`]s.
//!
//! The expensive part of every study in this workspace is the objective
//! oracle — an FBA simplex solve per candidate for the Geobacter problem, an
//! ODE steady state per candidate for the leaf model. The algorithms
//! therefore produce their whole offspring batch up front (variation is
//! RNG-driven and stays serial) and hand it to an [`EvalBackend`] in one
//! call. Because objective evaluation is a pure function of the decision
//! vector and the backend preserves batch order, every backend produces
//! **bit-identical** results for a fixed seed — `Threads(n)` only changes
//! wall-clock time, never the trajectory of the search.

use crate::{Individual, MultiObjectiveProblem};

/// Strategy used to evaluate a batch of candidate decision vectors.
///
/// The default is [`EvalBackend::Serial`]. `Threads(n)` splits the batch
/// into `n` contiguous chunks evaluated on scoped OS threads
/// (`std::thread::scope`), which requires nothing beyond the
/// [`MultiObjectiveProblem`]'s existing `Sync` bound.
///
/// # Determinism
///
/// All backends return results in batch order and never touch the caller's
/// RNG, so for a fixed seed `Serial` and `Threads(n)` produce bit-identical
/// populations for every `n`. The determinism test-suite
/// (`tests/determinism.rs`) asserts this on Schaffer, ZDT1 and the
/// Geobacter problem.
///
/// # Example
///
/// ```
/// use pathway_moo::{EvalBackend, problems::Schaffer};
///
/// let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
/// let serial = EvalBackend::Serial.evaluate_batch(&Schaffer, &xs);
/// let threaded = EvalBackend::Threads(2).evaluate_batch(&Schaffer, &xs);
/// assert_eq!(serial, threaded);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalBackend {
    /// Evaluate the batch on the calling thread, in order.
    #[default]
    Serial,
    /// Evaluate the batch on this many scoped worker threads. `Threads(0)`
    /// and `Threads(1)` are equivalent to [`EvalBackend::Serial`].
    Threads(usize),
}

impl EvalBackend {
    /// Number of worker threads this backend will use for a batch of
    /// `batch_len` candidates (at least 1, at most one per candidate).
    pub fn workers(&self, batch_len: usize) -> usize {
        match *self {
            EvalBackend::Serial => 1,
            EvalBackend::Threads(n) => n.max(1).min(batch_len.max(1)),
        }
    }

    /// Evaluates a batch of decision vectors, returning
    /// `(objectives, constraint_violation)` per candidate in batch order.
    ///
    /// Delegates to [`MultiObjectiveProblem::evaluate_batch`] per chunk, so
    /// problems that override the batched entry point benefit under every
    /// backend.
    pub fn evaluate_batch<P: MultiObjectiveProblem>(
        &self,
        problem: &P,
        xs: &[Vec<f64>],
    ) -> Vec<(Vec<f64>, f64)> {
        let workers = self.workers(xs.len());
        if workers <= 1 {
            return problem.evaluate_batch(xs);
        }
        let chunk_size = xs.len().div_ceil(workers);
        let mut results: Vec<(Vec<f64>, f64)> = Vec::with_capacity(xs.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = xs
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || problem.evaluate_batch(chunk)))
                .collect();
            for handle in handles {
                results.extend(handle.join().expect("evaluation thread must not panic"));
            }
        });
        results
    }

    /// Evaluates a batch of decision vectors into [`Individual`]s (rank and
    /// crowding left unassigned), preserving batch order.
    pub fn evaluate_individuals<P: MultiObjectiveProblem>(
        &self,
        problem: &P,
        variables: Vec<Vec<f64>>,
    ) -> Vec<Individual> {
        let evaluated = self.evaluate_batch(problem, &variables);
        variables
            .into_iter()
            .zip(evaluated)
            .map(|(x, (objectives, violation))| {
                Individual::from_evaluated(x, objectives, violation)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{BinhKorn, Schaffer};

    fn candidates(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![-5.0 + i as f64 * 0.37]).collect()
    }

    #[test]
    fn serial_matches_itemwise_evaluation() {
        let xs = candidates(7);
        let batch = EvalBackend::Serial.evaluate_batch(&Schaffer, &xs);
        for (x, (objectives, violation)) in xs.iter().zip(&batch) {
            assert_eq!(objectives, &Schaffer.evaluate(x));
            assert_eq!(*violation, Schaffer.constraint_violation(x));
        }
    }

    #[test]
    fn threads_match_serial_for_every_worker_count() {
        let xs = candidates(13);
        let serial = EvalBackend::Serial.evaluate_batch(&Schaffer, &xs);
        for n in [1, 2, 3, 4, 8, 32] {
            assert_eq!(
                EvalBackend::Threads(n).evaluate_batch(&Schaffer, &xs),
                serial
            );
        }
    }

    #[test]
    fn constraint_violations_survive_the_threaded_path() {
        let xs: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![i as f64 * 0.6, 3.0 - i as f64 * 0.3])
            .collect();
        let serial = EvalBackend::Serial.evaluate_batch(&BinhKorn, &xs);
        let threaded = EvalBackend::Threads(3).evaluate_batch(&BinhKorn, &xs);
        assert_eq!(serial, threaded);
        assert!(
            serial.iter().any(|(_, v)| *v > 0.0),
            "some candidate is infeasible"
        );
    }

    #[test]
    fn degenerate_worker_counts_are_clamped() {
        assert_eq!(EvalBackend::Threads(0).workers(10), 1);
        assert_eq!(EvalBackend::Threads(16).workers(3), 3);
        assert_eq!(EvalBackend::Serial.workers(10), 1);
        let empty: Vec<Vec<f64>> = Vec::new();
        assert!(EvalBackend::Threads(4)
            .evaluate_batch(&Schaffer, &empty)
            .is_empty());
    }

    #[test]
    fn evaluate_individuals_preserves_order_and_variables() {
        let xs = candidates(6);
        let individuals = EvalBackend::Threads(2).evaluate_individuals(&Schaffer, xs.clone());
        assert_eq!(individuals.len(), xs.len());
        for (individual, x) in individuals.iter().zip(&xs) {
            assert_eq!(&individual.variables, x);
            assert_eq!(individual.objectives, Schaffer.evaluate(x));
        }
    }
}
