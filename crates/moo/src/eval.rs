//! Evaluation backends: how a batch of candidate decision vectors is turned
//! into evaluated [`Individual`]s.
//!
//! The expensive part of every study in this workspace is the objective
//! oracle — an FBA steady-state residual per candidate for the Geobacter
//! problem, an ODE steady state per candidate for the leaf model. The
//! algorithms therefore produce their whole offspring batch up front
//! (variation is RNG-driven and stays serial) and hand it to an evaluation
//! backend in one call. Because objective evaluation is a pure function of
//! the decision vector and the backend preserves batch order, every backend
//! produces **bit-identical** results for a fixed seed — `Threads(n)` only
//! changes wall-clock time, never the trajectory of the search.
//!
//! [`EvalBackend`] is the *description* (serial or `n` workers, as carried
//! by configs and run specs); [`crate::exec::Executor`] is the *runtime
//! object* — a persistent worker pool that outlives individual batches.
//! Optimizers build one executor per run from their configured backend and
//! feed it every batch, so worker threads are spawned once instead of per
//! generation.

use crate::exec::Executor;
use crate::{Individual, MultiObjectiveProblem};

/// Strategy used to evaluate a batch of candidate decision vectors.
///
/// The default is [`EvalBackend::Serial`]. `Threads(n)` splits each batch
/// into `n` contiguous chunks evaluated on a persistent pool of `n` worker
/// threads (one [`crate::exec::Executor`] per run), which requires nothing
/// beyond the [`MultiObjectiveProblem`]'s existing `Sync` bound.
///
/// # Determinism
///
/// All backends return results in batch order and never touch the caller's
/// RNG, so for a fixed seed `Serial` and `Threads(n)` produce bit-identical
/// populations for every `n`. The determinism test-suite
/// (`tests/determinism.rs`) asserts this on Schaffer, ZDT1 and the
/// Geobacter problem, for the pooled executor included.
///
/// # Example
///
/// ```
/// use pathway_moo::{EvalBackend, problems::Schaffer};
///
/// let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
/// let serial = EvalBackend::Serial.evaluate_batch(&Schaffer, &xs);
/// let threaded = EvalBackend::Threads(2).evaluate_batch(&Schaffer, &xs);
/// assert_eq!(serial, threaded);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalBackend {
    /// Evaluate the batch on the calling thread, in order.
    #[default]
    Serial,
    /// Evaluate the batch on a persistent pool of this many worker threads.
    ///
    /// `Threads(0)` and `Threads(1)` are *exactly* equivalent to
    /// [`EvalBackend::Serial`]: [`crate::exec::Executor::new`]
    /// short-circuits them to the serial executor without constructing any
    /// pool — a one-worker pool could only evaluate the same chunks the
    /// calling thread evaluates anyway, so the degenerate counts buy the
    /// thread-spawn cost and nothing else.
    Threads(usize),
}

impl EvalBackend {
    /// Degree of parallelism this backend asks for on a batch of
    /// `batch_len` candidates (at least 1, at most one lane per candidate).
    /// Both the transient convenience path below and
    /// [`Executor::map_chunks`]'s chunking honor this clamp.
    pub fn workers(&self, batch_len: usize) -> usize {
        match *self {
            EvalBackend::Serial => 1,
            EvalBackend::Threads(n) => n.max(1).min(batch_len.max(1)),
        }
    }

    /// A transient executor sized for one batch of `batch_len` candidates:
    /// never more lanes (and so never more spawned threads) than the batch
    /// has candidates.
    fn batch_executor(&self, batch_len: usize) -> Executor {
        Executor::new(EvalBackend::Threads(self.workers(batch_len)))
    }

    /// Evaluates a batch of decision vectors, returning
    /// `(objectives, constraint_violation)` per candidate in batch order.
    ///
    /// Convenience entry point that builds a **transient**
    /// [`Executor`] for this one call — the cost of the old
    /// per-batch scoped-thread strategy. Code on a hot path (every
    /// optimizer in this crate) holds a persistent executor instead and
    /// calls [`Executor::evaluate_batch`] on it directly, paying the pool
    /// spawn once per run rather than once per batch.
    pub fn evaluate_batch<P: MultiObjectiveProblem>(
        &self,
        problem: &P,
        xs: &[Vec<f64>],
    ) -> Vec<(Vec<f64>, f64)> {
        self.batch_executor(xs.len()).evaluate_batch(problem, xs)
    }

    /// Evaluates a batch of decision vectors into [`Individual`]s (rank and
    /// crowding left unassigned), preserving batch order. Transient-executor
    /// convenience like [`EvalBackend::evaluate_batch`].
    pub fn evaluate_individuals<P: MultiObjectiveProblem>(
        &self,
        problem: &P,
        variables: Vec<Vec<f64>>,
    ) -> Vec<Individual> {
        self.batch_executor(variables.len())
            .evaluate_individuals(problem, variables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{BinhKorn, Schaffer};

    fn candidates(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![-5.0 + i as f64 * 0.37]).collect()
    }

    #[test]
    fn serial_matches_itemwise_evaluation() {
        let xs = candidates(7);
        let batch = EvalBackend::Serial.evaluate_batch(&Schaffer, &xs);
        for (x, (objectives, violation)) in xs.iter().zip(&batch) {
            assert_eq!(objectives, &Schaffer.evaluate(x));
            assert_eq!(*violation, Schaffer.constraint_violation(x));
        }
    }

    #[test]
    fn threads_match_serial_for_every_worker_count() {
        let xs = candidates(13);
        let serial = EvalBackend::Serial.evaluate_batch(&Schaffer, &xs);
        for n in [1, 2, 3, 4, 8, 32] {
            assert_eq!(
                EvalBackend::Threads(n).evaluate_batch(&Schaffer, &xs),
                serial
            );
        }
    }

    #[test]
    fn constraint_violations_survive_the_threaded_path() {
        let xs: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![i as f64 * 0.6, 3.0 - i as f64 * 0.3])
            .collect();
        let serial = EvalBackend::Serial.evaluate_batch(&BinhKorn, &xs);
        let threaded = EvalBackend::Threads(3).evaluate_batch(&BinhKorn, &xs);
        assert_eq!(serial, threaded);
        assert!(
            serial.iter().any(|(_, v)| *v > 0.0),
            "some candidate is infeasible"
        );
    }

    #[test]
    fn degenerate_worker_counts_are_clamped() {
        assert_eq!(EvalBackend::Threads(0).workers(10), 1);
        assert_eq!(EvalBackend::Threads(16).workers(3), 3);
        assert_eq!(EvalBackend::Serial.workers(10), 1);
        let empty: Vec<Vec<f64>> = Vec::new();
        assert!(EvalBackend::Threads(4)
            .evaluate_batch(&Schaffer, &empty)
            .is_empty());
    }

    #[test]
    fn evaluate_individuals_preserves_order_and_variables() {
        let xs = candidates(6);
        let individuals = EvalBackend::Threads(2).evaluate_individuals(&Schaffer, xs.clone());
        assert_eq!(individuals.len(), xs.len());
        for (individual, x) in individuals.iter().zip(&xs) {
            assert_eq!(&individual.variables, x);
            assert_eq!(individual.objectives, Schaffer.evaluate(x));
        }
    }
}
