/// A box-bounded multi-objective minimization problem.
///
/// All objectives are minimized; problems whose natural formulation maximizes
/// a quantity (CO₂ uptake, biomass production, electron production) expose the
/// negated value, as is conventional.
///
/// Implementations must be [`Sync`] because the PMO2 archipelago evaluates
/// islands on separate threads.
///
/// # Example
///
/// ```
/// use pathway_moo::MultiObjectiveProblem;
///
/// /// Minimize (x², (x-2)²) over x ∈ [-5, 5] — the classic Schaffer problem.
/// struct MyProblem;
///
/// impl MultiObjectiveProblem for MyProblem {
///     fn num_variables(&self) -> usize { 1 }
///     fn num_objectives(&self) -> usize { 2 }
///     fn bounds(&self) -> Vec<(f64, f64)> { vec![(-5.0, 5.0)] }
///     fn evaluate(&self, x: &[f64]) -> Vec<f64> {
///         vec![x[0] * x[0], (x[0] - 2.0) * (x[0] - 2.0)]
///     }
/// }
///
/// let p = MyProblem;
/// assert_eq!(p.evaluate(&[0.0]), vec![0.0, 4.0]);
/// ```
pub trait MultiObjectiveProblem: Sync {
    /// Number of decision variables.
    fn num_variables(&self) -> usize;

    /// Number of objectives (at least 2).
    fn num_objectives(&self) -> usize;

    /// Per-variable `(lower, upper)` bounds; must have length
    /// [`MultiObjectiveProblem::num_variables`].
    fn bounds(&self) -> Vec<(f64, f64)>;

    /// Evaluates the objective vector (all objectives minimized) at `x`.
    fn evaluate(&self, x: &[f64]) -> Vec<f64>;

    /// Evaluates a batch of decision vectors, returning
    /// `(objectives, constraint_violation)` per candidate **in batch order**.
    ///
    /// The default implementation is a serial map over
    /// [`MultiObjectiveProblem::evaluate`] and
    /// [`MultiObjectiveProblem::constraint_violation`]. Problems whose oracle
    /// amortizes across candidates (shared factorizations, vectorized
    /// kernels — e.g. the Geobacter residual's one sparse matrix × matrix
    /// product over the whole batch) can override it; the
    /// [`crate::exec::Executor`]s call this entry point once per chunk, so
    /// an override speeds up the serial and the pooled path alike. Overrides
    /// must stay pure functions of each `x` (given the state frozen by
    /// [`MultiObjectiveProblem::prepare_batch`]) and preserve order,
    /// otherwise parallel runs lose bit-identity with serial runs.
    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<(Vec<f64>, f64)> {
        xs.iter()
            .map(|x| (self.evaluate(x), self.constraint_violation(x)))
            .collect()
    }

    /// Hook called exactly once with the **entire** batch before any
    /// (possibly chunked, possibly parallel) evaluation of it begins.
    ///
    /// [`crate::exec::Executor::evaluate_batch`] splits a batch into
    /// per-worker chunks and calls
    /// [`MultiObjectiveProblem::evaluate_batch`] once per chunk — so an
    /// oracle that carries state across batches (the warm-started leaf
    /// model's parent pool, for instance) must commit that state *here*,
    /// where the whole batch is visible, and treat it as frozen during the
    /// chunk evaluations. That freeze is what keeps chunked (pooled) runs
    /// bit-identical to serial runs. The default is a no-op: stateless
    /// oracles need nothing.
    fn prepare_batch(&self, _xs: &[Vec<f64>]) {}

    /// Total constraint violation at `x`; `0.0` means feasible. Algorithms use
    /// constrained-domination: feasible solutions dominate infeasible ones and
    /// among infeasible solutions the less-violating one wins.
    fn constraint_violation(&self, _x: &[f64]) -> f64 {
        0.0
    }

    /// Human-readable problem name, used in reports and benches.
    fn name(&self) -> &str {
        "unnamed problem"
    }

    /// Clamps a candidate decision vector into the problem's bounds.
    fn clamp(&self, x: &mut [f64]) {
        for (value, (lower, upper)) in x.iter_mut().zip(self.bounds()) {
            *value = value.clamp(lower, upper);
        }
    }
}

impl<T: MultiObjectiveProblem + ?Sized> MultiObjectiveProblem for &T {
    fn num_variables(&self) -> usize {
        (**self).num_variables()
    }
    fn num_objectives(&self) -> usize {
        (**self).num_objectives()
    }
    fn bounds(&self) -> Vec<(f64, f64)> {
        (**self).bounds()
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        (**self).evaluate(x)
    }
    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<(Vec<f64>, f64)> {
        (**self).evaluate_batch(xs)
    }
    fn prepare_batch(&self, xs: &[Vec<f64>]) {
        (**self).prepare_batch(xs);
    }
    fn constraint_violation(&self, x: &[f64]) -> f64 {
        (**self).constraint_violation(x)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::Schaffer;

    #[test]
    fn default_constraint_violation_is_zero() {
        assert_eq!(Schaffer.constraint_violation(&[1.0]), 0.0);
    }

    #[test]
    fn clamp_respects_bounds() {
        let mut x = vec![100.0];
        Schaffer.clamp(&mut x);
        let (lower, upper) = Schaffer.bounds()[0];
        assert!(x[0] >= lower && x[0] <= upper);
    }

    #[test]
    fn default_batch_evaluation_matches_itemwise_calls() {
        let xs = vec![vec![0.0], vec![1.0], vec![-2.5]];
        let batch = Schaffer.evaluate_batch(&xs);
        assert_eq!(batch.len(), xs.len());
        for (x, (objectives, violation)) in xs.iter().zip(&batch) {
            assert_eq!(objectives, &Schaffer.evaluate(x));
            assert_eq!(*violation, Schaffer.constraint_violation(x));
        }
    }

    #[test]
    fn references_implement_the_trait() {
        fn generic<P: MultiObjectiveProblem>(p: &P) -> usize {
            p.num_objectives()
        }
        assert_eq!(generic(&&Schaffer), 2);
    }
}
