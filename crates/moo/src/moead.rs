use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dominance::nondominated_filter;
use crate::engine::{EngineError, MoeadState, Optimizer, OptimizerState, RngState};
use crate::exec::Executor;
use crate::individual::sample_within;
use crate::{polynomial_mutation, sbx_crossover, EvalBackend, Individual, MultiObjectiveProblem};

/// Configuration of a MOEA/D run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoeadConfig {
    /// Number of sub-problems (weight vectors), which is also the population size.
    pub population_size: usize,
    /// Number of generations.
    pub generations: usize,
    /// Neighbourhood size (number of closest weight vectors).
    pub neighborhood_size: usize,
    /// SBX distribution index.
    pub eta_crossover: f64,
    /// Polynomial mutation distribution index.
    pub eta_mutation: f64,
    /// Per-gene mutation probability; `None` uses `1/n`.
    pub mutation_probability: Option<f64>,
    /// Backend used to evaluate the initial population batch. MOEA/D's
    /// generation loop updates sub-problems path-dependently and therefore
    /// stays serial, but initialization is embarrassingly parallel.
    pub backend: EvalBackend,
}

impl Default for MoeadConfig {
    fn default() -> Self {
        MoeadConfig {
            population_size: 100,
            generations: 250,
            neighborhood_size: 20,
            eta_crossover: 15.0,
            eta_mutation: 20.0,
            mutation_probability: None,
            backend: EvalBackend::Serial,
        }
    }
}

/// MOEA/D: multi-objective evolutionary algorithm based on decomposition
/// (Zhang & Li, 2007), with Tchebycheff aggregation.
///
/// This is the comparison baseline of the paper's Table 1. Only bi- and
/// tri-objective problems are supported, which covers everything the paper
/// evaluates.
///
/// The solver is step-driven: [`Moead::initialize`] builds the weight
/// vectors, neighbourhoods and initial population, [`Moead::step`] advances
/// one generation, and [`Moead::run`] is the convenience loop over the
/// configured generation budget. It implements
/// [`Optimizer`](crate::engine::Optimizer), so it can be driven, observed,
/// stopped early and checkpointed by a [`crate::engine::Driver`] exactly
/// like NSGA-II.
///
/// # Example
///
/// ```
/// use pathway_moo::{Moead, MoeadConfig, problems::Schaffer};
///
/// let config = MoeadConfig { population_size: 40, generations: 50, ..Default::default() };
/// let front = Moead::new(config, 3).run(&Schaffer);
/// assert!(!front.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Moead {
    config: MoeadConfig,
    rng: StdRng,
    /// Weight vectors, one per sub-problem. Empty until initialization;
    /// derived from the configuration and the problem's objective count
    /// only, so they are rebuilt (not checkpointed) on restore.
    weights: Vec<Vec<f64>>,
    /// Per-sub-problem neighbourhoods (indices of the closest weights).
    neighborhoods: Vec<Vec<usize>>,
    /// One incumbent per sub-problem, in weight order.
    population: Vec<Individual>,
    /// Running ideal point `z*` over everything evaluated so far.
    ideal: Vec<f64>,
    evaluations: usize,
    /// Lazily built from `config.backend` on first use, or injected via
    /// [`Moead::set_executor`]. Configuration, not run state.
    executor: Option<Arc<Executor>>,
}

impl Moead {
    /// Creates a solver with a deterministic seed.
    pub fn new(config: MoeadConfig, seed: u64) -> Self {
        Moead {
            config,
            rng: StdRng::seed_from_u64(seed),
            weights: Vec::new(),
            neighborhoods: Vec::new(),
            population: Vec::new(),
            ideal: Vec::new(),
            evaluations: 0,
            executor: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MoeadConfig {
        &self.config
    }

    /// Installs a (usually shared) evaluation executor for the initial
    /// population batch, replacing the one this solver would lazily build
    /// from its configured [`EvalBackend`]. Executors never change results,
    /// only where batches run.
    pub fn set_executor(&mut self, executor: Arc<Executor>) {
        self.executor = Some(executor);
    }

    /// The executor evaluating this solver's batches, building it from the
    /// configured backend on first use.
    fn executor(&mut self) -> Arc<Executor> {
        if self.executor.is_none() {
            self.executor = Some(Executor::shared(self.config.backend));
        }
        self.executor
            .clone()
            .expect("the executor was just installed")
    }

    /// Current population, one incumbent per sub-problem (empty before
    /// initialization).
    pub fn population(&self) -> &[Individual] {
        &self.population
    }

    /// Replaces the current population, e.g. to seed a run with known-good
    /// designs or to inject migrants. The ideal point is reset to the
    /// member-wise objective minimum of the new population.
    ///
    /// # Panics
    ///
    /// Panics if the solver is already initialized and `population` does not
    /// provide exactly one incumbent per weight vector.
    pub fn set_population(&mut self, population: Vec<Individual>) {
        if !self.weights.is_empty() {
            assert_eq!(
                population.len(),
                self.weights.len(),
                "MOEA/D needs exactly one incumbent per weight vector"
            );
        }
        self.ideal = ideal_point(&population);
        self.population = population;
    }

    /// Cumulative number of candidate evaluations spent so far.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Uniformly spread weight vectors for 2 or 3 objectives.
    fn weight_vectors(&self, num_objectives: usize) -> Vec<Vec<f64>> {
        let n = self.config.population_size.max(2);
        match num_objectives {
            2 => (0..n)
                .map(|i| {
                    let w = i as f64 / (n - 1) as f64;
                    vec![w, 1.0 - w]
                })
                .collect(),
            3 => {
                // Simplex-lattice design scaled to approximately n points.
                let mut weights = Vec::new();
                let h = ((2.0 * n as f64).sqrt() as usize).max(2);
                for i in 0..=h {
                    for j in 0..=(h - i) {
                        let k = h - i - j;
                        weights.push(vec![
                            i as f64 / h as f64,
                            j as f64 / h as f64,
                            k as f64 / h as f64,
                        ]);
                    }
                }
                weights
            }
            m => panic!("MOEA/D weight generation supports 2 or 3 objectives, got {m}"),
        }
    }

    fn tchebycheff(objectives: &[f64], weight: &[f64], ideal: &[f64]) -> f64 {
        objectives
            .iter()
            .zip(weight.iter())
            .zip(ideal.iter())
            .map(|((&f, &w), &z)| w.max(1e-6) * (f - z).abs())
            .fold(0.0, f64::max)
    }

    /// Builds the weight vectors, neighbourhoods and initial population if
    /// that has not happened yet. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the problem has more than three objectives, or if a
    /// population installed via [`Moead::set_population`] before
    /// initialization does not match the generated weight count.
    pub fn initialize<P: MultiObjectiveProblem>(&mut self, problem: &P) {
        if self.weights.is_empty() {
            self.weights = self.weight_vectors(problem.num_objectives());
            let n = self.weights.len();
            let t = self.config.neighborhood_size.min(n);
            self.neighborhoods = (0..n)
                .map(|i| {
                    let mut order: Vec<usize> = (0..n).collect();
                    order.sort_by(|&a, &b| {
                        let da: f64 = self.weights[i]
                            .iter()
                            .zip(&self.weights[a])
                            .map(|(x, y)| (x - y) * (x - y))
                            .sum();
                        let db: f64 = self.weights[i]
                            .iter()
                            .zip(&self.weights[b])
                            .map(|(x, y)| (x - y) * (x - y))
                            .sum();
                        da.partial_cmp(&db).expect("distances are finite")
                    });
                    order.into_iter().take(t).collect()
                })
                .collect();
        }
        if self.population.is_empty() {
            // One individual per sub-problem: sample every decision vector
            // first, then evaluate the batch through the executor.
            let bounds = problem.bounds();
            let initial_variables: Vec<Vec<f64>> = (0..self.weights.len())
                .map(|_| sample_within(&bounds, &mut self.rng))
                .collect();
            self.evaluations += initial_variables.len();
            self.population = self
                .executor()
                .evaluate_individuals(problem, initial_variables);
            self.ideal = ideal_point(&self.population);
        } else {
            assert_eq!(
                self.population.len(),
                self.weights.len(),
                "MOEA/D needs exactly one incumbent per weight vector"
            );
            if self.ideal.is_empty() {
                self.ideal = ideal_point(&self.population);
            }
        }
    }

    /// Advances the search by one generation: every sub-problem produces one
    /// child from its neighbourhood and the child competes for the
    /// neighbouring incumbencies under Tchebycheff aggregation.
    /// Initializes first if needed.
    pub fn step<P: MultiObjectiveProblem>(&mut self, problem: &P) {
        self.initialize(problem);
        let bounds = problem.bounds();
        let mutation_probability = self
            .config
            .mutation_probability
            .unwrap_or(1.0 / problem.num_variables() as f64);
        let t = self.config.neighborhood_size.min(self.weights.len());

        for k in 0..self.neighborhoods.len() {
            // Pick two parents from the neighbourhood.
            let pa = self.neighborhoods[k][self.rng.gen_range(0..t)];
            let pb = self.neighborhoods[k][self.rng.gen_range(0..t)];
            let (mut child, _) = sbx_crossover(
                &self.population[pa].variables,
                &self.population[pb].variables,
                &bounds,
                self.config.eta_crossover,
                &mut self.rng,
            );
            polynomial_mutation(
                &mut child,
                &bounds,
                mutation_probability,
                self.config.eta_mutation,
                &mut self.rng,
            );
            let child = Individual::from_variables(problem, child);
            self.evaluations += 1;

            // Update the ideal point.
            for (z, &f) in self.ideal.iter_mut().zip(&child.objectives) {
                *z = z.min(f);
            }
            // Update neighbouring sub-problems. Infeasible children are
            // only allowed to replace more-violating incumbents.
            for &j in &self.neighborhoods[k] {
                let incumbent = &self.population[j];
                let replace = if child.violation > 0.0 || incumbent.violation > 0.0 {
                    child.violation < incumbent.violation
                } else {
                    Self::tchebycheff(&child.objectives, &self.weights[j], &self.ideal)
                        <= Self::tchebycheff(&incumbent.objectives, &self.weights[j], &self.ideal)
                };
                if replace {
                    self.population[j] = child.clone();
                }
            }
        }
    }

    /// The non-dominated, feasible subset of the current population (or of
    /// the whole population when no member is feasible).
    pub fn front(&self) -> Vec<Individual> {
        let feasible: Vec<Individual> = self
            .population
            .iter()
            .filter(|individual| individual.is_feasible())
            .cloned()
            .collect();
        let pool = if feasible.is_empty() {
            self.population.clone()
        } else {
            feasible
        };
        let objectives: Vec<Vec<f64>> = pool.iter().map(|i| i.objectives.clone()).collect();
        let front = nondominated_filter(&objectives);
        pool.into_iter()
            .filter(|individual| front.contains(&individual.objectives))
            .collect()
    }

    /// Runs the configured number of generations and returns the
    /// non-dominated subset of the final population.
    ///
    /// # Panics
    ///
    /// Panics if the problem has more than three objectives.
    pub fn run<P: MultiObjectiveProblem>(&mut self, problem: &P) -> Vec<Individual> {
        self.initialize(problem);
        for _ in 0..self.config.generations {
            self.step(problem);
        }
        self.front()
    }

    /// Captures the solver's run state as plain data. The weight vectors and
    /// neighbourhoods are derived data and deliberately not captured — they
    /// are rebuilt on the next [`Moead::initialize`].
    pub(crate) fn snapshot(&self) -> MoeadState {
        MoeadState {
            rng: RngState::capture(&self.rng),
            population: self.population.clone(),
            ideal: self.ideal.clone(),
            evaluations: self.evaluations,
        }
    }

    /// Restores a snapshot captured with [`Moead::snapshot`].
    ///
    /// The incumbent count must match this solver's weight-vector count.
    /// When the solver has not built its weights yet, the count it *would*
    /// build is derived from the configuration and the snapshot's objective
    /// dimension, so a mismatched checkpoint is rejected here instead of
    /// panicking on the next [`Moead::initialize`].
    pub(crate) fn restore_snapshot(&mut self, state: MoeadState) -> Result<(), EngineError> {
        let expected = if !self.weights.is_empty() {
            Some(self.weights.len())
        } else {
            match state.population.first().map(|i| i.objectives.len()) {
                Some(objectives @ (2 | 3)) => Some(self.weight_vectors(objectives).len()),
                Some(objectives) => {
                    return Err(EngineError::ConfigMismatch {
                        detail: format!(
                            "snapshot has {objectives}-objective incumbents; MOEA/D supports \
                             2 or 3 objectives"
                        ),
                    })
                }
                None => None,
            }
        };
        if let Some(expected) = expected {
            if !state.population.is_empty() && state.population.len() != expected {
                return Err(EngineError::ConfigMismatch {
                    detail: format!(
                        "snapshot has {} incumbents but this solver generates {} weight vectors",
                        state.population.len(),
                        expected
                    ),
                });
            }
        }
        self.rng = state.rng.rebuild();
        self.population = state.population;
        self.ideal = state.ideal;
        self.evaluations = state.evaluations;
        Ok(())
    }
}

/// Per-objective minimum over a set of individuals; empty for an empty set.
fn ideal_point(population: &[Individual]) -> Vec<f64> {
    let Some(first) = population.first() else {
        return Vec::new();
    };
    let mut ideal = vec![f64::INFINITY; first.objectives.len()];
    for individual in population {
        for (z, &f) in ideal.iter_mut().zip(&individual.objectives) {
            *z = z.min(f);
        }
    }
    ideal
}

impl<P: MultiObjectiveProblem> Optimizer<P> for Moead {
    fn initialize(&mut self, problem: &P) {
        Moead::initialize(self, problem);
    }

    fn step(&mut self, problem: &P) {
        Moead::step(self, problem);
    }

    fn population(&self) -> Vec<Individual> {
        self.population.clone()
    }

    fn front(&self) -> Vec<Individual> {
        Moead::front(self)
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }

    fn state(&self) -> OptimizerState {
        OptimizerState::Moead(self.snapshot())
    }

    fn restore(&mut self, state: OptimizerState) -> Result<(), EngineError> {
        match state {
            OptimizerState::Moead(snapshot) => self.restore_snapshot(snapshot),
            other => Err(EngineError::StateMismatch {
                expected: "Moead",
                found: other.kind(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::dominates;
    use crate::problems::{Dtlz2, Schaffer, Zdt1};

    fn config(generations: usize) -> MoeadConfig {
        MoeadConfig {
            population_size: 40,
            generations,
            neighborhood_size: 10,
            ..Default::default()
        }
    }

    #[test]
    fn schaffer_front_is_covered() {
        let front = Moead::new(config(60), 4).run(&Schaffer);
        assert!(front.len() >= 5);
        for individual in &front {
            assert!(individual.variables[0] > -0.3 && individual.variables[0] < 2.3);
        }
    }

    #[test]
    fn front_is_mutually_nondominating() {
        let front = Moead::new(config(40), 8).run(&Zdt1 { variables: 6 });
        for a in &front {
            for b in &front {
                assert!(!dominates(&a.objectives, &b.objectives) || a.objectives == b.objectives);
            }
        }
    }

    #[test]
    fn three_objective_problem_is_supported() {
        let front = Moead::new(config(30), 5).run(&Dtlz2 { variables: 6 });
        assert!(!front.is_empty());
        assert_eq!(front[0].objectives.len(), 3);
    }

    #[test]
    fn tchebycheff_is_zero_at_the_ideal_point() {
        let value = Moead::tchebycheff(&[1.0, 2.0], &[0.5, 0.5], &[1.0, 2.0]);
        assert_eq!(value, 0.0);
        let worse = Moead::tchebycheff(&[2.0, 3.0], &[0.5, 0.5], &[1.0, 2.0]);
        assert!(worse > 0.0);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let a = Moead::new(config(15), 77).run(&Schaffer);
        let b = Moead::new(config(15), 77).run(&Schaffer);
        assert_eq!(
            a.iter().map(|i| i.objectives.clone()).collect::<Vec<_>>(),
            b.iter().map(|i| i.objectives.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stepwise_run_matches_monolithic_run() {
        let monolithic = Moead::new(config(12), 5).run(&Schaffer);
        let mut stepped = Moead::new(config(12), 5);
        stepped.initialize(&Schaffer);
        for _ in 0..12 {
            stepped.step(&Schaffer);
        }
        let front = stepped.front();
        assert_eq!(
            monolithic
                .iter()
                .map(|i| i.objectives.clone())
                .collect::<Vec<_>>(),
            front
                .iter()
                .map(|i| i.objectives.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn parity_accessors_expose_and_replace_the_population() {
        let mut solver = Moead::new(config(2), 3);
        solver.initialize(&Schaffer);
        assert_eq!(solver.population().len(), 40);
        assert_eq!(solver.evaluations(), 40);
        let mut replacement = solver.population().to_vec();
        replacement.reverse();
        solver.set_population(replacement);
        assert_eq!(solver.population().len(), 40);
        solver.step(&Schaffer);
        assert_eq!(solver.evaluations(), 80);
    }

    #[test]
    #[should_panic(expected = "one incumbent per weight vector")]
    fn set_population_rejects_wrong_sizes_once_initialized() {
        let mut solver = Moead::new(config(1), 0);
        solver.initialize(&Schaffer);
        solver.set_population(Vec::new());
    }

    #[test]
    #[should_panic(expected = "supports 2 or 3 objectives")]
    fn too_many_objectives_panic() {
        struct FourObjectives;
        impl MultiObjectiveProblem for FourObjectives {
            fn num_variables(&self) -> usize {
                1
            }
            fn num_objectives(&self) -> usize {
                4
            }
            fn bounds(&self) -> Vec<(f64, f64)> {
                vec![(0.0, 1.0)]
            }
            fn evaluate(&self, x: &[f64]) -> Vec<f64> {
                vec![x[0]; 4]
            }
        }
        let _ = Moead::new(config(1), 0).run(&FourObjectives);
    }
}
