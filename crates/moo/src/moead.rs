use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dominance::nondominated_filter;
use crate::individual::sample_within;
use crate::{polynomial_mutation, sbx_crossover, EvalBackend, Individual, MultiObjectiveProblem};

/// Configuration of a MOEA/D run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoeadConfig {
    /// Number of sub-problems (weight vectors), which is also the population size.
    pub population_size: usize,
    /// Number of generations.
    pub generations: usize,
    /// Neighbourhood size (number of closest weight vectors).
    pub neighborhood_size: usize,
    /// SBX distribution index.
    pub eta_crossover: f64,
    /// Polynomial mutation distribution index.
    pub eta_mutation: f64,
    /// Per-gene mutation probability; `None` uses `1/n`.
    pub mutation_probability: Option<f64>,
    /// Backend used to evaluate the initial population batch. MOEA/D's
    /// generation loop updates sub-problems path-dependently and therefore
    /// stays serial, but initialization is embarrassingly parallel.
    pub backend: EvalBackend,
}

impl Default for MoeadConfig {
    fn default() -> Self {
        MoeadConfig {
            population_size: 100,
            generations: 250,
            neighborhood_size: 20,
            eta_crossover: 15.0,
            eta_mutation: 20.0,
            mutation_probability: None,
            backend: EvalBackend::Serial,
        }
    }
}

/// MOEA/D: multi-objective evolutionary algorithm based on decomposition
/// (Zhang & Li, 2007), with Tchebycheff aggregation.
///
/// This is the comparison baseline of the paper's Table 1. Only bi- and
/// tri-objective problems are supported, which covers everything the paper
/// evaluates.
///
/// # Example
///
/// ```
/// use pathway_moo::{Moead, MoeadConfig, problems::Schaffer};
///
/// let config = MoeadConfig { population_size: 40, generations: 50, ..Default::default() };
/// let front = Moead::new(config, 3).run(&Schaffer);
/// assert!(!front.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Moead {
    config: MoeadConfig,
    rng: StdRng,
}

impl Moead {
    /// Creates a solver with a deterministic seed.
    pub fn new(config: MoeadConfig, seed: u64) -> Self {
        Moead {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MoeadConfig {
        &self.config
    }

    /// Uniformly spread weight vectors for 2 or 3 objectives.
    fn weight_vectors(&self, num_objectives: usize) -> Vec<Vec<f64>> {
        let n = self.config.population_size.max(2);
        match num_objectives {
            2 => (0..n)
                .map(|i| {
                    let w = i as f64 / (n - 1) as f64;
                    vec![w, 1.0 - w]
                })
                .collect(),
            3 => {
                // Simplex-lattice design scaled to approximately n points.
                let mut weights = Vec::new();
                let h = ((2.0 * n as f64).sqrt() as usize).max(2);
                for i in 0..=h {
                    for j in 0..=(h - i) {
                        let k = h - i - j;
                        weights.push(vec![
                            i as f64 / h as f64,
                            j as f64 / h as f64,
                            k as f64 / h as f64,
                        ]);
                    }
                }
                weights
            }
            m => panic!("MOEA/D weight generation supports 2 or 3 objectives, got {m}"),
        }
    }

    fn tchebycheff(objectives: &[f64], weight: &[f64], ideal: &[f64]) -> f64 {
        objectives
            .iter()
            .zip(weight.iter())
            .zip(ideal.iter())
            .map(|((&f, &w), &z)| w.max(1e-6) * (f - z).abs())
            .fold(0.0, f64::max)
    }

    /// Runs the algorithm and returns the non-dominated subset of the final
    /// population.
    ///
    /// # Panics
    ///
    /// Panics if the problem has more than three objectives.
    pub fn run<P: MultiObjectiveProblem>(&mut self, problem: &P) -> Vec<Individual> {
        let weights = self.weight_vectors(problem.num_objectives());
        let n = weights.len();
        let bounds = problem.bounds();
        let mutation_probability = self
            .config
            .mutation_probability
            .unwrap_or(1.0 / problem.num_variables() as f64);

        // Neighbourhoods: indices of the T closest weight vectors.
        let t = self.config.neighborhood_size.min(n);
        let mut neighborhoods: Vec<Vec<usize>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                let da: f64 = weights[i]
                    .iter()
                    .zip(&weights[a])
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum();
                let db: f64 = weights[i]
                    .iter()
                    .zip(&weights[b])
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum();
                da.partial_cmp(&db).expect("distances are finite")
            });
            neighborhoods.push(order.into_iter().take(t).collect());
        }

        // Initial population, one individual per sub-problem: sample every
        // decision vector first, then evaluate the batch through the backend.
        let initial_variables: Vec<Vec<f64>> = (0..n)
            .map(|_| sample_within(&bounds, &mut self.rng))
            .collect();
        let mut population: Vec<Individual> = self
            .config
            .backend
            .evaluate_individuals(problem, initial_variables);
        let mut ideal: Vec<f64> = vec![f64::INFINITY; problem.num_objectives()];
        for individual in &population {
            for (z, &f) in ideal.iter_mut().zip(&individual.objectives) {
                *z = z.min(f);
            }
        }

        for _ in 0..self.config.generations {
            for neighborhood in &neighborhoods {
                // Pick two parents from the neighbourhood.
                let pa = neighborhood[self.rng.gen_range(0..t)];
                let pb = neighborhood[self.rng.gen_range(0..t)];
                let (mut child, _) = sbx_crossover(
                    &population[pa].variables,
                    &population[pb].variables,
                    &bounds,
                    self.config.eta_crossover,
                    &mut self.rng,
                );
                polynomial_mutation(
                    &mut child,
                    &bounds,
                    mutation_probability,
                    self.config.eta_mutation,
                    &mut self.rng,
                );
                let child = Individual::from_variables(problem, child);

                // Update the ideal point.
                for (z, &f) in ideal.iter_mut().zip(&child.objectives) {
                    *z = z.min(f);
                }
                // Update neighbouring sub-problems. Infeasible children are
                // only allowed to replace more-violating incumbents.
                for &j in neighborhood {
                    let incumbent = &population[j];
                    let replace = if child.violation > 0.0 || incumbent.violation > 0.0 {
                        child.violation < incumbent.violation
                    } else {
                        Self::tchebycheff(&child.objectives, &weights[j], &ideal)
                            <= Self::tchebycheff(&incumbent.objectives, &weights[j], &ideal)
                    };
                    if replace {
                        population[j] = child.clone();
                    }
                }
            }
        }

        // Return the non-dominated, feasible subset.
        let feasible: Vec<Individual> = population
            .iter()
            .filter(|individual| individual.is_feasible())
            .cloned()
            .collect();
        let pool = if feasible.is_empty() {
            population
        } else {
            feasible
        };
        let objectives: Vec<Vec<f64>> = pool.iter().map(|i| i.objectives.clone()).collect();
        let front = nondominated_filter(&objectives);
        pool.into_iter()
            .filter(|individual| front.contains(&individual.objectives))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::dominates;
    use crate::problems::{Dtlz2, Schaffer, Zdt1};

    fn config(generations: usize) -> MoeadConfig {
        MoeadConfig {
            population_size: 40,
            generations,
            neighborhood_size: 10,
            ..Default::default()
        }
    }

    #[test]
    fn schaffer_front_is_covered() {
        let front = Moead::new(config(60), 4).run(&Schaffer);
        assert!(front.len() >= 5);
        for individual in &front {
            assert!(individual.variables[0] > -0.3 && individual.variables[0] < 2.3);
        }
    }

    #[test]
    fn front_is_mutually_nondominating() {
        let front = Moead::new(config(40), 8).run(&Zdt1 { variables: 6 });
        for a in &front {
            for b in &front {
                assert!(!dominates(&a.objectives, &b.objectives) || a.objectives == b.objectives);
            }
        }
    }

    #[test]
    fn three_objective_problem_is_supported() {
        let front = Moead::new(config(30), 5).run(&Dtlz2 { variables: 6 });
        assert!(!front.is_empty());
        assert_eq!(front[0].objectives.len(), 3);
    }

    #[test]
    fn tchebycheff_is_zero_at_the_ideal_point() {
        let value = Moead::tchebycheff(&[1.0, 2.0], &[0.5, 0.5], &[1.0, 2.0]);
        assert_eq!(value, 0.0);
        let worse = Moead::tchebycheff(&[2.0, 3.0], &[0.5, 0.5], &[1.0, 2.0]);
        assert!(worse > 0.0);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let a = Moead::new(config(15), 77).run(&Schaffer);
        let b = Moead::new(config(15), 77).run(&Schaffer);
        assert_eq!(
            a.iter().map(|i| i.objectives.clone()).collect::<Vec<_>>(),
            b.iter().map(|i| i.objectives.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "supports 2 or 3 objectives")]
    fn too_many_objectives_panic() {
        struct FourObjectives;
        impl MultiObjectiveProblem for FourObjectives {
            fn num_variables(&self) -> usize {
                1
            }
            fn num_objectives(&self) -> usize {
                4
            }
            fn bounds(&self) -> Vec<(f64, f64)> {
                vec![(0.0, 1.0)]
            }
            fn evaluate(&self, x: &[f64]) -> Vec<f64> {
                vec![x[0]; 4]
            }
        }
        let _ = Moead::new(config(1), 0).run(&FourObjectives);
    }
}
