use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{
    assign_crowding_distance, fast_nondominated_sort, polynomial_mutation, sbx_crossover,
    tournament_select, Individual, MultiObjectiveProblem, Population,
};

/// Configuration of an NSGA-II run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nsga2Config {
    /// Number of individuals kept each generation.
    pub population_size: usize,
    /// Number of generations to evolve.
    pub generations: usize,
    /// Probability of applying SBX crossover to a mating pair.
    pub crossover_probability: f64,
    /// SBX distribution index (η_c).
    pub eta_crossover: f64,
    /// Per-gene mutation probability; `None` uses the `1/n` convention.
    pub mutation_probability: Option<f64>,
    /// Polynomial-mutation distribution index (η_m).
    pub eta_mutation: f64,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            population_size: 100,
            generations: 250,
            crossover_probability: 0.9,
            eta_crossover: 15.0,
            mutation_probability: None,
            eta_mutation: 20.0,
        }
    }
}

/// The Non-dominated Sorting Genetic Algorithm II (Deb et al., 2002).
///
/// Derivative-free, elitist, with constrained-domination handling — the
/// island engine of the paper's PMO2 framework.
///
/// # Example
///
/// ```
/// use pathway_moo::{Nsga2, Nsga2Config, problems::Zdt1};
///
/// let config = Nsga2Config { population_size: 40, generations: 60, ..Default::default() };
/// let front = Nsga2::new(config, 1).run(&Zdt1 { variables: 6 });
/// assert!(front.len() > 5);
/// ```
#[derive(Debug, Clone)]
pub struct Nsga2 {
    config: Nsga2Config,
    rng: StdRng,
    population: Population,
}

impl Nsga2 {
    /// Creates a solver with a deterministic seed.
    pub fn new(config: Nsga2Config, seed: u64) -> Self {
        Nsga2 {
            config,
            rng: StdRng::seed_from_u64(seed),
            population: Population::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &Nsga2Config {
        &self.config
    }

    /// Current population (empty before the first generation).
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Replaces the current population; used by the archipelago to inject
    /// migrants. Extra individuals are truncated on the next environmental
    /// selection.
    pub fn set_population(&mut self, population: Population) {
        self.population = population;
    }

    /// Initializes the population if needed.
    pub fn initialize<P: MultiObjectiveProblem>(&mut self, problem: &P) {
        if self.population.is_empty() {
            self.population =
                Population::random(problem, self.config.population_size, &mut self.rng);
            let mut members: Vec<Individual> = self.population.clone().into_iter().collect();
            let fronts = fast_nondominated_sort(&mut members);
            for front in &fronts {
                assign_crowding_distance(&mut members, front);
            }
            self.population = members.into();
        }
    }

    /// Runs one generation: mating, variation, environmental selection.
    pub fn step<P: MultiObjectiveProblem>(&mut self, problem: &P) {
        self.initialize(problem);
        let bounds = problem.bounds();
        let mutation_probability = self
            .config
            .mutation_probability
            .unwrap_or(1.0 / problem.num_variables() as f64);

        // --- offspring generation ---
        let parents = self.population.members();
        let mut offspring: Vec<Individual> = Vec::with_capacity(self.config.population_size);
        while offspring.len() < self.config.population_size {
            let a = tournament_select(parents, &mut self.rng);
            let b = tournament_select(parents, &mut self.rng);
            let (mut child_a, mut child_b) = if rand::Rng::gen_bool(
                &mut self.rng,
                self.config.crossover_probability.clamp(0.0, 1.0),
            ) {
                sbx_crossover(
                    &parents[a].variables,
                    &parents[b].variables,
                    &bounds,
                    self.config.eta_crossover,
                    &mut self.rng,
                )
            } else {
                (parents[a].variables.clone(), parents[b].variables.clone())
            };
            polynomial_mutation(
                &mut child_a,
                &bounds,
                mutation_probability,
                self.config.eta_mutation,
                &mut self.rng,
            );
            polynomial_mutation(
                &mut child_b,
                &bounds,
                mutation_probability,
                self.config.eta_mutation,
                &mut self.rng,
            );
            offspring.push(Individual::from_variables(problem, child_a));
            if offspring.len() < self.config.population_size {
                offspring.push(Individual::from_variables(problem, child_b));
            }
        }

        // --- environmental selection on parents ∪ offspring ---
        let mut combined: Vec<Individual> = self.population.clone().into_iter().collect();
        combined.extend(offspring);
        let next = Self::environmental_selection(combined, self.config.population_size);
        self.population = next;
    }

    /// Truncates a combined population to `target` members using
    /// (rank, crowding) selection.
    fn environmental_selection(mut combined: Vec<Individual>, target: usize) -> Population {
        let fronts = fast_nondominated_sort(&mut combined);
        for front in &fronts {
            assign_crowding_distance(&mut combined, front);
        }
        let mut selected: Vec<Individual> = Vec::with_capacity(target);
        for front in &fronts {
            if selected.len() + front.len() <= target {
                selected.extend(front.iter().map(|&i| combined[i].clone()));
            } else {
                let mut remaining: Vec<usize> = front.clone();
                remaining.sort_by(|&a, &b| {
                    combined[b]
                        .crowding
                        .partial_cmp(&combined[a].crowding)
                        .expect("crowding distances are not NaN")
                });
                for &i in remaining.iter().take(target - selected.len()) {
                    selected.push(combined[i].clone());
                }
                break;
            }
        }
        selected.into()
    }

    /// Runs the configured number of generations and returns the final
    /// non-dominated set.
    pub fn run<P: MultiObjectiveProblem>(&mut self, problem: &P) -> Vec<Individual> {
        self.initialize(problem);
        for _ in 0..self.config.generations {
            self.step(problem);
        }
        self.nondominated_front()
    }

    /// Non-dominated, feasible members of the current population.
    pub fn nondominated_front(&self) -> Vec<Individual> {
        let mut members: Vec<Individual> = self.population.clone().into_iter().collect();
        if members.is_empty() {
            return members;
        }
        let fronts = fast_nondominated_sort(&mut members);
        fronts[0].iter().map(|&i| members[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::dominates;
    use crate::problems::{BinhKorn, Schaffer, Zdt1};

    fn small_config(generations: usize) -> Nsga2Config {
        Nsga2Config {
            population_size: 40,
            generations,
            ..Default::default()
        }
    }

    #[test]
    fn schaffer_front_is_found() {
        let front = Nsga2::new(small_config(60), 42).run(&Schaffer);
        assert!(front.len() >= 10);
        for individual in &front {
            // Pareto set of the Schaffer problem is x in [0, 2].
            assert!(individual.variables[0] > -0.2 && individual.variables[0] < 2.2);
        }
    }

    #[test]
    fn front_members_do_not_dominate_each_other() {
        let front = Nsga2::new(small_config(40), 3).run(&Zdt1 { variables: 6 });
        for a in &front {
            for b in &front {
                assert!(!dominates(&a.objectives, &b.objectives) || a.objectives == b.objectives);
            }
        }
    }

    #[test]
    fn zdt1_converges_towards_the_true_front() {
        let front = Nsga2::new(
            Nsga2Config {
                population_size: 60,
                generations: 150,
                ..Default::default()
            },
            7,
        )
        .run(&Zdt1 { variables: 8 });
        // On the true front f2 = 1 - sqrt(f1); measure the mean gap.
        let mean_gap: f64 = front
            .iter()
            .map(|ind| (ind.objectives[1] - (1.0 - ind.objectives[0].sqrt())).abs())
            .sum::<f64>()
            / front.len() as f64;
        assert!(mean_gap < 0.25, "mean gap to the true front was {mean_gap}");
    }

    #[test]
    fn constrained_problem_yields_feasible_front() {
        let front = Nsga2::new(small_config(80), 11).run(&BinhKorn);
        assert!(!front.is_empty());
        for individual in &front {
            assert!(individual.is_feasible());
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let a = Nsga2::new(small_config(20), 99).run(&Schaffer);
        let b = Nsga2::new(small_config(20), 99).run(&Schaffer);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.objectives, y.objectives);
        }
    }

    #[test]
    fn different_seeds_explore_differently() {
        let a = Nsga2::new(small_config(10), 1).run(&Zdt1 { variables: 6 });
        let b = Nsga2::new(small_config(10), 2).run(&Zdt1 { variables: 6 });
        assert_ne!(
            a.iter().map(|i| i.objectives.clone()).collect::<Vec<_>>(),
            b.iter().map(|i| i.objectives.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn step_keeps_population_size_constant() {
        let mut solver = Nsga2::new(small_config(1), 5);
        solver.initialize(&Schaffer);
        assert_eq!(solver.population().len(), 40);
        solver.step(&Schaffer);
        assert_eq!(solver.population().len(), 40);
    }

    #[test]
    fn set_population_is_truncated_on_next_step() {
        let mut solver = Nsga2::new(small_config(1), 5);
        solver.initialize(&Schaffer);
        let mut inflated: Vec<Individual> = solver.population().clone().into_iter().collect();
        inflated.extend(solver.population().clone());
        solver.set_population(inflated.into());
        solver.step(&Schaffer);
        assert_eq!(solver.population().len(), 40);
    }
}
