use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::engine::telemetry::MetricsRegistry;
use crate::engine::{EngineError, Nsga2State, Optimizer, OptimizerState, RngState};
use crate::exec::Executor;
use crate::individual::sample_within;
use crate::{
    fast_nondominated_sort_with, polynomial_mutation, sbx_crossover, tournament_select,
    EvalBackend, Individual, MultiObjectiveProblem, Population, SortScratch,
};

/// Configuration of an NSGA-II run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nsga2Config {
    /// Number of individuals kept each generation.
    pub population_size: usize,
    /// Number of generations to evolve.
    pub generations: usize,
    /// Probability of applying SBX crossover to a mating pair.
    pub crossover_probability: f64,
    /// SBX distribution index (η_c).
    pub eta_crossover: f64,
    /// Per-gene mutation probability; `None` uses the `1/n` convention.
    pub mutation_probability: Option<f64>,
    /// Polynomial-mutation distribution index (η_m).
    pub eta_mutation: f64,
    /// How offspring batches are evaluated. `Threads(n)` is bit-identical to
    /// `Serial` for a fixed seed; it only changes wall-clock time.
    pub backend: EvalBackend,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            population_size: 100,
            generations: 250,
            crossover_probability: 0.9,
            eta_crossover: 15.0,
            mutation_probability: None,
            eta_mutation: 20.0,
            backend: EvalBackend::Serial,
        }
    }
}

/// The Non-dominated Sorting Genetic Algorithm II (Deb et al., 2002).
///
/// Derivative-free, elitist, with constrained-domination handling — the
/// island engine of the paper's PMO2 framework.
///
/// # Example
///
/// ```
/// use pathway_moo::{Nsga2, Nsga2Config, problems::Zdt1};
///
/// let config = Nsga2Config { population_size: 40, generations: 60, ..Default::default() };
/// let front = Nsga2::new(config, 1).run(&Zdt1 { variables: 6 });
/// assert!(front.len() > 5);
/// ```
#[derive(Debug, Clone)]
pub struct Nsga2 {
    config: Nsga2Config,
    rng: StdRng,
    population: Population,
    scratch: SortScratch,
    evaluations: usize,
    /// Lazily built from `config.backend` on first use, or injected via
    /// [`Nsga2::set_executor`] (the archipelago shares one pool across all
    /// islands). Not part of the run state: checkpoints never carry it and
    /// restoring never touches it.
    executor: Option<Arc<Executor>>,
    /// Telemetry sink for the per-generation phase breakdown. Like the
    /// executor: never checkpointed, never restored, never consulted by
    /// the search itself.
    metrics: Option<MetricsRegistry>,
}

impl Nsga2 {
    /// Creates a solver with a deterministic seed.
    pub fn new(config: Nsga2Config, seed: u64) -> Self {
        Nsga2 {
            config,
            rng: StdRng::seed_from_u64(seed),
            population: Population::new(),
            scratch: SortScratch::new(),
            evaluations: 0,
            executor: None,
            metrics: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &Nsga2Config {
        &self.config
    }

    /// Installs a (usually shared) evaluation executor, replacing the one
    /// this solver would otherwise lazily build from its configured
    /// [`EvalBackend`]. The executor only changes where batches are
    /// evaluated, never what they evaluate to, so swapping executors
    /// mid-run — or resuming a checkpoint under a different executor —
    /// preserves bit-identical results.
    pub fn set_executor(&mut self, executor: Arc<Executor>) {
        self.executor = Some(executor);
    }

    /// Attaches a telemetry registry; `step` then records the
    /// `variation` and `selection` phase timings into it. Observational
    /// only — the search trajectory is identical with or without it.
    pub fn set_metrics(&mut self, registry: MetricsRegistry) {
        self.metrics = Some(registry);
    }

    /// The executor evaluating this solver's batches, building it from the
    /// configured backend on first use.
    fn executor(&mut self) -> Arc<Executor> {
        if self.executor.is_none() {
            self.executor = Some(Executor::shared(self.config.backend));
        }
        self.executor
            .clone()
            .expect("the executor was just installed")
    }

    /// Current population (empty before the first generation).
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Cumulative number of candidate evaluations spent so far.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Replaces the current population. Extra individuals are truncated on
    /// the next environmental selection. Ranks and crowding are recomputed
    /// immediately: the next `step`'s mating tournament reads those fields
    /// before any environmental selection runs, so stale or foreign
    /// bookkeeping on the injected individuals must not survive this call.
    pub fn set_population(&mut self, population: Population) {
        self.population = population;
        self.refresh_ranks();
    }

    /// Appends migrant individuals to the current population without copying
    /// the residents. Extra individuals are truncated on the next
    /// environmental selection.
    pub fn inject_migrants<I: IntoIterator<Item = Individual>>(&mut self, migrants: I) {
        self.population.extend(migrants);
    }

    /// Re-runs non-dominated sorting and crowding assignment on the current
    /// population in place, so `rank`/`crowding` reflect its present
    /// composition. The archipelago calls this after injecting migrants;
    /// without it, tournament selection would read bookkeeping computed on
    /// the migrants' *source* island.
    pub fn refresh_ranks(&mut self) {
        let members = self.population.members_mut();
        if members.is_empty() {
            return;
        }
        fast_nondominated_sort_with(members, &mut self.scratch);
        self.scratch.assign_crowding(members);
    }

    /// Initializes the population if needed: samples every decision vector
    /// first (one RNG stream), then evaluates the whole batch through the
    /// configured executor.
    pub fn initialize<P: MultiObjectiveProblem>(&mut self, problem: &P) {
        if !self.population.is_empty() {
            return;
        }
        let bounds = problem.bounds();
        let variables: Vec<Vec<f64>> = (0..self.config.population_size)
            .map(|_| sample_within(&bounds, &mut self.rng))
            .collect();
        self.evaluations += variables.len();
        self.population = self
            .executor()
            .evaluate_individuals(problem, variables)
            .into();
        self.refresh_ranks();
    }

    /// Runs one generation: mating and variation first (RNG-driven, serial),
    /// then one batched evaluation of the full offspring set, then
    /// environmental selection.
    pub fn step<P: MultiObjectiveProblem>(&mut self, problem: &P) {
        self.initialize(problem);
        let bounds = problem.bounds();
        let mutation_probability = self
            .config
            .mutation_probability
            .unwrap_or(1.0 / problem.num_variables() as f64);

        // --- variation: produce the full offspring batch ---
        let variation_started = Instant::now();
        let parents = self.population.members();
        let mut children: Vec<Vec<f64>> = Vec::with_capacity(self.config.population_size);
        while children.len() < self.config.population_size {
            let a = tournament_select(parents, &mut self.rng);
            let b = tournament_select(parents, &mut self.rng);
            let (mut child_a, mut child_b) = if rand::Rng::gen_bool(
                &mut self.rng,
                self.config.crossover_probability.clamp(0.0, 1.0),
            ) {
                sbx_crossover(
                    &parents[a].variables,
                    &parents[b].variables,
                    &bounds,
                    self.config.eta_crossover,
                    &mut self.rng,
                )
            } else {
                (parents[a].variables.clone(), parents[b].variables.clone())
            };
            polynomial_mutation(
                &mut child_a,
                &bounds,
                mutation_probability,
                self.config.eta_mutation,
                &mut self.rng,
            );
            polynomial_mutation(
                &mut child_b,
                &bounds,
                mutation_probability,
                self.config.eta_mutation,
                &mut self.rng,
            );
            children.push(child_a);
            if children.len() < self.config.population_size {
                children.push(child_b);
            }
        }

        if let Some(metrics) = &self.metrics {
            metrics.record_phase("variation", variation_started.elapsed());
        }

        // --- one batched (possibly parallel) evaluation of all offspring ---
        self.evaluations += children.len();
        let offspring = self.executor().evaluate_individuals(problem, children);

        // --- environmental selection on parents ∪ offspring ---
        let selection_started = Instant::now();
        let mut combined = std::mem::take(&mut self.population).into_members();
        combined.extend(offspring);
        self.population = self.environmental_selection(combined, self.config.population_size);
        if let Some(metrics) = &self.metrics {
            metrics.record_phase("selection", selection_started.elapsed());
        }
    }

    /// Truncates a combined population to `target` members using
    /// (rank, crowding) selection. Index-based: survivors are moved, never
    /// cloned, and the non-dominated sort reuses the solver's scratch.
    fn environmental_selection(
        &mut self,
        mut combined: Vec<Individual>,
        target: usize,
    ) -> Population {
        fast_nondominated_sort_with(&mut combined, &mut self.scratch);
        self.scratch.assign_crowding(&mut combined);
        let mut chosen: Vec<usize> = Vec::with_capacity(target);
        for rank in 0..self.scratch.num_fronts() {
            let front = self.scratch.front(rank);
            if chosen.len() + front.len() <= target {
                chosen.extend_from_slice(front);
                if chosen.len() == target {
                    break;
                }
            } else {
                let mut remaining: Vec<usize> = front.to_vec();
                remaining.sort_by(|&a, &b| {
                    combined[b]
                        .crowding
                        .partial_cmp(&combined[a].crowding)
                        .expect("crowding distances are not NaN")
                });
                chosen.extend(remaining.iter().take(target - chosen.len()));
                break;
            }
        }
        let mut slots: Vec<Option<Individual>> = combined.into_iter().map(Some).collect();
        chosen
            .into_iter()
            .map(|i| {
                slots[i]
                    .take()
                    .expect("each survivor index is selected once")
            })
            .collect()
    }

    /// Runs the configured number of generations and returns the final
    /// non-dominated set.
    pub fn run<P: MultiObjectiveProblem>(&mut self, problem: &P) -> Vec<Individual> {
        self.initialize(problem);
        for _ in 0..self.config.generations {
            self.step(problem);
        }
        self.nondominated_front()
    }

    /// Non-dominated members of the current population (rank 0 under
    /// constrained domination).
    ///
    /// This reads the `rank` bookkeeping maintained by `initialize`, `step`,
    /// `set_population` and `refresh_ranks` instead of cloning and
    /// re-sorting the whole population, so only the front members themselves
    /// are cloned. After [`Nsga2::inject_migrants`] the ranks are stale
    /// until the next [`Nsga2::refresh_ranks`] (the archipelago always
    /// refreshes after injecting).
    pub fn nondominated_front(&self) -> Vec<Individual> {
        self.population
            .iter()
            .filter(|member| member.rank == 0)
            .cloned()
            .collect()
    }

    /// Captures the solver's run state (RNG stream, population with its
    /// bookkeeping, evaluation odometer) as plain data.
    pub(crate) fn snapshot(&self) -> Nsga2State {
        Nsga2State {
            rng: RngState::capture(&self.rng),
            population: self.population.members().to_vec(),
            evaluations: self.evaluations,
        }
    }

    /// Restores a snapshot captured with [`Nsga2::snapshot`]. The population
    /// is installed verbatim (its `rank`/`crowding` fields were valid when
    /// captured), so no RNG draws happen and the restored solver continues
    /// the exact trajectory of the captured one.
    ///
    /// Snapshots taken between generations always hold exactly
    /// `population_size` members (or none, before initialization), so any
    /// other length means the snapshot came from a differently configured
    /// solver and is rejected.
    pub(crate) fn restore_snapshot(&mut self, state: Nsga2State) -> Result<(), EngineError> {
        if !state.population.is_empty() && state.population.len() != self.config.population_size {
            return Err(EngineError::ConfigMismatch {
                detail: format!(
                    "snapshot holds {} individuals but this solver is configured for {}",
                    state.population.len(),
                    self.config.population_size
                ),
            });
        }
        self.rng = state.rng.rebuild();
        self.population = state.population.into();
        self.evaluations = state.evaluations;
        Ok(())
    }
}

impl<P: MultiObjectiveProblem> Optimizer<P> for Nsga2 {
    fn initialize(&mut self, problem: &P) {
        Nsga2::initialize(self, problem);
    }

    fn step(&mut self, problem: &P) {
        Nsga2::step(self, problem);
    }

    fn population(&self) -> Vec<Individual> {
        self.population.members().to_vec()
    }

    fn front(&self) -> Vec<Individual> {
        self.nondominated_front()
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }

    fn state(&self) -> OptimizerState {
        OptimizerState::Nsga2(self.snapshot())
    }

    fn restore(&mut self, state: OptimizerState) -> Result<(), EngineError> {
        match state {
            OptimizerState::Nsga2(snapshot) => self.restore_snapshot(snapshot),
            other => Err(EngineError::StateMismatch {
                expected: "Nsga2",
                found: other.kind(),
            }),
        }
    }

    fn set_metrics(&mut self, registry: MetricsRegistry) {
        Nsga2::set_metrics(self, registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::dominates;
    use crate::problems::{BinhKorn, Schaffer, Zdt1};

    fn small_config(generations: usize) -> Nsga2Config {
        Nsga2Config {
            population_size: 40,
            generations,
            ..Default::default()
        }
    }

    #[test]
    fn schaffer_front_is_found() {
        let front = Nsga2::new(small_config(60), 42).run(&Schaffer);
        assert!(front.len() >= 10);
        for individual in &front {
            // Pareto set of the Schaffer problem is x in [0, 2].
            assert!(individual.variables[0] > -0.2 && individual.variables[0] < 2.2);
        }
    }

    #[test]
    fn front_members_do_not_dominate_each_other() {
        let front = Nsga2::new(small_config(40), 3).run(&Zdt1 { variables: 6 });
        for a in &front {
            for b in &front {
                assert!(!dominates(&a.objectives, &b.objectives) || a.objectives == b.objectives);
            }
        }
    }

    #[test]
    fn zdt1_converges_towards_the_true_front() {
        let front = Nsga2::new(
            Nsga2Config {
                population_size: 60,
                generations: 150,
                ..Default::default()
            },
            7,
        )
        .run(&Zdt1 { variables: 8 });
        // On the true front f2 = 1 - sqrt(f1); measure the mean gap.
        let mean_gap: f64 = front
            .iter()
            .map(|ind| (ind.objectives[1] - (1.0 - ind.objectives[0].sqrt())).abs())
            .sum::<f64>()
            / front.len() as f64;
        assert!(mean_gap < 0.25, "mean gap to the true front was {mean_gap}");
    }

    #[test]
    fn constrained_problem_yields_feasible_front() {
        let front = Nsga2::new(small_config(80), 11).run(&BinhKorn);
        assert!(!front.is_empty());
        for individual in &front {
            assert!(individual.is_feasible());
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let a = Nsga2::new(small_config(20), 99).run(&Schaffer);
        let b = Nsga2::new(small_config(20), 99).run(&Schaffer);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.objectives, y.objectives);
        }
    }

    #[test]
    fn different_seeds_explore_differently() {
        let a = Nsga2::new(small_config(10), 1).run(&Zdt1 { variables: 6 });
        let b = Nsga2::new(small_config(10), 2).run(&Zdt1 { variables: 6 });
        assert_ne!(
            a.iter().map(|i| i.objectives.clone()).collect::<Vec<_>>(),
            b.iter().map(|i| i.objectives.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn step_keeps_population_size_constant() {
        let mut solver = Nsga2::new(small_config(1), 5);
        solver.initialize(&Schaffer);
        assert_eq!(solver.population().len(), 40);
        solver.step(&Schaffer);
        assert_eq!(solver.population().len(), 40);
    }

    #[test]
    fn set_population_is_truncated_on_next_step() {
        let mut solver = Nsga2::new(small_config(1), 5);
        solver.initialize(&Schaffer);
        let mut inflated: Vec<Individual> = solver.population().clone().into_iter().collect();
        inflated.extend(solver.population().clone());
        solver.set_population(inflated.into());
        solver.step(&Schaffer);
        assert_eq!(solver.population().len(), 40);
    }
}
