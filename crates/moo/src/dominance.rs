use crate::Individual;

/// Returns `true` if objective vector `a` Pareto-dominates `b`: `a` is no
/// worse in every objective and strictly better in at least one (all
/// objectives minimized).
///
/// # Panics
///
/// Panics if the two vectors have different lengths.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(
        a.len(),
        b.len(),
        "objective vectors must have the same length"
    );
    let mut strictly_better = false;
    for (&ai, &bi) in a.iter().zip(b.iter()) {
        if ai > bi {
            return false;
        }
        if ai < bi {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Constrained domination (Deb's rules): a feasible solution dominates an
/// infeasible one; between two infeasible solutions the one with the smaller
/// violation dominates; between two feasible solutions plain Pareto dominance
/// applies.
pub fn constrained_dominates(a: &Individual, b: &Individual) -> bool {
    let a_feasible = a.is_feasible();
    let b_feasible = b.is_feasible();
    match (a_feasible, b_feasible) {
        (true, false) => true,
        (false, true) => false,
        (false, false) => a.violation < b.violation,
        (true, true) => dominates(&a.objectives, &b.objectives),
    }
}

/// Fast non-dominated sort (Deb et al. 2002).
///
/// Assigns `rank` to every individual in place and returns the fronts as
/// vectors of indices, best front first. Uses constrained domination so
/// infeasible solutions sink to later fronts.
pub fn fast_nondominated_sort(individuals: &mut [Individual]) -> Vec<Vec<usize>> {
    let n = individuals.len();
    let mut domination_count = vec![0usize; n];
    let mut dominated_sets: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut first_front: Vec<usize> = Vec::new();

    for p in 0..n {
        for q in 0..n {
            if p == q {
                continue;
            }
            if constrained_dominates(&individuals[p], &individuals[q]) {
                dominated_sets[p].push(q);
            } else if constrained_dominates(&individuals[q], &individuals[p]) {
                domination_count[p] += 1;
            }
        }
        if domination_count[p] == 0 {
            individuals[p].rank = 0;
            first_front.push(p);
        }
    }

    let mut current = first_front;
    let mut rank = 0;
    while !current.is_empty() {
        fronts.push(current.clone());
        let mut next = Vec::new();
        for &p in &current {
            for &q in &dominated_sets[p] {
                domination_count[q] -= 1;
                if domination_count[q] == 0 {
                    individuals[q].rank = rank + 1;
                    next.push(q);
                }
            }
        }
        rank += 1;
        current = next;
    }
    fronts
}

/// Extracts the non-dominated subset of a set of objective vectors
/// (constrained domination is not considered; use this for plain fronts).
pub fn nondominated_filter(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    points
        .iter()
        .filter(|candidate| !points.iter().any(|other| dominates(other, candidate)))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{BinhKorn, Schaffer};

    fn individual(objectives: Vec<f64>, violation: f64) -> Individual {
        Individual {
            variables: vec![],
            objectives,
            violation,
            rank: usize::MAX,
            crowding: 0.0,
        }
    }

    #[test]
    fn dominance_basic_cases() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // trade-off
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0])); // equal
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn dominance_length_mismatch_panics() {
        let _ = dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn constrained_domination_prefers_feasible() {
        let feasible = individual(vec![5.0, 5.0], 0.0);
        let infeasible = individual(vec![0.0, 0.0], 1.0);
        assert!(constrained_dominates(&feasible, &infeasible));
        assert!(!constrained_dominates(&infeasible, &feasible));
        let less_violating = individual(vec![9.0, 9.0], 0.5);
        assert!(constrained_dominates(&less_violating, &infeasible));
    }

    #[test]
    fn sort_separates_fronts() {
        let mut individuals = vec![
            individual(vec![1.0, 4.0], 0.0), // front 0
            individual(vec![4.0, 1.0], 0.0), // front 0
            individual(vec![2.0, 2.0], 0.0), // front 0
            individual(vec![3.0, 5.0], 0.0), // dominated by #0 and #2
            individual(vec![5.0, 5.0], 0.0), // dominated by everything
        ];
        let fronts = fast_nondominated_sort(&mut individuals);
        assert_eq!(fronts[0].len(), 3);
        assert!(fronts.len() >= 2);
        assert_eq!(individuals[0].rank, 0);
        assert_eq!(individuals[4].rank, fronts.len() - 1);
    }

    #[test]
    fn sort_puts_infeasible_solutions_behind_feasible_ones() {
        let mut individuals = vec![
            individual(vec![10.0, 10.0], 0.0),
            individual(vec![0.0, 0.0], 2.0),
        ];
        let fronts = fast_nondominated_sort(&mut individuals);
        assert_eq!(fronts[0], vec![0]);
        assert_eq!(fronts[1], vec![1]);
    }

    #[test]
    fn every_individual_is_assigned_to_exactly_one_front() {
        let mut individuals: Vec<Individual> = (0..40)
            .map(|i| {
                let x = -5.0 + (i as f64) * 0.25;
                Individual::from_variables(&Schaffer, vec![x])
            })
            .collect();
        let fronts = fast_nondominated_sort(&mut individuals);
        let total: usize = fronts.iter().map(|f| f.len()).sum();
        assert_eq!(total, individuals.len());
        // Ranks are consistent with the front listing.
        for (front_rank, front) in fronts.iter().enumerate() {
            for &i in front {
                assert_eq!(individuals[i].rank, front_rank);
            }
        }
    }

    #[test]
    fn first_front_is_mutually_nondominating() {
        let mut individuals: Vec<Individual> = (0..30)
            .map(|i| {
                let x = vec![(i as f64) / 6.0, 3.0 - (i as f64) / 10.0];
                Individual::from_variables(&BinhKorn, x)
            })
            .collect();
        let fronts = fast_nondominated_sort(&mut individuals);
        for &a in &fronts[0] {
            for &b in &fronts[0] {
                if a != b {
                    assert!(!constrained_dominates(&individuals[a], &individuals[b]));
                }
            }
        }
    }

    #[test]
    fn nondominated_filter_keeps_only_the_front() {
        let points = vec![
            vec![1.0, 4.0],
            vec![2.0, 2.0],
            vec![4.0, 1.0],
            vec![3.0, 3.0], // dominated by [2,2]
        ];
        let front = nondominated_filter(&points);
        assert_eq!(front.len(), 3);
        assert!(!front.contains(&vec![3.0, 3.0]));
    }
}
