use crate::Individual;

/// Returns `true` if objective vector `a` Pareto-dominates `b`: `a` is no
/// worse in every objective and strictly better in at least one (all
/// objectives minimized).
///
/// # Panics
///
/// Panics if the two vectors have different lengths.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(
        a.len(),
        b.len(),
        "objective vectors must have the same length"
    );
    let mut strictly_better = false;
    for (&ai, &bi) in a.iter().zip(b.iter()) {
        if ai > bi {
            return false;
        }
        if ai < bi {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Constrained domination (Deb's rules): a feasible solution dominates an
/// infeasible one; between two infeasible solutions the one with the smaller
/// violation dominates; between two feasible solutions plain Pareto dominance
/// applies.
pub fn constrained_dominates(a: &Individual, b: &Individual) -> bool {
    let a_feasible = a.is_feasible();
    let b_feasible = b.is_feasible();
    match (a_feasible, b_feasible) {
        (true, false) => true,
        (false, true) => false,
        (false, false) => a.violation < b.violation,
        (true, true) => dominates(&a.objectives, &b.objectives),
    }
}

/// Reusable scratch buffers for [`fast_nondominated_sort_with`].
///
/// Every buffer is flat (`Vec<u32>` / `Vec<usize>` / `Vec<f64>`), so after
/// the first call at a given population size the sort performs **no
/// allocations at all** — in particular none of the per-call
/// `Vec<Vec<usize>>` dominated-set allocations of the textbook algorithm.
/// [`Nsga2`](crate::Nsga2) carries one of these across generations.
///
/// After a sort, the fronts are read back through [`SortScratch::front`] /
/// [`SortScratch::fronts`] as index slices into the sorted population, best
/// front first.
#[derive(Debug, Clone, Default)]
pub struct SortScratch {
    /// Per individual: how many others currently dominate it.
    domination_count: Vec<u32>,
    /// Per individual: how many others it dominates (adjacency slice length).
    out_degree: Vec<u32>,
    /// Prefix-sum start offset of each individual's adjacency slice.
    starts: Vec<u32>,
    /// Write cursors used while scattering edges into `adjacency`.
    cursor: Vec<u32>,
    /// Domination edges as flattened `(source, target)` pairs.
    edges: Vec<u32>,
    /// Flat adjacency storage: the indices each individual dominates.
    adjacency: Vec<u32>,
    /// Index permutation used by the bi-objective sweep.
    order: Vec<u32>,
    /// Last-inserted `f1` per front (bi-objective staircase).
    last_f1: Vec<f64>,
    /// Last-inserted `f2` per front (bi-objective staircase).
    last_f2: Vec<f64>,
    /// All population indices grouped by front, best front first.
    fronts_flat: Vec<usize>,
    /// Exclusive end offset of each front within `fronts_flat`.
    front_ends: Vec<usize>,
    /// Reusable index buffer for crowding assignment (one sort per
    /// objective per front, no per-call allocation).
    crowding_order: Vec<u32>,
}

impl SortScratch {
    /// Creates an empty scratch; buffers grow on first use and are reused.
    pub fn new() -> Self {
        SortScratch::default()
    }

    /// Number of fronts produced by the last sort.
    pub fn num_fronts(&self) -> usize {
        self.front_ends.len()
    }

    /// The indices of front `rank` (0 = best) from the last sort.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= self.num_fronts()`.
    pub fn front(&self, rank: usize) -> &[usize] {
        let start = if rank == 0 {
            0
        } else {
            self.front_ends[rank - 1]
        };
        &self.fronts_flat[start..self.front_ends[rank]]
    }

    /// Iterates the fronts of the last sort, best front first.
    pub fn fronts(&self) -> impl Iterator<Item = &[usize]> {
        (0..self.num_fronts()).map(move |rank| self.front(rank))
    }

    /// Assigns crowding distances to every front of the last sort, reusing
    /// this scratch's index buffer so the whole selection pass stays
    /// allocation-free once the buffers are warm.
    ///
    /// `individuals` must be the same slice (same length and order) the last
    /// [`fast_nondominated_sort_with`] call ranked.
    pub fn assign_crowding(&mut self, individuals: &mut [Individual]) {
        let SortScratch {
            fronts_flat,
            front_ends,
            crowding_order,
            ..
        } = self;
        let mut start = 0usize;
        for &end in front_ends.iter() {
            crate::crowding::assign_crowding_with_order(
                individuals,
                &fronts_flat[start..end],
                crowding_order,
            );
            start = end;
        }
    }

    fn reset(&mut self, n: usize) {
        self.domination_count.clear();
        self.domination_count.resize(n, 0);
        self.out_degree.clear();
        self.out_degree.resize(n, 0);
        self.edges.clear();
        self.fronts_flat.clear();
        self.front_ends.clear();
    }

    /// Rebuilds `fronts_flat`/`front_ends` from the `rank` fields via a
    /// counting sort, so indices within each front come out ascending.
    fn fronts_from_ranks(&mut self, individuals: &[Individual], num_fronts: usize) {
        let n = individuals.len();
        self.out_degree.clear();
        self.out_degree.resize(num_fronts, 0);
        for individual in individuals {
            self.out_degree[individual.rank] += 1;
        }
        self.starts.clear();
        self.starts.push(0);
        let mut total = 0u32;
        for &count in &self.out_degree {
            total += count;
            self.starts.push(total);
        }
        self.front_ends.clear();
        self.front_ends
            .extend(self.starts[1..].iter().map(|&e| e as usize));
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.starts[..num_fronts]);
        self.fronts_flat.clear();
        self.fronts_flat.resize(n, 0);
        for (i, individual) in individuals.iter().enumerate() {
            let slot = &mut self.cursor[individual.rank];
            self.fronts_flat[*slot as usize] = i;
            *slot += 1;
        }
    }
}

/// Fast non-dominated sort (Deb et al. 2002) into reusable scratch buffers.
///
/// Assigns `rank` to every individual in place and leaves the fronts in
/// `scratch` (read them with [`SortScratch::front`] / [`SortScratch::fronts`],
/// best front first). Uses constrained domination so infeasible solutions
/// sink to later fronts.
///
/// Bi-objective populations — every problem the paper optimizes — take an
/// `O(n log n)` sweep fast path; the general case runs the textbook `O(n²)`
/// algorithm over a flat adjacency buffer. Apart from buffer growth on the
/// first call at a given size, neither path allocates.
pub fn fast_nondominated_sort_with(individuals: &mut [Individual], scratch: &mut SortScratch) {
    let n = individuals.len();
    scratch.reset(n);
    if n == 0 {
        return;
    }
    // The sweep's staircase invariants assume a total order, which NaN
    // breaks (a NaN representative would stop dominating anything and hand
    // rank 0 to genuinely dominated points), so NaN objectives or
    // violations — e.g. from a diverged oracle — take the general path,
    // which handles NaN exactly like the textbook algorithm.
    if individuals.iter().all(|i| {
        i.objectives.len() == 2 && !i.violation.is_nan() && i.objectives.iter().all(|v| !v.is_nan())
    }) {
        sweep_sort_two_objectives(individuals, scratch);
    } else {
        general_sort(individuals, scratch);
    }
}

/// Bi-objective fast path: lexicographic sweep with a staircase of per-front
/// minima, `O(n log n)` instead of `O(n²)` domination checks.
fn sweep_sort_two_objectives(individuals: &mut [Individual], scratch: &mut SortScratch) {
    let n = individuals.len();
    scratch.order.clear();
    scratch.order.extend(0..n as u32);
    // Feasible individuals first, by (f1, f2); infeasible after, by violation.
    // Index breaks exact ties so the permutation is canonical.
    scratch.order.sort_unstable_by(|&a, &b| {
        let (a, b) = (a as usize, b as usize);
        let (ia, ib) = (&individuals[a], &individuals[b]);
        match (ia.is_feasible(), ib.is_feasible()) {
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (true, true) => ia.objectives[0]
                .total_cmp(&ib.objectives[0])
                .then_with(|| ia.objectives[1].total_cmp(&ib.objectives[1]))
                .then_with(|| a.cmp(&b)),
            (false, false) => ia
                .violation
                .total_cmp(&ib.violation)
                .then_with(|| a.cmp(&b)),
        }
    });
    let num_feasible = scratch
        .order
        .iter()
        .take_while(|&&i| individuals[i as usize].is_feasible())
        .count();

    // Staircase over the feasible prefix: each front is represented by its
    // last-inserted point, which has the minimal f2 of that front so far.
    // Processing in (f1, f2) order means a point is dominated by front k iff
    // it is dominated by that representative, and the fronts' representatives
    // are ordered, so the first non-dominating front is found by bisection.
    scratch.last_f1.clear();
    scratch.last_f2.clear();
    for &oi in &scratch.order[..num_feasible] {
        let i = oi as usize;
        let f1 = individuals[i].objectives[0];
        let f2 = individuals[i].objectives[1];
        let (mut lo, mut hi) = (0usize, scratch.last_f2.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            let (lf1, lf2) = (scratch.last_f1[mid], scratch.last_f2[mid]);
            if lf2 <= f2 && (lf1 < f1 || lf2 < f2) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        individuals[i].rank = lo;
        if lo == scratch.last_f2.len() {
            scratch.last_f1.push(f1);
            scratch.last_f2.push(f2);
        } else {
            scratch.last_f1[lo] = f1;
            scratch.last_f2[lo] = f2;
        }
    }
    let feasible_fronts = scratch.last_f2.len();

    // Under constrained domination every feasible solution dominates every
    // infeasible one and infeasible solutions are ordered by violation alone,
    // so each distinct violation value forms one front after all feasible
    // fronts.
    let mut rank = feasible_fronts;
    let mut previous_violation = f64::NAN;
    for (offset, &oi) in scratch.order[num_feasible..].iter().enumerate() {
        let i = oi as usize;
        let violation = individuals[i].violation;
        if offset > 0 && violation != previous_violation {
            rank += 1;
        }
        previous_violation = violation;
        individuals[i].rank = rank;
    }
    let total_fronts = if num_feasible == n {
        feasible_fronts
    } else {
        rank + 1
    };
    scratch.fronts_from_ranks(individuals, total_fronts);
}

/// General-case sort: textbook domination counting over a flat edge list and
/// counting-sorted adjacency slices.
fn general_sort(individuals: &mut [Individual], scratch: &mut SortScratch) {
    let n = individuals.len();
    for p in 0..n {
        for q in (p + 1)..n {
            if constrained_dominates(&individuals[p], &individuals[q]) {
                scratch.edges.push(p as u32);
                scratch.edges.push(q as u32);
                scratch.out_degree[p] += 1;
                scratch.domination_count[q] += 1;
            } else if constrained_dominates(&individuals[q], &individuals[p]) {
                scratch.edges.push(q as u32);
                scratch.edges.push(p as u32);
                scratch.out_degree[q] += 1;
                scratch.domination_count[p] += 1;
            }
        }
    }

    // Prefix sums + scatter: adjacency slice of p holds everyone p dominates,
    // in ascending index order (the pair loop emits targets that way).
    scratch.starts.clear();
    scratch.starts.push(0);
    let mut total = 0u32;
    for &degree in &scratch.out_degree {
        total += degree;
        scratch.starts.push(total);
    }
    scratch.cursor.clear();
    scratch.cursor.extend_from_slice(&scratch.starts[..n]);
    scratch.adjacency.clear();
    scratch.adjacency.resize(total as usize, 0);
    for edge in scratch.edges.chunks_exact(2) {
        let (source, target) = (edge[0] as usize, edge[1]);
        let slot = &mut scratch.cursor[source];
        scratch.adjacency[*slot as usize] = target;
        *slot += 1;
    }

    // Peel fronts directly into the flat storage.
    for (p, individual) in individuals.iter_mut().enumerate() {
        if scratch.domination_count[p] == 0 {
            individual.rank = 0;
            scratch.fronts_flat.push(p);
        }
    }
    scratch.front_ends.push(scratch.fronts_flat.len());
    let mut rank = 0usize;
    let mut begin = 0usize;
    while begin < scratch.fronts_flat.len() {
        let end = scratch.fronts_flat.len();
        for idx in begin..end {
            let p = scratch.fronts_flat[idx];
            let slice_start = scratch.starts[p] as usize;
            let slice_end = slice_start + scratch.out_degree[p] as usize;
            for j in slice_start..slice_end {
                let q = scratch.adjacency[j] as usize;
                scratch.domination_count[q] -= 1;
                if scratch.domination_count[q] == 0 {
                    individuals[q].rank = rank + 1;
                    scratch.fronts_flat.push(q);
                }
            }
        }
        if scratch.fronts_flat.len() > end {
            scratch.front_ends.push(scratch.fronts_flat.len());
        }
        begin = end;
        rank += 1;
    }
}

/// Fast non-dominated sort (Deb et al. 2002).
///
/// Assigns `rank` to every individual in place and returns the fronts as
/// vectors of indices, best front first. Uses constrained domination so
/// infeasible solutions sink to later fronts.
///
/// This convenience wrapper allocates a fresh [`SortScratch`] and copies the
/// fronts out; hot paths that sort every generation should carry a scratch
/// and call [`fast_nondominated_sort_with`] instead.
pub fn fast_nondominated_sort(individuals: &mut [Individual]) -> Vec<Vec<usize>> {
    let mut scratch = SortScratch::new();
    fast_nondominated_sort_with(individuals, &mut scratch);
    scratch.fronts().map(<[usize]>::to_vec).collect()
}

/// Extracts the non-dominated subset of a set of objective vectors
/// (constrained domination is not considered; use this for plain fronts).
pub fn nondominated_filter(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    points
        .iter()
        .filter(|candidate| !points.iter().any(|other| dominates(other, candidate)))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{BinhKorn, Schaffer};

    fn individual(objectives: Vec<f64>, violation: f64) -> Individual {
        Individual {
            variables: vec![],
            objectives,
            violation,
            rank: usize::MAX,
            crowding: 0.0,
        }
    }

    #[test]
    fn dominance_basic_cases() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // trade-off
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0])); // equal
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn dominance_length_mismatch_panics() {
        let _ = dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn constrained_domination_prefers_feasible() {
        let feasible = individual(vec![5.0, 5.0], 0.0);
        let infeasible = individual(vec![0.0, 0.0], 1.0);
        assert!(constrained_dominates(&feasible, &infeasible));
        assert!(!constrained_dominates(&infeasible, &feasible));
        let less_violating = individual(vec![9.0, 9.0], 0.5);
        assert!(constrained_dominates(&less_violating, &infeasible));
    }

    #[test]
    fn sort_separates_fronts() {
        let mut individuals = vec![
            individual(vec![1.0, 4.0], 0.0), // front 0
            individual(vec![4.0, 1.0], 0.0), // front 0
            individual(vec![2.0, 2.0], 0.0), // front 0
            individual(vec![3.0, 5.0], 0.0), // dominated by #0 and #2
            individual(vec![5.0, 5.0], 0.0), // dominated by everything
        ];
        let fronts = fast_nondominated_sort(&mut individuals);
        assert_eq!(fronts[0].len(), 3);
        assert!(fronts.len() >= 2);
        assert_eq!(individuals[0].rank, 0);
        assert_eq!(individuals[4].rank, fronts.len() - 1);
    }

    #[test]
    fn nan_objectives_fall_back_to_the_general_path() {
        // Under the textbook `dominates` a NaN component can never make a
        // point *worse*, so (1,0) ≻ (5,NaN) ≻ (6,1): three nested fronts. A
        // naive bi-objective sweep would let the NaN point poison the
        // staircase and hand every point rank 0 instead.
        let mut individuals = vec![
            individual(vec![1.0, 0.0], 0.0),
            individual(vec![5.0, f64::NAN], 0.0),
            individual(vec![6.0, 1.0], 0.0),
        ];
        let fronts = fast_nondominated_sort(&mut individuals);
        assert_eq!(individuals[0].rank, 0);
        assert_eq!(individuals[1].rank, 1);
        assert_eq!(individuals[2].rank, 2);
        assert_eq!(fronts.len(), 3);
    }

    #[test]
    fn sort_puts_infeasible_solutions_behind_feasible_ones() {
        let mut individuals = vec![
            individual(vec![10.0, 10.0], 0.0),
            individual(vec![0.0, 0.0], 2.0),
        ];
        let fronts = fast_nondominated_sort(&mut individuals);
        assert_eq!(fronts[0], vec![0]);
        assert_eq!(fronts[1], vec![1]);
    }

    #[test]
    fn every_individual_is_assigned_to_exactly_one_front() {
        let mut individuals: Vec<Individual> = (0..40)
            .map(|i| {
                let x = -5.0 + (i as f64) * 0.25;
                Individual::from_variables(&Schaffer, vec![x])
            })
            .collect();
        let fronts = fast_nondominated_sort(&mut individuals);
        let total: usize = fronts.iter().map(|f| f.len()).sum();
        assert_eq!(total, individuals.len());
        // Ranks are consistent with the front listing.
        for (front_rank, front) in fronts.iter().enumerate() {
            for &i in front {
                assert_eq!(individuals[i].rank, front_rank);
            }
        }
    }

    #[test]
    fn first_front_is_mutually_nondominating() {
        let mut individuals: Vec<Individual> = (0..30)
            .map(|i| {
                let x = vec![(i as f64) / 6.0, 3.0 - (i as f64) / 10.0];
                Individual::from_variables(&BinhKorn, x)
            })
            .collect();
        let fronts = fast_nondominated_sort(&mut individuals);
        for &a in &fronts[0] {
            for &b in &fronts[0] {
                if a != b {
                    assert!(!constrained_dominates(&individuals[a], &individuals[b]));
                }
            }
        }
    }

    #[test]
    fn scratch_crowding_matches_the_allocating_path() {
        let mut via_scratch: Vec<Individual> = (0..40)
            .map(|i| {
                let x = -5.0 + (i % 13) as f64 * 0.7;
                Individual::from_variables(&Schaffer, vec![x])
            })
            .collect();
        let mut via_alloc = via_scratch.clone();

        let mut scratch = SortScratch::new();
        fast_nondominated_sort_with(&mut via_scratch, &mut scratch);
        scratch.assign_crowding(&mut via_scratch);

        let fronts = fast_nondominated_sort(&mut via_alloc);
        for front in &fronts {
            crate::assign_crowding_distance(&mut via_alloc, front);
        }
        for (a, b) in via_scratch.iter().zip(&via_alloc) {
            assert_eq!(a.rank, b.rank);
            assert_eq!(a.crowding, b.crowding);
        }
    }

    #[test]
    fn nondominated_filter_keeps_only_the_front() {
        let points = vec![
            vec![1.0, 4.0],
            vec![2.0, 2.0],
            vec![4.0, 1.0],
            vec![3.0, 3.0], // dominated by [2,2]
        ];
        let front = nondominated_filter(&points);
        assert_eq!(front.len(), 3);
        assert!(!front.contains(&vec![3.0, 3.0]));
    }
}
