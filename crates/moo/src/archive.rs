use crate::{assign_crowding_distance, dominates, Individual};

/// A bounded archive of mutually non-dominated solutions.
///
/// The archive accepts candidate solutions, discards dominated ones and, when
/// it grows past its capacity, prunes the most crowded members so that the
/// retained front stays well spread. The design workflows use it to accumulate
/// Pareto-optimal enzyme partitions across PMO2 islands and restarts.
///
/// # Example
///
/// ```
/// use pathway_moo::{Individual, ParetoArchive};
///
/// let mut archive = ParetoArchive::new(10);
/// for i in 0..5 {
///     let x = i as f64;
///     archive.insert(Individual {
///         variables: vec![x],
///         objectives: vec![x, 4.0 - x],
///         violation: 0.0,
///         rank: 0,
///         crowding: 0.0,
///     });
/// }
/// assert_eq!(archive.len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct ParetoArchive {
    capacity: usize,
    members: Vec<Individual>,
}

impl ParetoArchive {
    /// Creates an archive that holds at most `capacity` solutions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "archive capacity must be positive");
        ParetoArchive {
            capacity,
            members: Vec::new(),
        }
    }

    /// Number of stored solutions.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Maximum number of stored solutions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stored solutions (mutually non-dominated).
    pub fn members(&self) -> &[Individual] {
        &self.members
    }

    /// Offers a candidate to the archive. Returns `true` if it was accepted
    /// (i.e. it is not dominated by any current member and is not an exact
    /// objective-space duplicate).
    pub fn insert(&mut self, candidate: Individual) -> bool {
        if candidate.violation > 0.0 {
            return false;
        }
        if self.members.iter().any(|m| {
            dominates(&m.objectives, &candidate.objectives) || m.objectives == candidate.objectives
        }) {
            return false;
        }
        self.members
            .retain(|m| !dominates(&candidate.objectives, &m.objectives));
        self.members.push(candidate);
        if self.members.len() > self.capacity {
            self.prune();
        }
        true
    }

    /// Offers every member of an iterator to the archive and returns how many
    /// were accepted.
    pub fn extend<I: IntoIterator<Item = Individual>>(&mut self, candidates: I) -> usize {
        candidates
            .into_iter()
            .filter(|c| self.insert(c.clone()))
            .count()
    }

    /// Removes the most crowded member until the archive fits its capacity.
    fn prune(&mut self) {
        while self.members.len() > self.capacity {
            let front: Vec<usize> = (0..self.members.len()).collect();
            assign_crowding_distance(&mut self.members, &front);
            let worst = self
                .members
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    a.1.crowding
                        .partial_cmp(&b.1.crowding)
                        .expect("crowding is not NaN")
                })
                .map(|(i, _)| i)
                .expect("archive is non-empty while pruning");
            self.members.remove(worst);
        }
    }

    /// Objective vectors of the stored front.
    pub fn objective_matrix(&self) -> Vec<Vec<f64>> {
        self.members.iter().map(|m| m.objectives.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(f1: f64, f2: f64) -> Individual {
        Individual {
            variables: vec![],
            objectives: vec![f1, f2],
            violation: 0.0,
            rank: 0,
            crowding: 0.0,
        }
    }

    #[test]
    fn dominated_candidates_are_rejected() {
        let mut archive = ParetoArchive::new(10);
        assert!(archive.insert(point(1.0, 1.0)));
        assert!(!archive.insert(point(2.0, 2.0)));
        assert_eq!(archive.len(), 1);
    }

    #[test]
    fn dominating_candidates_evict_dominated_members() {
        let mut archive = ParetoArchive::new(10);
        archive.insert(point(2.0, 2.0));
        archive.insert(point(3.0, 1.0));
        assert!(archive.insert(point(1.0, 1.0)));
        // (1,1) dominates (2,2) and (3,1) stays? No: (1,1) dominates (3,1) too.
        assert_eq!(archive.len(), 1);
        assert_eq!(archive.members()[0].objectives, vec![1.0, 1.0]);
    }

    #[test]
    fn duplicates_and_infeasible_candidates_are_rejected() {
        let mut archive = ParetoArchive::new(10);
        assert!(archive.insert(point(1.0, 2.0)));
        assert!(!archive.insert(point(1.0, 2.0)));
        let mut infeasible = point(0.0, 0.0);
        infeasible.violation = 1.0;
        assert!(!archive.insert(infeasible));
    }

    #[test]
    fn capacity_is_enforced_by_crowding_pruning() {
        let mut archive = ParetoArchive::new(5);
        for i in 0..20 {
            let x = i as f64;
            archive.insert(point(x, 19.0 - x));
        }
        assert_eq!(archive.len(), 5);
        // The extremes survive pruning because of their infinite crowding.
        let objectives = archive.objective_matrix();
        assert!(objectives.iter().any(|o| o[0] == 0.0));
        assert!(objectives.iter().any(|o| o[0] == 19.0));
    }

    #[test]
    fn extend_counts_accepted_candidates() {
        let mut archive = ParetoArchive::new(10);
        let accepted = archive.extend(vec![point(1.0, 5.0), point(5.0, 1.0), point(6.0, 6.0)]);
        assert_eq!(accepted, 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ParetoArchive::new(0);
    }
}
