//! Variation and selection operators used by NSGA-II, MOEA/D and PMO2.

use rand::Rng;

use crate::{constrained_dominates, Individual};

/// Simulated binary crossover (SBX) of two parent decision vectors.
///
/// Returns two children; each gene is crossed with probability 0.5 (otherwise
/// copied), using the distribution index `eta_c` (larger values produce
/// children closer to their parents). Children are clamped to `bounds`.
///
/// # Panics
///
/// Panics if the parents or bounds have inconsistent lengths.
pub fn sbx_crossover<R: Rng>(
    parent_a: &[f64],
    parent_b: &[f64],
    bounds: &[(f64, f64)],
    eta_c: f64,
    rng: &mut R,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(
        parent_a.len(),
        parent_b.len(),
        "parents must have equal length"
    );
    assert_eq!(
        parent_a.len(),
        bounds.len(),
        "one bound per variable is required"
    );
    let n = parent_a.len();
    let mut child_a = parent_a.to_vec();
    let mut child_b = parent_b.to_vec();

    for i in 0..n {
        if rng.gen_bool(0.5) {
            continue;
        }
        let (x1, x2) = (parent_a[i], parent_b[i]);
        if (x1 - x2).abs() < 1e-14 {
            continue;
        }
        let u: f64 = rng.gen();
        let beta = if u <= 0.5 {
            (2.0 * u).powf(1.0 / (eta_c + 1.0))
        } else {
            (1.0 / (2.0 * (1.0 - u))).powf(1.0 / (eta_c + 1.0))
        };
        let c1 = 0.5 * ((1.0 + beta) * x1 + (1.0 - beta) * x2);
        let c2 = 0.5 * ((1.0 - beta) * x1 + (1.0 + beta) * x2);
        let (lower, upper) = bounds[i];
        child_a[i] = c1.clamp(lower, upper);
        child_b[i] = c2.clamp(lower, upper);
    }
    (child_a, child_b)
}

/// Polynomial mutation with distribution index `eta_m`; each gene mutates with
/// probability `mutation_probability` and stays within `bounds`.
///
/// # Panics
///
/// Panics if `x` and `bounds` have different lengths.
pub fn polynomial_mutation<R: Rng>(
    x: &mut [f64],
    bounds: &[(f64, f64)],
    mutation_probability: f64,
    eta_m: f64,
    rng: &mut R,
) {
    assert_eq!(x.len(), bounds.len(), "one bound per variable is required");
    for i in 0..x.len() {
        if !rng.gen_bool(mutation_probability.clamp(0.0, 1.0)) {
            continue;
        }
        let (lower, upper) = bounds[i];
        let range = upper - lower;
        if range <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        let delta = if u < 0.5 {
            (2.0 * u).powf(1.0 / (eta_m + 1.0)) - 1.0
        } else {
            1.0 - (2.0 * (1.0 - u)).powf(1.0 / (eta_m + 1.0))
        };
        x[i] = (x[i] + delta * range).clamp(lower, upper);
    }
}

/// Binary tournament selection on (constrained domination, crowding distance).
///
/// Picks two random members and returns the index of the preferred one: the
/// dominating individual wins; if neither dominates, the better rank wins;
/// within a rank, the larger crowding distance wins. An *exact* crowding tie
/// (common when both contestants carry the infinite boundary distance) is
/// broken by a coin flip from the caller's RNG — a `>=` tie-break would
/// deterministically favor the first-sampled index and bias the selection
/// pressure.
///
/// # Panics
///
/// Panics if `population` is empty.
pub fn tournament_select<R: Rng>(population: &[Individual], rng: &mut R) -> usize {
    assert!(!population.is_empty(), "population must not be empty");
    let a = rng.gen_range(0..population.len());
    let b = rng.gen_range(0..population.len());
    let ind_a = &population[a];
    let ind_b = &population[b];
    if constrained_dominates(ind_a, ind_b) {
        a
    } else if constrained_dominates(ind_b, ind_a) {
        b
    } else if ind_a.rank != ind_b.rank {
        if ind_a.rank < ind_b.rank {
            a
        } else {
            b
        }
    } else if ind_a.crowding > ind_b.crowding {
        a
    } else if ind_b.crowding > ind_a.crowding {
        b
    } else if rng.gen_bool(0.5) {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bounds(n: usize) -> Vec<(f64, f64)> {
        vec![(0.0, 1.0); n]
    }

    #[test]
    fn sbx_children_stay_in_bounds_and_near_parents() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = vec![0.2, 0.8, 0.5];
        let b = vec![0.3, 0.1, 0.5];
        for _ in 0..200 {
            let (c1, c2) = sbx_crossover(&a, &b, &bounds(3), 15.0, &mut rng);
            for child in [&c1, &c2] {
                for &value in child {
                    assert!((0.0..=1.0).contains(&value));
                }
            }
            // A gene identical in both parents is inherited unchanged.
            assert_eq!(c1[2], 0.5);
            assert_eq!(c2[2], 0.5);
        }
    }

    #[test]
    fn sbx_with_high_eta_keeps_children_close() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = vec![0.4];
        let b = vec![0.6];
        let mut max_spread: f64 = 0.0;
        for _ in 0..500 {
            let (c1, _) = sbx_crossover(&a, &b, &bounds(1), 100.0, &mut rng);
            max_spread = max_spread.max((c1[0] - 0.5).abs());
        }
        assert!(max_spread < 0.3);
    }

    #[test]
    fn mutation_respects_bounds_and_probability_zero_is_identity() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut x = vec![0.5, 0.5];
        polynomial_mutation(&mut x, &bounds(2), 0.0, 20.0, &mut rng);
        assert_eq!(x, vec![0.5, 0.5]);
        for _ in 0..200 {
            polynomial_mutation(&mut x, &bounds(2), 1.0, 20.0, &mut rng);
            for &value in &x {
                assert!((0.0..=1.0).contains(&value));
            }
        }
    }

    #[test]
    fn mutation_skips_degenerate_bounds() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut x = vec![0.45];
        polynomial_mutation(&mut x, &[(0.45, 0.45)], 1.0, 20.0, &mut rng);
        assert_eq!(x[0], 0.45);
    }

    #[test]
    fn tournament_prefers_dominating_and_less_crowded() {
        let good = Individual {
            variables: vec![],
            objectives: vec![0.0, 0.0],
            violation: 0.0,
            rank: 0,
            crowding: 1.0,
        };
        let bad = Individual {
            variables: vec![],
            objectives: vec![1.0, 1.0],
            violation: 0.0,
            rank: 1,
            crowding: 0.1,
        };
        let population = vec![good, bad];
        let mut rng = StdRng::seed_from_u64(2);
        let mut wins_for_good = 0;
        for _ in 0..200 {
            if tournament_select(&population, &mut rng) == 0 {
                wins_for_good += 1;
            }
        }
        // The good individual can only lose when it is not drawn at all.
        assert!(wins_for_good > 140);
    }

    #[test]
    fn exact_crowding_ties_are_broken_by_a_coin_flip() {
        // Two incomparable individuals on the same rank with identical
        // (infinite) crowding: neither may be deterministically favored.
        let template = Individual {
            variables: vec![],
            objectives: vec![0.0, 1.0],
            violation: 0.0,
            rank: 0,
            crowding: f64::INFINITY,
        };
        let mut other = template.clone();
        other.objectives = vec![1.0, 0.0];
        let population = vec![template, other];
        let mut rng = StdRng::seed_from_u64(17);
        let mut wins_for_first = 0;
        for _ in 0..2_000 {
            if tournament_select(&population, &mut rng) == 0 {
                wins_for_first += 1;
            }
        }
        // Under the old `>=` tie-break the first-sampled index always won,
        // giving ~75% to index 0 (it wins all ties plus the (0,0) draws).
        assert!(
            (800..1_200).contains(&wins_for_first),
            "tie-breaking is biased: index 0 won {wins_for_first}/2000"
        );
    }

    #[test]
    #[should_panic(expected = "population must not be empty")]
    fn tournament_on_empty_population_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = tournament_select(&[], &mut rng);
    }
}
