//! The generic generation-loop driver.

use std::time::Instant;

use crate::engine::telemetry::MetricsRegistry;
use crate::engine::{
    EngineError, GenerationReport, Observer, Optimizer, OptimizerState, RunStatus, StoppingRule,
};
use crate::{metrics, Individual, MultiObjectiveProblem};

/// Everything a [`Driver`] needs to continue a run elsewhere.
///
/// All fields are plain data (see [`OptimizerState`]), so a checkpoint
/// can be serialized with any format. Observers and stopping rules are
/// configuration, not state, and are re-attached after
/// [`Driver::resume`]; the hypervolume history they depend on *is* carried
/// here, so a resumed [`StoppingRule::HypervolumeStagnation`] sees exactly
/// the window an unsplit run would have seen.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCheckpoint {
    /// Number of generations completed when the checkpoint was taken.
    pub generation: usize,
    /// The optimizer's snapshot.
    pub optimizer: OptimizerState,
    /// Hypervolume after each telemetry-tracked generation, oldest first.
    pub hypervolume_history: Vec<f64>,
    /// The driver's (frozen) hypervolume reference point, if one was
    /// configured or derived.
    pub reference_point: Option<Vec<f64>>,
}

/// Owns the generation loop over any [`Optimizer`].
///
/// The driver steps the optimizer one generation at a time, computes a
/// [`GenerationReport`] after each step (evaluations, front size,
/// hypervolume, wall-clock), fans the report out to the attached
/// [`Observer`]s, and stops when the configured [`StoppingRule`] fires.
///
/// # Problem ownership
///
/// The driver owns its problem value. Because `&T` implements
/// [`MultiObjectiveProblem`] whenever `T` does, passing `&problem` to
/// [`Driver::new`] keeps working (the driver then "owns" a borrow, `P =
/// &T`), while services that hold many long-lived runs — e.g. the
/// `pathway serve` job scheduler — can move the problem *into* the driver
/// and treat the pair as one self-contained actor, advanced one
/// [`step`](Driver::step) at a time per scheduling turn with no borrow
/// tying it to a caller's stack frame.
///
/// # Hypervolume reference point
///
/// Reports need a reference point to compute hypervolume against. Configure
/// one with [`with_reference_point`](Driver::with_reference_point); without
/// one the driver derives a point just beyond the nadir of the *first*
/// generation's front and freezes it for the rest of the run (a moving
/// reference would make stagnation detection meaningless). The frozen point
/// is part of every [`RunCheckpoint`]. For problems with more than three
/// objectives the hypervolume is reported as NaN.
///
/// # Checkpoint / resume
///
/// [`checkpoint`](Driver::checkpoint) captures optimizer state plus the
/// driver's own progress; [`resume`](Driver::resume) rebuilds a driver that
/// continues bit-identically — `tests/determinism.rs` enforces that a run
/// split at *any* generation matches the unsplit run for both `Serial` and
/// `Threads(n)` evaluation backends.
///
/// # Example
///
/// ```
/// use pathway_moo::engine::{Driver, StoppingRule};
/// use pathway_moo::{Nsga2, Nsga2Config, problems::Schaffer};
///
/// let config = Nsga2Config { population_size: 16, ..Default::default() };
/// let make = || Nsga2::new(config, 3);
/// let stop = StoppingRule::MaxGenerations(10);
///
/// // Unsplit run.
/// let unsplit = Driver::new(make(), &Schaffer).with_stopping(stop.clone()).run();
///
/// // The same run split after 4 generations.
/// let mut first_half = Driver::new(make(), &Schaffer).with_stopping(stop.clone());
/// for _ in 0..4 { first_half.step(); }
/// let checkpoint = first_half.checkpoint();
/// let resumed = Driver::resume(make(), &Schaffer, checkpoint)
///     .expect("matching optimizer")
///     .with_stopping(stop)
///     .run();
/// assert_eq!(unsplit, resumed);
/// ```
pub struct Driver<P: MultiObjectiveProblem, O: Optimizer<P>> {
    optimizer: O,
    problem: P,
    observers: Vec<Box<dyn Observer>>,
    stopping: StoppingRule,
    reference_point: Option<Vec<f64>>,
    generation: usize,
    hypervolume_history: Vec<f64>,
    /// Telemetry sink (see [`Driver::with_metrics`]). Observational only:
    /// never checkpointed, never read by the search.
    metrics: Option<MetricsRegistry>,
}

impl<P: MultiObjectiveProblem, O: Optimizer<P>> Driver<P, O> {
    /// Creates a driver for a fresh run.
    ///
    /// The default stopping rule is `MaxGenerations(250)` (matching the
    /// algorithm configs' default generation budget); override it with
    /// [`with_stopping`](Driver::with_stopping). `problem` is moved into
    /// the driver; pass `&problem` to keep ownership at the call site.
    pub fn new(optimizer: O, problem: P) -> Self {
        Driver {
            optimizer,
            problem,
            observers: Vec::new(),
            stopping: StoppingRule::MaxGenerations(250),
            reference_point: None,
            generation: 0,
            hypervolume_history: Vec::new(),
            metrics: None,
        }
    }

    /// Rebuilds a driver from a [`RunCheckpoint`].
    ///
    /// `optimizer` must be constructed with the same configuration and seed
    /// as the checkpointed one; its runtime state is overwritten by the
    /// snapshot. Observers and stopping rules are configuration, not state —
    /// re-attach them with the builder methods.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] when the snapshot does not fit
    /// `optimizer`.
    pub fn resume(
        mut optimizer: O,
        problem: P,
        checkpoint: RunCheckpoint,
    ) -> Result<Self, EngineError> {
        optimizer.restore(checkpoint.optimizer)?;
        Ok(Driver {
            optimizer,
            problem,
            observers: Vec::new(),
            stopping: StoppingRule::MaxGenerations(250),
            reference_point: checkpoint.reference_point,
            generation: checkpoint.generation,
            hypervolume_history: checkpoint.hypervolume_history,
            metrics: None,
        })
    }

    /// Attaches an observer; every attached observer receives every
    /// [`GenerationReport`], in attachment order.
    #[must_use]
    pub fn with_observer<Obs: Observer + 'static>(mut self, observer: Obs) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Replaces the stopping rule (compose several with
    /// [`StoppingRule::any_of`]).
    #[must_use]
    pub fn with_stopping(mut self, rule: StoppingRule) -> Self {
        self.stopping = rule;
        self
    }

    /// Fixes the hypervolume reference point instead of deriving one from
    /// the first generation's front.
    #[must_use]
    pub fn with_reference_point(mut self, reference: Vec<f64>) -> Self {
        self.reference_point = Some(reference);
        self
    }

    /// Attaches a telemetry registry to the driver *and* the optimizer:
    /// each generation records a `phase.generation.*` span (plus a
    /// `phase.telemetry.*` span for front/hypervolume extraction on
    /// observed steps), and the optimizer records its own phase breakdown
    /// (variation, selection, migration, …). Purely observational — the
    /// determinism suite proves runs are bit-identical with and without a
    /// registry attached.
    #[must_use]
    pub fn with_metrics(mut self, registry: MetricsRegistry) -> Self {
        self.optimizer.set_metrics(registry.clone());
        self.metrics = Some(registry);
        self
    }

    /// Number of generations completed so far.
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// Hypervolume after each generation driven with telemetry, oldest
    /// first. Generations driven without any telemetry consumer (see
    /// [`Driver::run`]) record no entry; entries are NaN when no
    /// hypervolume could be computed (empty front or more than three
    /// objectives).
    pub fn hypervolume_history(&self) -> &[f64] {
        &self.hypervolume_history
    }

    /// The driven optimizer.
    pub fn optimizer(&self) -> &O {
        &self.optimizer
    }

    /// The driven problem.
    pub fn problem(&self) -> &P {
        &self.problem
    }

    /// The current non-dominated front.
    pub fn front(&self) -> Vec<Individual> {
        self.optimizer.front()
    }

    /// `true` if the configured stopping rule fires on the current status.
    ///
    /// A safety net guards purely stagnation-based compositions (no
    /// generation or evaluation budget anywhere in the rule): stagnation
    /// never fires on NaN hypervolumes, so if the hypervolume stays
    /// unmeasurable for a whole stagnation window — e.g. a problem with
    /// more than three objectives — the run stops instead of spinning
    /// forever. Compose a budget rule via [`StoppingRule::any_of`] to keep
    /// explicit control.
    pub fn should_stop(&self) -> bool {
        let status = RunStatus {
            generation: self.generation,
            evaluations: self.optimizer.evaluations(),
            hypervolume_history: &self.hypervolume_history,
        };
        if self.stopping.should_stop(&status) {
            return true;
        }
        if !self.stopping.is_budget_bounded() {
            if let Some(window) = self.stopping.max_stagnation_window() {
                let history = &self.hypervolume_history;
                if window > 0
                    && history.len() > window
                    && history[history.len() - 1 - window..]
                        .iter()
                        .all(|h| h.is_nan())
                {
                    return true;
                }
            }
        }
        false
    }

    /// Runs one generation: step the optimizer, record the report, notify
    /// observers. Initializes the optimizer first when needed.
    pub fn step(&mut self) -> GenerationReport {
        self.optimizer.initialize(&self.problem);
        let started = Instant::now();
        self.optimizer.step(&self.problem);
        let wall_clock = started.elapsed();
        self.generation += 1;
        if let Some(metrics) = &self.metrics {
            metrics.record_phase("generation", wall_clock);
        }

        let telemetry_started = Instant::now();
        let front = self.optimizer.front();
        let objectives: Vec<Vec<f64>> = front.iter().map(|i| i.objectives.clone()).collect();
        if self.reference_point.is_none() {
            self.reference_point = derive_reference(&objectives);
        }
        let hypervolume = match &self.reference_point {
            Some(reference) if matches!(reference.len(), 2 | 3) => {
                metrics::hypervolume(&objectives, reference)
            }
            _ => f64::NAN,
        };
        self.hypervolume_history.push(hypervolume);
        if let Some(metrics) = &self.metrics {
            metrics.record_phase("telemetry", telemetry_started.elapsed());
        }

        let report = GenerationReport {
            generation: self.generation,
            evaluations: self.optimizer.evaluations(),
            front_size: front.len(),
            hypervolume,
            wall_clock,
        };
        for observer in &mut self.observers {
            observer.on_generation(&report);
        }
        report
    }

    /// Runs generations until the stopping rule fires, then returns the
    /// final non-dominated front.
    ///
    /// When no observer is attached and no stopping rule reads the
    /// hypervolume history, the per-generation telemetry (front extraction,
    /// hypervolume) is skipped entirely — those generations record no
    /// history entry — so an unobserved `run` costs no more than stepping
    /// the optimizer directly. The search trajectory is identical either
    /// way: telemetry is read-only.
    pub fn run(&mut self) -> Vec<Individual> {
        self.run_for(usize::MAX);
        self.optimizer.front()
    }

    /// Advances up to `generations` generations, stopping early if the
    /// stopping rule fires, and returns how many generations actually ran.
    ///
    /// This is the cheap way to drive part of a run before a
    /// [`checkpoint`](Driver::checkpoint): like [`Driver::run`] it skips
    /// per-generation telemetry when nothing consumes it, unlike a manual
    /// loop over [`Driver::step`] which always pays for a full report.
    pub fn run_for(&mut self, generations: usize) -> usize {
        self.optimizer.initialize(&self.problem);
        let wants_telemetry = !self.observers.is_empty() || self.stopping.needs_hypervolume();
        let mut completed = 0;
        while completed < generations && !self.should_stop() {
            if wants_telemetry {
                self.step();
            } else {
                self.step_untracked();
            }
            completed += 1;
        }
        completed
    }

    /// Advances one generation without computing the front or hypervolume.
    /// Nothing is appended to the hypervolume history: it holds one entry
    /// per generation driven *with* telemetry, so a stagnation window never
    /// spans generations whose hypervolume was simply not computed.
    fn step_untracked(&mut self) {
        self.optimizer.initialize(&self.problem);
        let started = Instant::now();
        self.optimizer.step(&self.problem);
        if let Some(metrics) = &self.metrics {
            metrics.record_phase("generation", started.elapsed());
        }
        self.generation += 1;
    }

    /// Captures everything needed to continue this run elsewhere.
    pub fn checkpoint(&self) -> RunCheckpoint {
        RunCheckpoint {
            generation: self.generation,
            optimizer: self.optimizer.state(),
            hypervolume_history: self.hypervolume_history.clone(),
            reference_point: self.reference_point.clone(),
        }
    }

    /// Consumes the driver, returning the optimizer (e.g. to inspect its
    /// final population).
    pub fn into_optimizer(self) -> O {
        self.optimizer
    }
}

/// Derives a frozen hypervolume reference point just beyond the nadir of a
/// front: per objective, the maximum value plus a 10% margin of the front's
/// span (or of the value's own magnitude when the front is degenerate).
/// Returns `None` for empty fronts or fronts with more than three
/// objectives.
fn derive_reference(objectives: &[Vec<f64>]) -> Option<Vec<f64>> {
    let first = objectives.first()?;
    if !matches!(first.len(), 2 | 3) {
        return None;
    }
    let dim = first.len();
    let mut reference = Vec::with_capacity(dim);
    for m in 0..dim {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for point in objectives {
            min = min.min(point[m]);
            max = max.max(point[m]);
        }
        if !min.is_finite() || !max.is_finite() {
            return None;
        }
        let margin = 0.1 * (max - min).max(max.abs()).max(1.0);
        reference.push(max + margin);
    }
    Some(reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HistoryObserver;
    use crate::problems::{Schaffer, Zdt1};
    use crate::{Nsga2, Nsga2Config};

    fn small(seed: u64) -> Nsga2 {
        Nsga2::new(
            Nsga2Config {
                population_size: 16,
                ..Default::default()
            },
            seed,
        )
    }

    #[test]
    fn run_respects_max_generations_and_reports_every_generation() {
        let history = HistoryObserver::new();
        let mut driver = Driver::new(small(1), &Schaffer)
            .with_observer(history.clone())
            .with_stopping(StoppingRule::MaxGenerations(6));
        let front = driver.run();
        assert!(!front.is_empty());
        assert_eq!(driver.generation(), 6);
        let reports = history.reports();
        assert_eq!(reports.len(), 6);
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.generation, i + 1);
            assert!(report.front_size > 0);
            assert!(report.hypervolume.is_finite());
        }
        // Evaluations grow monotonically across reports.
        for pair in reports.windows(2) {
            assert!(pair[1].evaluations > pair[0].evaluations);
        }
    }

    #[test]
    fn max_evaluations_bounds_the_run() {
        let mut driver =
            Driver::new(small(2), &Schaffer).with_stopping(StoppingRule::MaxEvaluations(16 * 4));
        driver.run();
        // init (16) + 3 steps (48) reaches the 64-evaluation budget.
        assert_eq!(driver.generation(), 3);
    }

    #[test]
    fn stagnation_stops_a_converged_run() {
        let mut driver = Driver::new(small(3), &Schaffer).with_stopping(StoppingRule::any_of([
            StoppingRule::MaxGenerations(400),
            StoppingRule::HypervolumeStagnation {
                window: 8,
                epsilon: 1e-12,
            },
        ]));
        driver.run();
        assert!(
            driver.generation() < 400,
            "Schaffer should stagnate well before 400 generations"
        );
    }

    #[test]
    fn explicit_reference_point_is_used_verbatim() {
        let mut driver = Driver::new(small(4), &Schaffer)
            .with_reference_point(vec![30.0, 30.0])
            .with_stopping(StoppingRule::MaxGenerations(2));
        driver.step();
        driver.step();
        let checkpoint = driver.checkpoint();
        assert_eq!(checkpoint.reference_point, Some(vec![30.0, 30.0]));
        assert!(checkpoint.hypervolume_history.iter().all(|h| h.is_finite()));
    }

    #[test]
    fn unobserved_runs_skip_telemetry_but_match_observed_runs() {
        let stop = StoppingRule::MaxGenerations(5);
        let mut untracked = Driver::new(small(6), &Schaffer).with_stopping(stop.clone());
        let untracked_front = untracked.run();
        assert!(untracked.hypervolume_history().is_empty());
        assert_eq!(untracked.generation(), 5);

        let mut observed = Driver::new(small(6), &Schaffer)
            .with_observer(HistoryObserver::new())
            .with_stopping(stop);
        let observed_front = observed.run();
        assert!(observed.hypervolume_history().iter().all(|h| h.is_finite()));
        // Telemetry is read-only: the search trajectory is identical.
        assert_eq!(untracked_front, observed_front);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_mid_run() {
        let problem = Zdt1 { variables: 6 };
        let stop = StoppingRule::MaxGenerations(12);
        let unsplit = Driver::new(small(9), &problem)
            .with_stopping(stop.clone())
            .run();

        let mut first = Driver::new(small(9), &problem).with_stopping(stop.clone());
        for _ in 0..5 {
            first.step();
        }
        let resumed = Driver::resume(small(9), &problem, first.checkpoint())
            .expect("same configuration")
            .with_stopping(stop)
            .run();
        assert_eq!(unsplit, resumed);
    }

    #[test]
    fn stagnation_only_runs_terminate_when_hypervolume_is_unmeasurable() {
        // Four objectives: the driver can never derive a reference point,
        // every history entry is NaN, and stagnation alone would never
        // fire — the safety net must end the run after one NaN window.
        struct FourObjectives;
        impl crate::MultiObjectiveProblem for FourObjectives {
            fn num_variables(&self) -> usize {
                2
            }
            fn num_objectives(&self) -> usize {
                4
            }
            fn bounds(&self) -> Vec<(f64, f64)> {
                vec![(0.0, 1.0); 2]
            }
            fn evaluate(&self, x: &[f64]) -> Vec<f64> {
                vec![x[0], 1.0 - x[0], x[1], 1.0 - x[1]]
            }
        }
        let optimizer = Nsga2::new(
            Nsga2Config {
                population_size: 8,
                ..Default::default()
            },
            1,
        );
        let mut driver =
            Driver::new(optimizer, &FourObjectives).with_stopping(StoppingRule::any_of([
                StoppingRule::HypervolumeStagnation {
                    window: 4,
                    epsilon: 1e-9,
                },
            ]));
        driver.run();
        assert_eq!(driver.generation(), 5, "one NaN window, then stop");
        assert!(driver.hypervolume_history().iter().all(|h| h.is_nan()));
    }

    #[test]
    fn run_for_advances_cheaply_and_respects_the_stopping_rule() {
        let mut driver =
            Driver::new(small(8), &Schaffer).with_stopping(StoppingRule::MaxGenerations(6));
        assert_eq!(driver.run_for(4), 4);
        assert!(driver.hypervolume_history().is_empty());
        // Only 2 of the requested 5 remain under the budget.
        assert_eq!(driver.run_for(5), 2);
        assert_eq!(driver.generation(), 6);
    }

    #[test]
    fn derive_reference_handles_edge_fronts() {
        assert_eq!(derive_reference(&[]), None);
        assert_eq!(derive_reference(&[vec![1.0; 4]]), None);
        let reference =
            derive_reference(&[vec![0.0, 10.0], vec![1.0, 5.0]]).expect("bi-objective front");
        assert!(reference[0] > 1.0 && reference[1] > 10.0);
        // Degenerate (single-point) fronts still get a positive margin.
        let degenerate = derive_reference(&[vec![0.0, 0.0]]).expect("front");
        assert!(degenerate.iter().all(|&r| r > 0.0));
    }
}
