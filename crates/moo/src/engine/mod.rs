//! The step-driven optimization engine.
//!
//! The paper's workflow is one fixed pipeline; this module turns its three
//! algorithms into pluggable backends behind a single problem/driver
//! contract:
//!
//! * [`Optimizer`] — the uniform surface every algorithm implements:
//!   [`initialize`](Optimizer::initialize), [`step`](Optimizer::step),
//!   [`population`](Optimizer::population), [`front`](Optimizer::front),
//!   an [`evaluations`](Optimizer::evaluations) odometer, and a
//!   serializable [`OptimizerState`] snapshot.
//!   [`Nsga2`](crate::Nsga2), [`Moead`](crate::Moead) and
//!   [`Archipelago`](crate::Archipelago) all implement it.
//! * [`Driver`] — owns the generation loop: it steps an optimizer, notifies
//!   [`Observer`]s with per-generation [`GenerationReport`]s, stops when a
//!   [`StoppingRule`] fires, and can [`checkpoint`](Driver::checkpoint) /
//!   [`resume`](Driver::resume) a run so that a split run is bit-identical
//!   to an unsplit one.
//! * [`RunSpec`] — a declarative, serializable run description (problem,
//!   optimizer configuration, seed, stopping rules, observer sinks) with a
//!   canonical text codec ([`RunSpec::to_text`] / [`RunSpec::from_text`])
//!   and a content hash; [`AnyOptimizer`] lets spec-driven code hold any
//!   optimizer kind behind one type.
//! * [`CheckpointStore`] — durable on-disk checkpoints: atomic writes, a
//!   versioned header with an integrity checksum, the spec embedded for
//!   self-describing resume, and a spec-hash check that rejects resuming
//!   under a different spec.
//!
//! # Example
//!
//! ```
//! use pathway_moo::engine::{Driver, HistoryObserver, Optimizer, StoppingRule};
//! use pathway_moo::{Nsga2, Nsga2Config, problems::Schaffer};
//!
//! let config = Nsga2Config { population_size: 24, ..Default::default() };
//! let history = HistoryObserver::new();
//! let mut driver = Driver::new(Nsga2::new(config, 7), &Schaffer)
//!     .with_observer(history.clone())
//!     .with_stopping(StoppingRule::any_of([
//!         StoppingRule::MaxGenerations(40),
//!         StoppingRule::HypervolumeStagnation { window: 10, epsilon: 1e-9 },
//!     ]));
//! let front = driver.run();
//! assert!(!front.is_empty());
//! assert!(history.reports().len() <= 40);
//! ```

mod driver;
mod observer;
mod spec;
mod state;
mod stopping;
mod store;
mod sweep;
pub mod telemetry;

pub use driver::{Driver, RunCheckpoint};
pub use observer::{
    ChannelObserver, GenerationReport, HistoryObserver, LogObserver, NullObserver, Observer,
};
pub use spec::{
    AnyOptimizer, ArchipelagoSpec, MoeadSpec, Nsga2Spec, OptimizerSpec, ProblemSpec, RunSpec,
    SpecError, StoppingSpec, SPEC_HEADER,
};
pub use state::{ArchipelagoState, EngineError, MoeadState, Nsga2State, OptimizerState, RngState};
pub use stopping::{RunStatus, StoppingRule};
pub use store::{
    decode_checkpoint, encode_checkpoint, read_checkpoint_file, write_checkpoint_file,
    CheckpointError, CheckpointRetention, CheckpointStore, StoredCheckpoint,
};
pub use sweep::{is_sweep_text, SweepAxis, SweepCell, SweepSpec, MAX_SWEEP_CELLS, SWEEP_HEADER};
pub use telemetry::{
    HistogramSnapshot, Metric, MetricsRegistry, MetricsSnapshot, PhaseSpan, METRIC_SHARDS,
};

use crate::{Individual, MultiObjectiveProblem};

/// A resumable, step-driven multi-objective optimizer over problem type `P`.
///
/// The contract every implementation upholds:
///
/// * [`initialize`](Optimizer::initialize) is idempotent — the first call
///   samples and evaluates the initial population, later calls are no-ops.
/// * [`step`](Optimizer::step) advances the search by exactly one
///   generation (initializing first if needed) and strictly increases
///   [`evaluations`](Optimizer::evaluations).
/// * [`front`](Optimizer::front) returns a mutually non-dominating subset of
///   the current population under constrained domination.
/// * [`state`](Optimizer::state) / [`restore`](Optimizer::restore) round-trip
///   every bit of run state (populations, RNG streams, counters): an
///   optimizer restored from a snapshot continues the exact trajectory the
///   snapshotted one would have taken. Configuration is *not* part of the
///   snapshot — restore into an optimizer built with the same configuration
///   and seed family.
pub trait Optimizer<P: MultiObjectiveProblem> {
    /// Samples and evaluates the initial population if that has not happened
    /// yet. Idempotent.
    fn initialize(&mut self, problem: &P);

    /// Advances the search by one generation, initializing first if needed.
    fn step(&mut self, problem: &P);

    /// An owned snapshot of the current population (for multi-population
    /// optimizers: all sub-populations concatenated). Empty before
    /// initialization.
    fn population(&self) -> Vec<Individual>;

    /// The current non-dominated front. Empty before initialization.
    fn front(&self) -> Vec<Individual>;

    /// Cumulative number of candidate evaluations spent so far.
    fn evaluations(&self) -> usize;

    /// Captures the complete run state as plain data.
    fn state(&self) -> OptimizerState;

    /// Restores a snapshot previously captured with
    /// [`state`](Optimizer::state).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::StateMismatch`] when the snapshot belongs to a
    /// different optimizer kind, and [`EngineError::ConfigMismatch`] when
    /// its shape disagrees with this optimizer's configuration.
    fn restore(&mut self, state: OptimizerState) -> Result<(), EngineError>;

    /// Attaches a telemetry registry. Purely observational: an optimizer
    /// with metrics attached takes the exact search trajectory one
    /// without would. The default implementation records nothing.
    fn set_metrics(&mut self, registry: MetricsRegistry) {
        let _ = registry;
    }
}
