//! Stopping rules for [`crate::engine::Driver`] runs.
//!
//! Rules are deliberately stateless values: every decision is a pure function
//! of the [`RunStatus`] the driver passes in (which includes the run's
//! hypervolume history). That keeps checkpoint/resume trivial — the driver
//! checkpoints its own history and the rules need no persistence of their
//! own.

/// A read-only view of the run that stopping rules decide on.
///
/// `hypervolume_history` holds one entry per generation driven with
/// telemetry (the driver skips it when nothing consumes it), computed
/// against the driver's (frozen) reference point; entries are NaN when the
/// front had more than three objectives or was empty.
#[derive(Debug, Clone, Copy)]
pub struct RunStatus<'a> {
    /// Number of generations completed so far.
    pub generation: usize,
    /// Cumulative candidate evaluations spent so far.
    pub evaluations: usize,
    /// Hypervolume after each telemetry-tracked generation, oldest first.
    pub hypervolume_history: &'a [f64],
}

/// When a [`crate::engine::Driver`] run should stop.
///
/// Rules compose with [`StoppingRule::any_of`]: the run stops as soon as any
/// member rule fires.
///
/// # Example
///
/// ```
/// use pathway_moo::engine::{RunStatus, StoppingRule};
///
/// let rule = StoppingRule::any_of([
///     StoppingRule::MaxGenerations(100),
///     StoppingRule::MaxEvaluations(50_000),
/// ]);
/// let status = RunStatus { generation: 100, evaluations: 4_000, hypervolume_history: &[] };
/// assert!(rule.should_stop(&status));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum StoppingRule {
    /// Stop once this many generations have completed.
    MaxGenerations(usize),
    /// Stop once at least this many candidate evaluations have been spent.
    /// The check runs between generations, so a run may overshoot by up to
    /// one generation's worth of evaluations.
    MaxEvaluations(usize),
    /// Stop when the hypervolume gained over the trailing `window`
    /// generations falls below `epsilon`.
    ///
    /// The rule needs `window + 1` completed generations before it can fire
    /// (it compares the newest hypervolume against the one `window`
    /// generations earlier); a `window` of zero never fires. NaN entries —
    /// hypervolume not measurable for that generation, whether transiently
    /// (non-finite objectives early in a run) or structurally (more than
    /// three objectives) — keep the rule from firing: stagnation is only
    /// ever declared on *measured* non-improvement. Because of that, always
    /// compose this rule with a budget rule via [`StoppingRule::any_of`];
    /// [`crate::engine::Driver::run`] adds a safety net for purely
    /// stagnation-based compositions whose hypervolume never becomes
    /// measurable.
    HypervolumeStagnation {
        /// Number of trailing generations the improvement is measured over.
        window: usize,
        /// Minimum hypervolume gain expected over the window.
        epsilon: f64,
    },
    /// Stop as soon as any of the inner rules fires. An empty list never
    /// stops.
    AnyOf(Vec<StoppingRule>),
}

impl StoppingRule {
    /// Composes rules so the run stops when any of them fires.
    pub fn any_of<I: IntoIterator<Item = StoppingRule>>(rules: I) -> Self {
        StoppingRule::AnyOf(rules.into_iter().collect())
    }

    /// `true` if evaluating this rule reads the hypervolume history (i.e. a
    /// [`StoppingRule::HypervolumeStagnation`] is reachable). The driver
    /// uses this to skip per-generation front and hypervolume computation
    /// when no observer and no rule would consume it.
    pub fn needs_hypervolume(&self) -> bool {
        match self {
            StoppingRule::HypervolumeStagnation { .. } => true,
            StoppingRule::AnyOf(rules) => rules.iter().any(StoppingRule::needs_hypervolume),
            StoppingRule::MaxGenerations(_) | StoppingRule::MaxEvaluations(_) => false,
        }
    }

    /// `true` if this rule is guaranteed to fire eventually on any run: a
    /// generation or evaluation budget is reachable. Stagnation alone is
    /// not bounded (hypervolume may never become measurable); the driver
    /// uses this to arm its unmeasurable-stagnation safety net.
    pub fn is_budget_bounded(&self) -> bool {
        match self {
            StoppingRule::MaxGenerations(_) | StoppingRule::MaxEvaluations(_) => true,
            StoppingRule::HypervolumeStagnation { .. } => false,
            StoppingRule::AnyOf(rules) => rules.iter().any(StoppingRule::is_budget_bounded),
        }
    }

    /// The largest stagnation window reachable in this rule, if any.
    pub fn max_stagnation_window(&self) -> Option<usize> {
        match self {
            StoppingRule::HypervolumeStagnation { window, .. } => Some(*window),
            StoppingRule::AnyOf(rules) => rules
                .iter()
                .filter_map(StoppingRule::max_stagnation_window)
                .max(),
            StoppingRule::MaxGenerations(_) | StoppingRule::MaxEvaluations(_) => None,
        }
    }

    /// `true` if the run should stop at `status`.
    pub fn should_stop(&self, status: &RunStatus<'_>) -> bool {
        match self {
            StoppingRule::MaxGenerations(limit) => status.generation >= *limit,
            StoppingRule::MaxEvaluations(limit) => status.evaluations >= *limit,
            StoppingRule::HypervolumeStagnation { window, epsilon } => {
                let history = status.hypervolume_history;
                if *window == 0 || history.len() <= *window {
                    return false;
                }
                let newest = history[history.len() - 1];
                let oldest = history[history.len() - 1 - window];
                if newest.is_nan() || oldest.is_nan() {
                    return false;
                }
                newest - oldest < *epsilon
            }
            StoppingRule::AnyOf(rules) => rules.iter().any(|rule| rule.should_stop(status)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status<'a>(generation: usize, evaluations: usize, history: &'a [f64]) -> RunStatus<'a> {
        RunStatus {
            generation,
            evaluations,
            hypervolume_history: history,
        }
    }

    #[test]
    fn max_generations_fires_at_the_limit() {
        let rule = StoppingRule::MaxGenerations(10);
        assert!(!rule.should_stop(&status(9, 0, &[])));
        assert!(rule.should_stop(&status(10, 0, &[])));
        assert!(rule.should_stop(&status(11, 0, &[])));
        assert!(StoppingRule::MaxGenerations(0).should_stop(&status(0, 0, &[])));
    }

    #[test]
    fn max_evaluations_fires_at_the_budget() {
        let rule = StoppingRule::MaxEvaluations(1_000);
        assert!(!rule.should_stop(&status(3, 999, &[])));
        assert!(rule.should_stop(&status(3, 1_000, &[])));
    }

    #[test]
    fn stagnation_needs_a_full_window_of_history() {
        let rule = StoppingRule::HypervolumeStagnation {
            window: 3,
            epsilon: 1e-3,
        };
        // Too little history: window + 1 = 4 entries are needed.
        assert!(!rule.should_stop(&status(3, 0, &[1.0, 1.0, 1.0])));
        // Exactly enough, flat: fires.
        assert!(rule.should_stop(&status(4, 0, &[1.0, 1.0, 1.0, 1.0])));
        // Improvement inside the window keeps it alive.
        assert!(!rule.should_stop(&status(4, 0, &[1.0, 1.0, 1.0, 1.5])));
        // Improvement older than the window does not count.
        assert!(rule.should_stop(&status(5, 0, &[0.0, 1.0, 1.0, 1.0, 1.0009])));
    }

    #[test]
    fn stagnation_treats_regressions_as_stalled() {
        let rule = StoppingRule::HypervolumeStagnation {
            window: 2,
            epsilon: 1e-6,
        };
        // Hypervolume fell over the window: stalled, not improving.
        assert!(rule.should_stop(&status(3, 0, &[2.0, 1.8, 1.5])));
    }

    #[test]
    fn stagnation_edge_windows_never_fire() {
        let zero = StoppingRule::HypervolumeStagnation {
            window: 0,
            epsilon: 1.0,
        };
        assert!(!zero.should_stop(&status(10, 0, &[1.0; 10])));
        // Stagnation is only declared on *measured* non-improvement: any
        // NaN endpoint keeps the rule quiet (the driver's safety net covers
        // purely stagnation-based runs whose hypervolume never resolves).
        let nan_guard = StoppingRule::HypervolumeStagnation {
            window: 1,
            epsilon: 1.0,
        };
        assert!(!nan_guard.should_stop(&status(2, 0, &[1.0, f64::NAN])));
        assert!(!nan_guard.should_stop(&status(2, 0, &[f64::NAN, 1.0])));
        assert!(!nan_guard.should_stop(&status(2, 0, &[f64::NAN, f64::NAN])));
    }

    #[test]
    fn rule_introspection_reports_budget_and_window() {
        assert!(StoppingRule::MaxGenerations(5).is_budget_bounded());
        assert!(StoppingRule::MaxEvaluations(5).is_budget_bounded());
        let stagnation = StoppingRule::HypervolumeStagnation {
            window: 7,
            epsilon: 0.1,
        };
        assert!(!stagnation.is_budget_bounded());
        assert_eq!(stagnation.max_stagnation_window(), Some(7));
        let composed = StoppingRule::any_of([StoppingRule::MaxGenerations(5), stagnation.clone()]);
        assert!(composed.is_budget_bounded());
        assert_eq!(composed.max_stagnation_window(), Some(7));
        assert!(!StoppingRule::any_of([stagnation]).is_budget_bounded());
        assert_eq!(
            StoppingRule::MaxGenerations(5).max_stagnation_window(),
            None
        );
    }

    #[test]
    fn any_of_is_a_disjunction() {
        let rule = StoppingRule::any_of([
            StoppingRule::MaxGenerations(100),
            StoppingRule::MaxEvaluations(500),
        ]);
        assert!(!rule.should_stop(&status(5, 100, &[])));
        assert!(rule.should_stop(&status(5, 500, &[])));
        assert!(rule.should_stop(&status(100, 0, &[])));
        assert!(!StoppingRule::any_of([]).should_stop(&status(usize::MAX, usize::MAX, &[])));
    }
}
