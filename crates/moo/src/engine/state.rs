//! Serializable optimizer snapshots.
//!
//! Every field of every type in this module is plain data (`u64`, `usize`,
//! `f64`, and vectors thereof via [`Individual`]), so a snapshot can be
//! persisted with any serialization format the embedding application likes
//! and later fed back through [`crate::engine::Optimizer::restore`]. A
//! restored optimizer continues the exact same RNG streams and therefore the
//! exact same search trajectory, which is what makes
//! [`crate::engine::Driver`] checkpoints bit-identical to unsplit runs.

use rand::rngs::StdRng;

use crate::Individual;

/// Captured xoshiro256++ generator state (see `StdRng::state`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngState(pub [u64; 4]);

impl RngState {
    /// Captures the state of a generator.
    pub fn capture(rng: &StdRng) -> Self {
        RngState(rng.state())
    }

    /// Rebuilds a generator continuing the captured stream.
    pub fn rebuild(&self) -> StdRng {
        StdRng::from_state(self.0)
    }
}

/// Snapshot of an [`crate::Nsga2`] solver mid-run.
#[derive(Debug, Clone, PartialEq)]
pub struct Nsga2State {
    /// Mating/variation RNG state.
    pub rng: RngState,
    /// Current population, including `rank`/`crowding` bookkeeping.
    pub population: Vec<Individual>,
    /// Cumulative number of candidate evaluations spent so far.
    pub evaluations: usize,
}

/// Snapshot of a [`crate::Moead`] solver mid-run.
#[derive(Debug, Clone, PartialEq)]
pub struct MoeadState {
    /// Variation RNG state.
    pub rng: RngState,
    /// One incumbent per sub-problem, in weight-vector order.
    pub population: Vec<Individual>,
    /// Current ideal point `z*` (per-objective minimum seen so far).
    pub ideal: Vec<f64>,
    /// Cumulative number of candidate evaluations spent so far.
    pub evaluations: usize,
}

/// Snapshot of an [`crate::Archipelago`] mid-run.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchipelagoState {
    /// Per-island NSGA-II snapshots, in island order.
    pub islands: Vec<Nsga2State>,
    /// Per-island migration-export archives (see
    /// [`crate::ParetoArchive`]), in island order.
    pub archives: Vec<Vec<Individual>>,
    /// Migration-event RNG state.
    pub migration_rng: RngState,
    /// Number of generations every island has completed.
    pub generations_done: usize,
}

/// A snapshot of any shipped optimizer, as produced by
/// [`crate::engine::Optimizer::state`].
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizerState {
    /// Snapshot of an [`crate::Nsga2`] solver.
    Nsga2(Nsga2State),
    /// Snapshot of a [`crate::Moead`] solver.
    Moead(MoeadState),
    /// Snapshot of an [`crate::Archipelago`].
    Archipelago(ArchipelagoState),
}

impl OptimizerState {
    /// Short name of the optimizer kind this snapshot belongs to.
    pub fn kind(&self) -> &'static str {
        match self {
            OptimizerState::Nsga2(_) => "Nsga2",
            OptimizerState::Moead(_) => "Moead",
            OptimizerState::Archipelago(_) => "Archipelago",
        }
    }
}

/// Errors surfaced by the engine's restore path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A snapshot of one optimizer kind was fed to another kind.
    StateMismatch {
        /// Optimizer kind that tried to restore.
        expected: &'static str,
        /// Kind recorded in the snapshot.
        found: &'static str,
    },
    /// The snapshot's shape disagrees with the restoring optimizer's
    /// configuration (e.g. a different island count).
    ConfigMismatch {
        /// What disagreed, for diagnostics.
        detail: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::StateMismatch { expected, found } => {
                write!(
                    f,
                    "cannot restore a {found} snapshot into a {expected} optimizer"
                )
            }
            EngineError::ConfigMismatch { detail } => {
                write!(
                    f,
                    "snapshot does not fit the optimizer configuration: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rng_state_roundtrip_continues_the_stream() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen::<u64>();
        let mut resumed = RngState::capture(&rng).rebuild();
        assert_eq!(rng.gen::<u64>(), resumed.gen::<u64>());
    }

    #[test]
    fn state_kinds_are_labelled() {
        let state = OptimizerState::Nsga2(Nsga2State {
            rng: RngState([1, 2, 3, 4]),
            population: vec![],
            evaluations: 0,
        });
        assert_eq!(state.kind(), "Nsga2");
    }

    #[test]
    fn engine_errors_render() {
        let mismatch = EngineError::StateMismatch {
            expected: "Moead",
            found: "Nsga2",
        };
        assert!(mismatch.to_string().contains("Nsga2"));
        let config = EngineError::ConfigMismatch {
            detail: "2 islands vs 3".into(),
        };
        assert!(config.to_string().contains("islands"));
    }
}
