//! Grid sweeps: one [`RunSpec`] template plus axes, expanded into cells.
//!
//! The paper's contribution is a *comparison* — methods run across
//! scenarios, configurations and seeds — so the unit of benchmarking here
//! is not a single run but a grid. A sweep document is an ordinary spec
//! file with two changes: the header reads `pathway-sweep v1` instead of
//! `pathway-spec v1`, and one extra `[sweep]` section lists the axes:
//!
//! ```text
//! pathway-sweep v1
//!
//! [sweep]
//! optimizer.kind = nsga2 | moead
//! problem.name   = schaffer | zdt1
//! run.seed       = 1 | 2 | 3
//!
//! [problem]
//! name = schaffer
//!
//! [optimizer]
//! kind = nsga2
//! population = 24
//!
//! [run]
//! seed = 1
//!
//! [stop]
//! max_generations = 60
//! ```
//!
//! Every axis names a spec field as `<section>.<key>` and lists its values
//! separated by `|`. The cartesian product of the axes (the **last** axis
//! varies fastest, like an odometer) yields the grid's cells; each cell is
//! the template with the axis values substituted in, re-parsed and
//! re-validated through the ordinary [`RunSpec`] codec, so a cell can never
//! be a spec the engine would not accept from a file.
//!
//! Expansion is deterministic: cell indices, coordinates and per-cell spec
//! hashes are a pure function of the sweep text. That is what lets a
//! results ledger skip completed cells by `(index, spec hash)` alone and
//! lets a killed sweep resume bit-identically.
//!
//! `optimizer.kind` gets one special rule. A naive line substitution would
//! leave the template's kind-specific keys behind — an nsga2 template
//! carries `crossover_probability`, which moead rejects — so a kind axis
//! *rebuilds* the `[optimizer]` section: `kind = <value>` first, then only
//! the keys the target kind accepts, carried over from the template in
//! order. Shared keys (`population`, `eta_crossover`, `eta_mutation`,
//! `mutation_probability`, `backend`) therefore apply to every cell, while
//! a kind-specific key such as `islands` or `neighborhood` reaches only
//! the cells of the kind that understands it.

use super::spec::{fnv1a64, strip_comment, RunSpec, SpecError, KNOWN_SECTIONS, SPEC_HEADER};

/// The header line every sweep document starts with.
pub const SWEEP_HEADER: &str = "pathway-sweep v1";

/// Expansion guard: a sweep larger than this is almost certainly a typo
/// (an axis pasted twice, a seed range fat-fingered) and would grind a
/// laptop for days; the parser refuses it up front.
pub const MAX_SWEEP_CELLS: usize = 4096;

/// One sweep axis: a dotted spec field and the values it ranges over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepAxis {
    /// Dotted spec field, e.g. `run.seed` or `optimizer.population`.
    pub field: String,
    /// The values this axis takes, in declaration order, as raw spec text.
    pub values: Vec<String>,
}

/// One cell of the expanded grid: its index, the axis values that produced
/// it, and the fully validated [`RunSpec`] it runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Position in odometer order (last axis fastest), 0-based.
    pub index: usize,
    /// `(field, value)` per axis, in axis declaration order.
    pub coordinates: Vec<(String, String)>,
    /// The cell's concrete run spec (template + substitutions).
    pub spec: RunSpec,
}

impl SweepCell {
    /// The cell's canonical directory/file stem, e.g. `cell-0007`.
    pub fn label(&self) -> String {
        format!("cell-{:04}", self.index)
    }

    /// Human-readable coordinates, e.g. `problem.name=zdt1 run.seed=2`.
    pub fn coordinates_string(&self) -> String {
        self.coordinates
            .iter()
            .map(|(field, value)| format!("{field}={value}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// A parsed sweep: the run template and the axes to expand over it.
///
/// See the `pathway sweep` section of the repository README for the text
/// format (or the example at the top of this source file). Like [`RunSpec`], a
/// sweep has a canonical rendering ([`to_text`](SweepSpec::to_text)), an
/// exact round-trip, and an FNV-1a [`content_hash`](SweepSpec::content_hash)
/// over the canonical text that ledgers use to refuse mixing results from
/// different sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The base run description every cell starts from.
    pub template: RunSpec,
    /// The axes, in declaration order.
    pub axes: Vec<SweepAxis>,
}

impl SweepSpec {
    /// Parses a sweep document and validates the *entire* grid: every cell
    /// is expanded and pushed through [`RunSpec::from_text`], so a bad
    /// combination is reported here, not miles into a run.
    ///
    /// # Errors
    ///
    /// [`SpecError::Parse`] with the offending line for malformed axis
    /// syntax, [`SpecError::Field`] for a cell whose substituted spec does
    /// not validate, plus everything the template itself can raise.
    pub fn from_text(text: &str) -> Result<Self, SpecError> {
        let mut template_lines: Vec<String> = Vec::new();
        let mut axes: Vec<SweepAxis> = Vec::new();
        let mut header_seen = false;
        let mut sweep_seen = false;
        let mut in_sweep = false;
        for (index, raw) in text.lines().enumerate() {
            let line_no = index + 1;
            let significant = strip_comment(raw).trim();
            if !header_seen {
                if significant.is_empty() {
                    template_lines.push(raw.to_string());
                    continue;
                }
                if significant != SWEEP_HEADER {
                    return Err(SpecError::parse(
                        line_no,
                        format!("expected header '{SWEEP_HEADER}', found '{significant}'"),
                    ));
                }
                header_seen = true;
                // The template sees an ordinary spec header on the same
                // line, keeping every later line number accurate.
                template_lines.push(SPEC_HEADER.to_string());
                continue;
            }
            if significant.starts_with('[') && significant.ends_with(']') {
                if significant == "[sweep]" {
                    if sweep_seen {
                        return Err(SpecError::parse(line_no, "duplicate [sweep] section"));
                    }
                    sweep_seen = true;
                    in_sweep = true;
                    // Blank, not removed: line numbers in template errors
                    // must keep pointing at the original file.
                    template_lines.push(String::new());
                    continue;
                }
                in_sweep = false;
                template_lines.push(raw.to_string());
                continue;
            }
            if !in_sweep {
                template_lines.push(raw.to_string());
                continue;
            }
            template_lines.push(String::new());
            if significant.is_empty() {
                continue;
            }
            let Some((field, value)) = significant.split_once('=') else {
                return Err(SpecError::parse(
                    line_no,
                    "expected '<section>.<key> = value | value | ...'",
                ));
            };
            let field = field.trim();
            validate_axis_field(line_no, field)?;
            if axes.iter().any(|axis| axis.field == field) {
                return Err(SpecError::parse(
                    line_no,
                    format!("duplicate sweep axis '{field}'"),
                ));
            }
            let mut values = Vec::new();
            for part in value.split('|') {
                let part = part.trim();
                if part.is_empty() {
                    return Err(SpecError::parse(
                        line_no,
                        format!("axis '{field}' has an empty value"),
                    ));
                }
                if part.chars().any(char::is_control) {
                    return Err(SpecError::parse(
                        line_no,
                        format!("axis '{field}' value contains a control character"),
                    ));
                }
                values.push(part.to_string());
            }
            axes.push(SweepAxis {
                field: field.to_string(),
                values,
            });
        }
        if !header_seen {
            return Err(SpecError::parse(
                1,
                format!("expected header '{SWEEP_HEADER}'"),
            ));
        }
        if axes.is_empty() {
            return Err(SpecError::parse(
                1,
                "a sweep needs a [sweep] section with at least one axis",
            ));
        }
        let template = RunSpec::from_text(&template_lines.join("\n"))?;
        let sweep = SweepSpec { template, axes };
        sweep.expand()?; // every cell must form a valid spec
        Ok(sweep)
    }

    /// The canonical text rendering: sweep header, `[sweep]` axes in
    /// declaration order, then the template's canonical sections.
    /// `from_text(to_text())` reproduces the sweep exactly.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(SWEEP_HEADER);
        out.push_str("\n\n[sweep]\n");
        for axis in &self.axes {
            out.push_str(&format!("{} = {}\n", axis.field, axis.values.join(" | ")));
        }
        let template = self.template.to_text();
        let body = template
            .strip_prefix(SPEC_HEADER)
            .expect("canonical template text starts with the spec header");
        out.push('\n');
        out.push_str(body.trim_start_matches('\n'));
        out
    }

    /// FNV-1a hash of the canonical text — the sweep's identity. Ledgers
    /// record it and refuse rows from a different sweep.
    pub fn content_hash(&self) -> u64 {
        fnv1a64(self.to_text().as_bytes())
    }

    /// Number of cells in the grid (product of the axis lengths).
    pub fn cell_count(&self) -> usize {
        self.axes.iter().map(|axis| axis.values.len()).product()
    }

    /// Expands the full grid in odometer order (last axis fastest). Every
    /// returned cell carries a validated [`RunSpec`].
    ///
    /// # Errors
    ///
    /// [`SpecError::Field`] when the grid exceeds [`MAX_SWEEP_CELLS`] or a
    /// substituted cell does not form a valid spec (the message names the
    /// cell's coordinates).
    pub fn expand(&self) -> Result<Vec<SweepCell>, SpecError> {
        let total = self.cell_count();
        if total > MAX_SWEEP_CELLS {
            return Err(SpecError::field(
                "sweep",
                format!("grid has {total} cells; the cap is {MAX_SWEEP_CELLS}"),
            ));
        }
        let base = self.template.to_text();
        let mut cells = Vec::with_capacity(total);
        for index in 0..total {
            let mut remainder = index;
            let mut coordinates = vec![(String::new(), String::new()); self.axes.len()];
            for (slot, axis) in self.axes.iter().enumerate().rev() {
                let pick = remainder % axis.values.len();
                remainder /= axis.values.len();
                coordinates[slot] = (axis.field.clone(), axis.values[pick].clone());
            }
            let mut text = base.clone();
            for (field, value) in &coordinates {
                text = if field == "optimizer.kind" {
                    patch_optimizer_kind(&text, value)
                } else {
                    patch_field(&text, field, value)
                };
            }
            let spec = RunSpec::from_text(&text).map_err(|err| {
                let where_ = coordinates
                    .iter()
                    .map(|(field, value)| format!("{field}={value}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                SpecError::field(
                    format!("sweep cell {index}"),
                    format!("({where_}) does not form a valid spec: {err}"),
                )
            })?;
            cells.push(SweepCell {
                index,
                coordinates,
                spec,
            });
        }
        Ok(cells)
    }
}

/// Detects a sweep document without parsing it: the first significant
/// (non-blank, non-comment) line is the sweep header. Used by `inspect`-like
/// front-ends to route a file to the right codec.
pub fn is_sweep_text(text: &str) -> bool {
    text.lines()
        .map(|line| strip_comment(line).trim())
        .find(|line| !line.is_empty())
        == Some(SWEEP_HEADER)
}

fn validate_axis_field(line: usize, field: &str) -> Result<(), SpecError> {
    let Some((section, key)) = field.split_once('.') else {
        return Err(SpecError::parse(
            line,
            format!("axis '{field}' must be '<section>.<key>', e.g. 'run.seed'"),
        ));
    };
    if !KNOWN_SECTIONS.contains(&section) {
        return Err(SpecError::parse(
            line,
            format!(
                "axis '{field}' names unknown section '{section}' (known: {})",
                KNOWN_SECTIONS.join(", ")
            ),
        ));
    }
    let key_ok = !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-');
    if !key_ok {
        return Err(SpecError::parse(
            line,
            format!("axis '{field}' has an invalid key '{key}'"),
        ));
    }
    Ok(())
}

/// Substitutes `value` for `<section>.<key>` in canonical spec text:
/// replaces the existing `key = ...` line in that section, inserts one
/// right under the section header, or appends the whole section when the
/// template does not carry it (e.g. `[observe]`).
fn patch_field(text: &str, field: &str, value: &str) -> String {
    let (section, key) = field.split_once('.').expect("axis field is validated");
    let header = format!("[{section}]");
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let Some(start) = lines.iter().position(|line| line.trim() == header) else {
        lines.push(String::new());
        lines.push(header);
        lines.push(format!("{key} = {value}"));
        return lines.join("\n") + "\n";
    };
    let end = lines[start + 1..]
        .iter()
        .position(|line| line.trim_start().starts_with('['))
        .map_or(lines.len(), |offset| start + 1 + offset);
    for line in &mut lines[start + 1..end] {
        if let Some((existing_key, _)) = line.split_once('=') {
            if existing_key.trim() == key {
                *line = format!("{key} = {value}");
                return lines.join("\n") + "\n";
            }
        }
    }
    lines.insert(start + 1, format!("{key} = {value}"));
    lines.join("\n") + "\n"
}

/// The `[optimizer]` keys each kind's parser accepts, in canonical order.
/// Returns `None` for a kind this table does not know, in which case the
/// axis falls back to plain substitution and the spec parser reports the
/// unknown kind with the cell's coordinates.
fn optimizer_keys(kind: &str) -> Option<&'static [&'static str]> {
    match kind {
        "nsga2" => Some(&[
            "population",
            "crossover_probability",
            "eta_crossover",
            "mutation_probability",
            "eta_mutation",
            "backend",
        ]),
        "moead" => Some(&[
            "population",
            "neighborhood",
            "eta_crossover",
            "eta_mutation",
            "mutation_probability",
            "backend",
        ]),
        "archipelago" => Some(&[
            "islands",
            "population",
            "crossover_probability",
            "eta_crossover",
            "mutation_probability",
            "eta_mutation",
            "backend",
            "migration_interval",
            "migration_probability",
            "topology",
        ]),
        _ => None,
    }
}

/// Applies an `optimizer.kind` axis value: rebuilds the `[optimizer]`
/// section as `kind = <value>` followed by the existing keys the target
/// kind accepts, in their existing order. Keys the target kind does not
/// understand are dropped — the cell base is the template's *canonical*
/// text, which spells out every kind-specific default, so keeping them
/// would make every cross-kind cell fail validation.
fn patch_optimizer_kind(text: &str, value: &str) -> String {
    let Some(keep) = optimizer_keys(value) else {
        return patch_field(text, "optimizer.kind", value);
    };
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let Some(start) = lines.iter().position(|line| line.trim() == "[optimizer]") else {
        return patch_field(text, "optimizer.kind", value);
    };
    let end = lines[start + 1..]
        .iter()
        .position(|line| line.trim_start().starts_with('['))
        .map_or(lines.len(), |offset| start + 1 + offset);
    let mut section = vec![format!("kind = {value}")];
    for line in &lines[start + 1..end] {
        if let Some((key, _)) = line.split_once('=') {
            let key = key.trim();
            if key != "kind" && keep.contains(&key) {
                section.push(line.clone());
            }
        }
    }
    section.push(String::new());
    lines.splice(start + 1..end, section);
    lines.join("\n") + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    const SWEEP: &str = "\
pathway-sweep v1

# method x scenario x seed
[sweep]
problem.name = schaffer | zdt1
run.seed = 1 | 2 | 3

[problem]
name = schaffer

[optimizer]
kind = nsga2
population = 16

[run]
seed = 1
checkpoint_every = 2

[stop]
max_generations = 6
";

    #[test]
    fn parses_axes_and_template() {
        let sweep = SweepSpec::from_text(SWEEP).unwrap();
        assert_eq!(sweep.axes.len(), 2);
        assert_eq!(sweep.axes[0].field, "problem.name");
        assert_eq!(sweep.axes[0].values, vec!["schaffer", "zdt1"]);
        assert_eq!(sweep.axes[1].values, vec!["1", "2", "3"]);
        assert_eq!(sweep.cell_count(), 6);
        assert_eq!(sweep.template.problem.name, "schaffer");
        assert_eq!(sweep.template.checkpoint_every, 2);
    }

    #[test]
    fn expansion_is_odometer_ordered_last_axis_fastest() {
        let sweep = SweepSpec::from_text(SWEEP).unwrap();
        let cells = sweep.expand().unwrap();
        assert_eq!(cells.len(), 6);
        let coords: Vec<String> = cells.iter().map(SweepCell::coordinates_string).collect();
        assert_eq!(coords[0], "problem.name=schaffer run.seed=1");
        assert_eq!(coords[1], "problem.name=schaffer run.seed=2");
        assert_eq!(coords[3], "problem.name=zdt1 run.seed=1");
        assert_eq!(cells[4].spec.problem.name, "zdt1");
        assert_eq!(cells[4].spec.seed, 2);
        assert_eq!(cells[2].label(), "cell-0002");
    }

    #[test]
    fn cell_specs_differ_only_in_the_substituted_fields() {
        let sweep = SweepSpec::from_text(SWEEP).unwrap();
        let cells = sweep.expand().unwrap();
        for cell in &cells {
            assert_eq!(cell.spec.checkpoint_every, 2);
            assert_eq!(cell.spec.stopping.max_generations, 6);
        }
        let hashes: std::collections::BTreeSet<u64> =
            cells.iter().map(|cell| cell.spec.content_hash()).collect();
        assert_eq!(hashes.len(), cells.len(), "cells must have distinct hashes");
    }

    #[test]
    fn round_trips_through_canonical_text() {
        let sweep = SweepSpec::from_text(SWEEP).unwrap();
        let reparsed = SweepSpec::from_text(&sweep.to_text()).unwrap();
        assert_eq!(sweep, reparsed);
        assert_eq!(sweep.content_hash(), reparsed.content_hash());
        // Canonical text is a fixed point.
        assert_eq!(sweep.to_text(), reparsed.to_text());
    }

    #[test]
    fn patching_inserts_missing_keys_and_sections() {
        let sweep = SweepSpec::from_text(
            "pathway-sweep v1\n\n[sweep]\nobserve.log_every = 1 | 2\n\n\
             [problem]\nname = schaffer\n\n[optimizer]\nkind = nsga2\n\n\
             [run]\nseed = 7\n\n[stop]\nmax_generations = 4\n",
        )
        .unwrap();
        let cells = sweep.expand().unwrap();
        assert_eq!(cells[0].spec.log_every, Some(1));
        assert_eq!(cells[1].spec.log_every, Some(2));
    }

    #[test]
    fn detects_sweep_documents() {
        assert!(is_sweep_text(SWEEP));
        assert!(is_sweep_text("\n# comment\npathway-sweep v1\n"));
        assert!(!is_sweep_text("pathway-spec v1\n"));
        assert!(!is_sweep_text(""));
    }

    #[test]
    fn rejects_malformed_sweeps() {
        // Wrong header.
        assert!(SweepSpec::from_text("pathway-spec v1\n[sweep]\nrun.seed = 1\n").is_err());
        // No axes at all.
        let err = SweepSpec::from_text(
            "pathway-sweep v1\n[problem]\nname = schaffer\n\
             [optimizer]\nkind = nsga2\n[stop]\nmax_generations = 4\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("at least one axis"), "{err}");
        // Duplicate axis.
        let err = SweepSpec::from_text(
            "pathway-sweep v1\n[sweep]\nrun.seed = 1 | 2\nrun.seed = 3\n\
             [problem]\nname = schaffer\n[optimizer]\nkind = nsga2\n\
             [stop]\nmax_generations = 4\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate sweep axis"), "{err}");
        // Unknown section in an axis field.
        let err = SweepSpec::from_text(
            "pathway-sweep v1\n[sweep]\nbogus.seed = 1\n\
             [problem]\nname = schaffer\n[optimizer]\nkind = nsga2\n\
             [stop]\nmax_generations = 4\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown section"), "{err}");
        // Empty axis value.
        let err = SweepSpec::from_text(
            "pathway-sweep v1\n[sweep]\nrun.seed = 1 | | 3\n\
             [problem]\nname = schaffer\n[optimizer]\nkind = nsga2\n\
             [stop]\nmax_generations = 4\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("empty value"), "{err}");
    }

    #[test]
    fn a_cell_that_fails_validation_names_its_coordinates() {
        // population = 0 fails spec validation; the sweep error must say
        // which cell produced it, not just bubble the field error.
        let err = SweepSpec::from_text(
            "pathway-sweep v1\n\n[sweep]\noptimizer.population = 16 | 0\n\n\
             [problem]\nname = schaffer\n\n[optimizer]\nkind = nsga2\n\n\
             [run]\nseed = 1\n\n[stop]\nmax_generations = 4\n",
        )
        .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("optimizer.population=0"), "{message}");
        assert!(message.contains("sweep cell 1"), "{message}");
    }

    #[test]
    fn a_kind_axis_rebuilds_the_optimizer_section_per_cell() {
        // The template is nsga2 (whose canonical text spells out
        // crossover_probability, which moead rejects); a kind axis must
        // still produce valid cells of every kind, carrying shared keys
        // and dropping kind-specific ones.
        let sweep = SweepSpec::from_text(
            "pathway-sweep v1\n\n[sweep]\noptimizer.kind = nsga2 | moead | archipelago\n\n\
             [problem]\nname = schaffer\n\n\
             [optimizer]\nkind = nsga2\npopulation = 20\ncrossover_probability = 0.8\n\
             backend = serial\n\n\
             [run]\nseed = 1\n\n[stop]\nmax_generations = 4\n",
        )
        .unwrap();
        let cells = sweep.expand().unwrap();
        assert_eq!(cells.len(), 3);
        let kinds: Vec<&str> = cells.iter().map(|c| c.spec.optimizer.kind()).collect();
        assert_eq!(kinds, ["nsga2", "moead", "archipelago"]);
        // Shared keys survive the rebuild in every cell...
        for cell in &cells {
            let text = cell.spec.to_text();
            assert!(text.contains("population = 20"), "{text}");
            assert!(text.contains("backend = serial"), "{text}");
        }
        // ...and the nsga2-only key reaches the kinds that accept it.
        assert!(cells[0]
            .spec
            .to_text()
            .contains("crossover_probability = 0.8"));
        assert!(!cells[1].spec.to_text().contains("crossover_probability"));
        assert!(cells[2]
            .spec
            .to_text()
            .contains("crossover_probability = 0.8"));
    }

    #[test]
    fn an_unknown_kind_value_still_fails_with_coordinates() {
        let err = SweepSpec::from_text(
            "pathway-sweep v1\n\n[sweep]\noptimizer.kind = nsga2 | simplex\n\n\
             [problem]\nname = schaffer\n\n[optimizer]\nkind = nsga2\n\n\
             [run]\nseed = 1\n\n[stop]\nmax_generations = 4\n",
        )
        .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("optimizer.kind=simplex"), "{message}");
    }

    #[test]
    fn refuses_grids_over_the_cell_cap() {
        // 17^4 = 83521 > 4096.
        let axis = (1..=17)
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(" | ");
        let text = format!(
            "pathway-sweep v1\n\n[sweep]\nrun.seed = {axis}\noptimizer.population = {axis}\n\
             optimizer.eta_crossover = {axis}\nstop.max_generations = {axis}\n\n\
             [problem]\nname = schaffer\n\n[optimizer]\nkind = nsga2\n\n\
             [run]\nseed = 1\n\n[stop]\nmax_generations = 4\n"
        );
        let err = SweepSpec::from_text(&text).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn single_value_axes_pin_a_field() {
        let sweep = SweepSpec::from_text(
            "pathway-sweep v1\n\n[sweep]\nrun.seed = 42\n\n\
             [problem]\nname = schaffer\n\n[optimizer]\nkind = nsga2\n\n\
             [run]\nseed = 1\n\n[stop]\nmax_generations = 4\n",
        )
        .unwrap();
        let cells = sweep.expand().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].spec.seed, 42);
    }
}
