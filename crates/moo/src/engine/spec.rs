//! Declarative, serializable run descriptions.
//!
//! A [`RunSpec`] is a *plain-data* description of everything a run needs —
//! problem, optimizer (with full configuration), seed, stopping rules,
//! checkpoint cadence and observer sinks — so a run can be stored in a file,
//! shipped between processes, hashed, diffed and launched without writing
//! Rust code. The workspace is vendored-deps-only, so the spec ships its own
//! small text codec instead of serde: [`RunSpec::to_text`] emits a canonical
//! sectioned key/value document and [`RunSpec::from_text`] parses it back
//! with line- and field-level errors ([`SpecError`]).
//!
//! The codec round-trips exactly: `from_text(to_text(spec)) == spec` for
//! every valid spec (enforced by property tests), and
//! [`RunSpec::content_hash`] — an FNV-1a hash of the canonical text — gives
//! checkpoints a cheap way to detect that a resume was attempted against a
//! *different* spec (see [`crate::engine::CheckpointStore`]).
//!
//! The spec's problem description ([`ProblemSpec`]) is deliberately just a
//! name plus a string parameter map: this crate only knows synthetic
//! benchmarks, while the paper-level problems (leaf design, Geobacter) live
//! downstream. A problem registry (e.g. `pathway-core`'s `AnyProblem`)
//! resolves the description into a live [`MultiObjectiveProblem`].
//!
//! # Example
//!
//! ```
//! use pathway_moo::engine::RunSpec;
//!
//! let text = "\
//! pathway-spec v1
//!
//! [problem]
//! name = zdt1
//! variables = 12
//!
//! [optimizer]
//! kind = archipelago
//! islands = 2
//! population = 40
//! topology = ring
//!
//! [run]
//! seed = 7
//!
//! [stop]
//! max_generations = 30
//! ";
//! let spec = RunSpec::from_text(text).unwrap();
//! assert_eq!(spec.seed, 7);
//! // The canonical rendering round-trips bit for bit.
//! assert_eq!(RunSpec::from_text(&spec.to_text()).unwrap(), spec);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::engine::store::CheckpointRetention;
use crate::engine::telemetry::MetricsRegistry;
use crate::engine::{EngineError, Optimizer, OptimizerState, StoppingRule};
use crate::exec::Executor;
use crate::{
    Archipelago, ArchipelagoConfig, EvalBackend, Individual, MigrationTopology, Moead, MoeadConfig,
    MultiObjectiveProblem, Nsga2, Nsga2Config,
};

/// The header line every spec document starts with.
pub const SPEC_HEADER: &str = "pathway-spec v1";

/// 64-bit FNV-1a hash, used for spec content hashes and checkpoint
/// checksums. Stable across platforms and releases — it is part of the
/// persisted checkpoint format.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Error raised while parsing, validating or resolving a [`RunSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The text could not be parsed. `line` is 1-based.
    Parse {
        /// 1-based line number the error was detected on.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A structurally valid spec carries an unusable value, or the problem
    /// description could not be resolved by the registry.
    Field {
        /// Dotted path of the offending field, e.g. `optimizer.population`.
        field: String,
        /// What is wrong with it.
        message: String,
    },
}

impl SpecError {
    pub(crate) fn parse(line: usize, message: impl Into<String>) -> Self {
        SpecError::Parse {
            line,
            message: message.into(),
        }
    }

    /// Convenience constructor for field-level errors (used by problem
    /// registries resolving a [`ProblemSpec`] as well as by validation).
    pub fn field(field: impl Into<String>, message: impl Into<String>) -> Self {
        SpecError::Field {
            field: field.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse { line, message } => write!(f, "spec line {line}: {message}"),
            SpecError::Field { field, message } => write!(f, "spec field {field}: {message}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// A problem description: a registry name plus string-valued parameters.
///
/// The spec layer treats problems as opaque data; a downstream registry
/// turns the name/params into a live [`MultiObjectiveProblem`] and reports
/// unknown names or bad parameters as [`SpecError::Field`] errors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProblemSpec {
    /// Registry name, e.g. `leaf-design`, `geobacter`, `zdt1`.
    pub name: String,
    /// Problem parameters, canonically ordered by key. Values are kept as
    /// strings so registries can parse them however they like.
    pub params: BTreeMap<String, String>,
}

impl ProblemSpec {
    /// Creates a parameterless problem description.
    pub fn named(name: impl Into<String>) -> Self {
        ProblemSpec {
            name: name.into(),
            params: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a parameter.
    #[must_use]
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.insert(key.into(), value.into());
        self
    }

    /// Looks up a parameter and parses it with `FromStr`, reporting failures
    /// as field-level errors under `problem.<key>`. Returns `Ok(None)` when
    /// the parameter is absent.
    pub fn parsed_param<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, SpecError> {
        match self.params.get(key) {
            None => Ok(None),
            Some(raw) => raw.parse::<T>().map(Some).map_err(|_| {
                SpecError::field(format!("problem.{key}"), format!("invalid value '{raw}'"))
            }),
        }
    }
}

/// NSGA-II settings carried by a spec (the serializable face of
/// [`Nsga2Config`]; the generation budget lives in [`StoppingSpec`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Nsga2Spec {
    /// Individuals kept each generation.
    pub population: usize,
    /// Probability of applying SBX crossover to a mating pair.
    pub crossover_probability: f64,
    /// SBX distribution index (η_c).
    pub eta_crossover: f64,
    /// Per-gene mutation probability; `None` (spelled `auto` in text form)
    /// uses the `1/n` convention.
    pub mutation_probability: Option<f64>,
    /// Polynomial-mutation distribution index (η_m).
    pub eta_mutation: f64,
    /// How offspring batches are evaluated.
    pub backend: EvalBackend,
}

impl Default for Nsga2Spec {
    fn default() -> Self {
        let config = Nsga2Config::default();
        Nsga2Spec {
            population: config.population_size,
            crossover_probability: config.crossover_probability,
            eta_crossover: config.eta_crossover,
            mutation_probability: config.mutation_probability,
            eta_mutation: config.eta_mutation,
            backend: config.backend,
        }
    }
}

impl Nsga2Spec {
    /// The equivalent algorithm configuration, with the given generation
    /// budget filled in.
    pub fn config(&self, generations: usize) -> Nsga2Config {
        Nsga2Config {
            population_size: self.population,
            generations,
            crossover_probability: self.crossover_probability,
            eta_crossover: self.eta_crossover,
            mutation_probability: self.mutation_probability,
            eta_mutation: self.eta_mutation,
            backend: self.backend,
        }
    }
}

/// MOEA/D settings carried by a spec (the serializable face of
/// [`MoeadConfig`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MoeadSpec {
    /// Number of sub-problems (= population size).
    pub population: usize,
    /// Neighbourhood size.
    pub neighborhood: usize,
    /// SBX distribution index.
    pub eta_crossover: f64,
    /// Polynomial-mutation distribution index.
    pub eta_mutation: f64,
    /// Per-gene mutation probability; `None` uses `1/n`.
    pub mutation_probability: Option<f64>,
    /// Backend used for the initial population batch.
    pub backend: EvalBackend,
}

impl Default for MoeadSpec {
    fn default() -> Self {
        let config = MoeadConfig::default();
        MoeadSpec {
            population: config.population_size,
            neighborhood: config.neighborhood_size,
            eta_crossover: config.eta_crossover,
            eta_mutation: config.eta_mutation,
            mutation_probability: config.mutation_probability,
            backend: config.backend,
        }
    }
}

impl MoeadSpec {
    /// The equivalent algorithm configuration, with the given generation
    /// budget filled in.
    pub fn config(&self, generations: usize) -> MoeadConfig {
        MoeadConfig {
            population_size: self.population,
            generations,
            neighborhood_size: self.neighborhood,
            eta_crossover: self.eta_crossover,
            eta_mutation: self.eta_mutation,
            mutation_probability: self.mutation_probability,
            backend: self.backend,
        }
    }
}

/// Archipelago (PMO2) settings carried by a spec: the island NSGA-II
/// settings plus the migration knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchipelagoSpec {
    /// Number of islands.
    pub islands: usize,
    /// Per-island NSGA-II settings.
    pub island: Nsga2Spec,
    /// Generations between migration events.
    pub migration_interval: usize,
    /// Probability an island participates in a migration event.
    pub migration_probability: f64,
    /// Migration topology.
    pub topology: MigrationTopology,
}

impl Default for ArchipelagoSpec {
    fn default() -> Self {
        let config = ArchipelagoConfig::default();
        ArchipelagoSpec {
            islands: config.islands,
            island: Nsga2Spec::default(),
            migration_interval: config.migration_interval,
            migration_probability: config.migration_probability,
            topology: config.topology,
        }
    }
}

impl ArchipelagoSpec {
    /// The equivalent algorithm configuration, with the given generation
    /// budget filled in.
    pub fn config(&self, generations: usize) -> ArchipelagoConfig {
        ArchipelagoConfig {
            islands: self.islands,
            island_config: self.island.config(generations),
            migration_interval: self.migration_interval,
            migration_probability: self.migration_probability,
            topology: self.topology,
        }
    }
}

/// Which optimizer a spec runs, with its full configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizerSpec {
    /// A single NSGA-II population.
    Nsga2(Nsga2Spec),
    /// MOEA/D with Tchebycheff decomposition.
    Moead(MoeadSpec),
    /// The PMO2 archipelago of NSGA-II islands.
    Archipelago(ArchipelagoSpec),
}

impl Default for OptimizerSpec {
    /// The paper's default algorithm: the archipelago.
    fn default() -> Self {
        OptimizerSpec::Archipelago(ArchipelagoSpec::default())
    }
}

impl OptimizerSpec {
    /// Spec-text name of the optimizer kind.
    pub fn kind(&self) -> &'static str {
        match self {
            OptimizerSpec::Nsga2(_) => "nsga2",
            OptimizerSpec::Moead(_) => "moead",
            OptimizerSpec::Archipelago(_) => "archipelago",
        }
    }

    /// The evaluation backend this optimizer description carries (for the
    /// archipelago: the per-island backend). Spec-driven launchers use this
    /// to build one [`Executor`] for a whole run.
    pub fn backend(&self) -> EvalBackend {
        match self {
            OptimizerSpec::Nsga2(spec) => spec.backend,
            OptimizerSpec::Moead(spec) => spec.backend,
            OptimizerSpec::Archipelago(spec) => spec.island.backend,
        }
    }

    /// Builds a fresh optimizer from this description.
    ///
    /// `generations` fills the config's (engine-ignored, but kept coherent)
    /// generation field; the driver's stopping rule is what actually bounds
    /// the run.
    pub fn build(&self, seed: u64, generations: usize) -> AnyOptimizer {
        match self {
            OptimizerSpec::Nsga2(spec) => {
                AnyOptimizer::Nsga2(Box::new(Nsga2::new(spec.config(generations), seed)))
            }
            OptimizerSpec::Moead(spec) => {
                AnyOptimizer::Moead(Box::new(Moead::new(spec.config(generations), seed)))
            }
            OptimizerSpec::Archipelago(spec) => AnyOptimizer::Archipelago(Box::new(
                Archipelago::new(spec.config(generations), seed),
            )),
        }
    }
}

/// Stopping rules in serializable form. `max_generations` is mandatory so
/// every spec-described run is budget-bounded by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct StoppingSpec {
    /// Hard generation budget.
    pub max_generations: usize,
    /// Optional evaluation budget.
    pub max_evaluations: Option<usize>,
    /// Optional hypervolume-stagnation rule as `(window, epsilon)`.
    pub stagnation: Option<(usize, f64)>,
}

impl Default for StoppingSpec {
    fn default() -> Self {
        StoppingSpec {
            max_generations: 250,
            max_evaluations: None,
            stagnation: None,
        }
    }
}

impl StoppingSpec {
    /// The composed engine stopping rule.
    pub fn rule(&self) -> StoppingRule {
        let mut rules = vec![StoppingRule::MaxGenerations(self.max_generations)];
        if let Some(budget) = self.max_evaluations {
            rules.push(StoppingRule::MaxEvaluations(budget));
        }
        if let Some((window, epsilon)) = self.stagnation {
            rules.push(StoppingRule::HypervolumeStagnation { window, epsilon });
        }
        if rules.len() == 1 {
            rules.pop().expect("one rule")
        } else {
            StoppingRule::any_of(rules)
        }
    }
}

/// A complete, serializable run description.
///
/// See the `pathway_moo::engine` spec documentation for the text format and the
/// round-trip / hashing guarantees.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunSpec {
    /// What to optimize.
    pub problem: ProblemSpec,
    /// Which algorithm to run, fully configured.
    pub optimizer: OptimizerSpec,
    /// Seed for the run's RNG streams.
    pub seed: u64,
    /// Write a durable checkpoint every this many generations; `0` means
    /// only at the end of the run. Consumed by the `pathway` CLI.
    pub checkpoint_every: usize,
    /// Which checkpoints to keep on disk (`checkpoint_keep_last` /
    /// `checkpoint_keep_every` in text form); `None` keeps all of them.
    /// Consumed by [`crate::engine::CheckpointStore`].
    pub retention: Option<CheckpointRetention>,
    /// Fixed hypervolume reference point; `None` derives one from the first
    /// generation's front.
    pub reference_point: Option<Vec<f64>>,
    /// When to stop.
    pub stopping: StoppingSpec,
    /// Log a progress line every this many generations (`None` = quiet).
    pub log_every: Option<usize>,
}

impl RunSpec {
    /// The composed engine stopping rule for this run.
    pub fn stopping_rule(&self) -> StoppingRule {
        self.stopping.rule()
    }

    /// Builds a fresh optimizer for this run.
    pub fn build_optimizer(&self) -> AnyOptimizer {
        self.optimizer
            .build(self.seed, self.stopping.max_generations)
    }

    /// FNV-1a hash of the canonical text rendering. Two specs have equal
    /// hashes iff their canonical forms are byte-identical, which is what
    /// checkpoint resume uses to reject a divergent spec.
    pub fn content_hash(&self) -> u64 {
        fnv1a64(self.to_text().as_bytes())
    }

    /// Semantic validation beyond what parsing enforces. `to_text` output of
    /// a validated spec always re-parses.
    ///
    /// # Errors
    ///
    /// Returns the first offending field as a [`SpecError::Field`].
    pub fn validate(&self) -> Result<(), SpecError> {
        validate_token("problem.name", &self.problem.name)?;
        for (key, value) in &self.problem.params {
            validate_token(&format!("problem.{key}"), key)?;
            // 'name' is the problem's own key in the text form; a param by
            // that name would render as a duplicate 'name =' line that no
            // parser accepts.
            if key == "name" {
                return Err(SpecError::field(
                    "problem.name",
                    "'name' is reserved for the problem name and cannot be a parameter",
                ));
            }
            // '#' starts a comment in the text form, so a value containing
            // one would re-parse truncated — silently changing the spec and
            // its content hash.
            if value.chars().any(|c| c.is_control()) || value.contains('#') || value != value.trim()
            {
                return Err(SpecError::field(
                    format!("problem.{key}"),
                    "parameter values must be single-line, trimmed and free of '#'",
                ));
            }
        }
        match &self.optimizer {
            OptimizerSpec::Nsga2(spec) => validate_nsga2("optimizer", spec)?,
            OptimizerSpec::Moead(spec) => {
                validate_count("optimizer.population", spec.population)?;
                validate_probability(
                    "optimizer.mutation_probability",
                    spec.mutation_probability.unwrap_or(0.0),
                )?;
                validate_positive("optimizer.eta_crossover", spec.eta_crossover)?;
                validate_positive("optimizer.eta_mutation", spec.eta_mutation)?;
                validate_count("optimizer.neighborhood", spec.neighborhood)?;
            }
            OptimizerSpec::Archipelago(spec) => {
                validate_count("optimizer.islands", spec.islands)?;
                validate_count("optimizer.migration_interval", spec.migration_interval)?;
                validate_probability(
                    "optimizer.migration_probability",
                    spec.migration_probability,
                )?;
                validate_nsga2("optimizer", &spec.island)?;
            }
        }
        if let Some(reference) = &self.reference_point {
            if reference.is_empty() || reference.iter().any(|v| !v.is_finite()) {
                return Err(SpecError::field(
                    "run.reference_point",
                    "must be a non-empty list of finite numbers",
                ));
            }
        }
        validate_count("stop.max_generations", self.stopping.max_generations)?;
        if let Some((window, epsilon)) = self.stopping.stagnation {
            validate_count("stop.stagnation_window", window)?;
            if !epsilon.is_finite() {
                return Err(SpecError::field(
                    "stop.stagnation_epsilon",
                    "must be finite",
                ));
            }
        }
        if let Some(retention) = &self.retention {
            validate_count("run.checkpoint_keep_last", retention.keep_last)?;
        }
        if let Some(every) = self.log_every {
            validate_count("observe.log_every", every)?;
        }
        Ok(())
    }

    /// Renders the canonical text form. Parsing it back yields an equal
    /// spec; hashing it yields [`RunSpec::content_hash`].
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(SPEC_HEADER);
        out.push_str("\n\n[problem]\n");
        push_kv(&mut out, "name", &self.problem.name);
        for (key, value) in &self.problem.params {
            push_kv(&mut out, key, value);
        }

        out.push_str("\n[optimizer]\n");
        push_kv(&mut out, "kind", self.optimizer.kind());
        match &self.optimizer {
            OptimizerSpec::Nsga2(spec) => push_nsga2(&mut out, spec),
            OptimizerSpec::Moead(spec) => {
                push_kv(&mut out, "population", &spec.population.to_string());
                push_kv(&mut out, "neighborhood", &spec.neighborhood.to_string());
                push_kv(&mut out, "eta_crossover", &spec.eta_crossover.to_string());
                push_kv(&mut out, "eta_mutation", &spec.eta_mutation.to_string());
                push_kv(
                    &mut out,
                    "mutation_probability",
                    &render_auto(spec.mutation_probability),
                );
                push_kv(&mut out, "backend", &render_backend(spec.backend));
            }
            OptimizerSpec::Archipelago(spec) => {
                push_kv(&mut out, "islands", &spec.islands.to_string());
                push_nsga2(&mut out, &spec.island);
                push_kv(
                    &mut out,
                    "migration_interval",
                    &spec.migration_interval.to_string(),
                );
                push_kv(
                    &mut out,
                    "migration_probability",
                    &spec.migration_probability.to_string(),
                );
                push_kv(&mut out, "topology", render_topology(spec.topology));
            }
        }

        out.push_str("\n[run]\n");
        push_kv(&mut out, "seed", &self.seed.to_string());
        push_kv(
            &mut out,
            "checkpoint_every",
            &self.checkpoint_every.to_string(),
        );
        if let Some(retention) = &self.retention {
            push_kv(
                &mut out,
                "checkpoint_keep_last",
                &retention.keep_last.to_string(),
            );
            if retention.keep_every > 0 {
                push_kv(
                    &mut out,
                    "checkpoint_keep_every",
                    &retention.keep_every.to_string(),
                );
            }
        }
        if let Some(reference) = &self.reference_point {
            let joined = reference
                .iter()
                .map(f64::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            push_kv(&mut out, "reference_point", &joined);
        }

        out.push_str("\n[stop]\n");
        push_kv(
            &mut out,
            "max_generations",
            &self.stopping.max_generations.to_string(),
        );
        if let Some(budget) = self.stopping.max_evaluations {
            push_kv(&mut out, "max_evaluations", &budget.to_string());
        }
        if let Some((window, epsilon)) = self.stopping.stagnation {
            push_kv(&mut out, "stagnation_window", &window.to_string());
            push_kv(&mut out, "stagnation_epsilon", &epsilon.to_string());
        }

        if let Some(every) = self.log_every {
            out.push_str("\n[observe]\n");
            push_kv(&mut out, "log_every", &every.to_string());
        }
        out
    }

    /// Parses a spec document.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError::Parse`] with the 1-based line number for
    /// syntax problems, unknown sections/keys, duplicate keys and malformed
    /// values, or a [`SpecError::Field`] when the parsed spec fails
    /// [`RunSpec::validate`].
    pub fn from_text(text: &str) -> Result<Self, SpecError> {
        let document = Document::parse(text)?;
        let spec = interpret(&document)?;
        spec.validate()?;
        Ok(spec)
    }
}

fn validate_nsga2(prefix: &str, spec: &Nsga2Spec) -> Result<(), SpecError> {
    validate_count(&format!("{prefix}.population"), spec.population)?;
    validate_probability(
        &format!("{prefix}.crossover_probability"),
        spec.crossover_probability,
    )?;
    validate_probability(
        &format!("{prefix}.mutation_probability"),
        spec.mutation_probability.unwrap_or(0.0),
    )?;
    validate_positive(&format!("{prefix}.eta_crossover"), spec.eta_crossover)?;
    validate_positive(&format!("{prefix}.eta_mutation"), spec.eta_mutation)
}

fn validate_token(field: &str, value: &str) -> Result<(), SpecError> {
    let valid = !value.is_empty()
        && value
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_');
    if valid {
        Ok(())
    } else {
        Err(SpecError::field(
            field,
            format!("'{value}' is not a lowercase [a-z0-9_-] token"),
        ))
    }
}

fn validate_count(field: &str, value: usize) -> Result<(), SpecError> {
    if value == 0 {
        Err(SpecError::field(field, "must be at least 1"))
    } else {
        Ok(())
    }
}

fn validate_probability(field: &str, value: f64) -> Result<(), SpecError> {
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(SpecError::field(field, "must be a probability in [0, 1]"))
    }
}

fn validate_positive(field: &str, value: f64) -> Result<(), SpecError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(SpecError::field(field, "must be a positive finite number"))
    }
}

fn push_kv(out: &mut String, key: &str, value: &str) {
    out.push_str(key);
    out.push_str(" = ");
    out.push_str(value);
    out.push('\n');
}

fn push_nsga2(out: &mut String, spec: &Nsga2Spec) {
    push_kv(out, "population", &spec.population.to_string());
    push_kv(
        out,
        "crossover_probability",
        &spec.crossover_probability.to_string(),
    );
    push_kv(out, "eta_crossover", &spec.eta_crossover.to_string());
    push_kv(
        out,
        "mutation_probability",
        &render_auto(spec.mutation_probability),
    );
    push_kv(out, "eta_mutation", &spec.eta_mutation.to_string());
    push_kv(out, "backend", &render_backend(spec.backend));
}

fn render_auto(value: Option<f64>) -> String {
    match value {
        None => "auto".to_string(),
        Some(v) => v.to_string(),
    }
}

fn render_backend(backend: EvalBackend) -> String {
    match backend {
        EvalBackend::Serial => "serial".to_string(),
        EvalBackend::Threads(n) => format!("threads:{n}"),
    }
}

fn render_topology(topology: MigrationTopology) -> &'static str {
    match topology {
        MigrationTopology::Broadcast => "broadcast",
        MigrationTopology::Ring => "ring",
        MigrationTopology::Isolated => "isolated",
    }
}

/// One parsed `key = value` line.
struct Entry {
    line: usize,
    key: String,
    value: String,
}

/// The raw sectioned document: section name → entries, in file order.
struct Document {
    sections: Vec<(String, Vec<Entry>)>,
}

pub(crate) const KNOWN_SECTIONS: [&str; 5] = ["problem", "optimizer", "run", "stop", "observe"];

impl Document {
    fn parse(text: &str) -> Result<Self, SpecError> {
        let mut lines = text.lines().enumerate();
        // The first significant line must be the header.
        let mut header_seen = false;
        let mut sections: Vec<(String, Vec<Entry>)> = Vec::new();
        let mut current: Option<usize> = None;
        for (index, raw) in &mut lines {
            let line_no = index + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if !header_seen {
                if line != SPEC_HEADER {
                    return Err(SpecError::parse(
                        line_no,
                        format!("expected header '{SPEC_HEADER}', found '{line}'"),
                    ));
                }
                header_seen = true;
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let Some(name) = name.strip_suffix(']') else {
                    return Err(SpecError::parse(line_no, "unterminated section header"));
                };
                let name = name.trim();
                if !KNOWN_SECTIONS.contains(&name) {
                    return Err(SpecError::parse(
                        line_no,
                        format!(
                            "unknown section '[{name}]' (expected one of [problem], \
                             [optimizer], [run], [stop], [observe])"
                        ),
                    ));
                }
                if sections.iter().any(|(existing, _)| existing == name) {
                    return Err(SpecError::parse(
                        line_no,
                        format!("duplicate section '[{name}]'"),
                    ));
                }
                sections.push((name.to_string(), Vec::new()));
                current = Some(sections.len() - 1);
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(SpecError::parse(
                    line_no,
                    format!("expected 'key = value', found '{line}'"),
                ));
            };
            let key = key.trim().to_string();
            let value = value.trim().to_string();
            if key.is_empty() {
                return Err(SpecError::parse(line_no, "empty key"));
            }
            let Some(section) = current else {
                return Err(SpecError::parse(
                    line_no,
                    format!("key '{key}' appears before any [section]"),
                ));
            };
            let entries = &mut sections[section].1;
            if entries.iter().any(|entry| entry.key == key) {
                return Err(SpecError::parse(
                    line_no,
                    format!("duplicate key '{key}' in [{}]", sections[section].0),
                ));
            }
            sections[section].1.push(Entry {
                line: line_no,
                key,
                value,
            });
        }
        if !header_seen {
            return Err(SpecError::parse(
                1,
                format!("missing header '{SPEC_HEADER}'"),
            ));
        }
        Ok(Document { sections })
    }

    fn section(&self, name: &str) -> Option<&[Entry]> {
        self.sections
            .iter()
            .find(|(section, _)| section == name)
            .map(|(_, entries)| entries.as_slice())
    }
}

pub(crate) fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(at) => &line[..at],
        None => line,
    }
}

/// Typed accessor over one section's entries that tracks which keys were
/// consumed, so leftovers can be reported as unknown keys with their line.
struct Section<'d> {
    name: &'static str,
    entries: &'d [Entry],
    consumed: Vec<bool>,
}

impl<'d> Section<'d> {
    fn new(name: &'static str, entries: &'d [Entry]) -> Self {
        Section {
            name,
            entries,
            consumed: vec![false; entries.len()],
        }
    }

    fn take(&mut self, key: &str) -> Option<&'d Entry> {
        for (index, entry) in self.entries.iter().enumerate() {
            if entry.key == key {
                self.consumed[index] = true;
                return Some(entry);
            }
        }
        None
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, key: &str) -> Result<Option<T>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(entry) => entry.value.parse::<T>().map(Some).map_err(|_| {
                SpecError::parse(
                    entry.line,
                    format!("invalid value '{}' for '{key}'", entry.value),
                )
            }),
        }
    }

    fn finish(self) -> Result<(), SpecError> {
        for (entry, consumed) in self.entries.iter().zip(&self.consumed) {
            if !consumed {
                return Err(SpecError::parse(
                    entry.line,
                    format!("unknown key '{}' in [{}]", entry.key, self.name),
                ));
            }
        }
        Ok(())
    }
}

fn interpret(document: &Document) -> Result<RunSpec, SpecError> {
    // [problem]
    let entries = document
        .section("problem")
        .ok_or_else(|| SpecError::parse(1, "missing [problem] section"))?;
    let mut problem = ProblemSpec::default();
    for entry in entries {
        if entry.key == "name" {
            problem.name = entry.value.clone();
        } else {
            problem
                .params
                .insert(entry.key.clone(), entry.value.clone());
        }
    }
    if problem.name.is_empty() {
        return Err(SpecError::parse(
            entries.first().map_or(1, |e| e.line),
            "[problem] must set 'name'",
        ));
    }

    // [optimizer]
    let entries = document
        .section("optimizer")
        .ok_or_else(|| SpecError::parse(1, "missing [optimizer] section"))?;
    let mut section = Section::new("optimizer", entries);
    let kind = section.take("kind").ok_or_else(|| {
        SpecError::parse(
            entries.first().map_or(1, |e| e.line),
            "[optimizer] must set 'kind'",
        )
    })?;
    let optimizer = match kind.value.as_str() {
        "nsga2" => OptimizerSpec::Nsga2(take_nsga2(&mut section)?),
        "moead" => {
            let mut spec = MoeadSpec::default();
            if let Some(v) = section.take_parsed("population")? {
                spec.population = v;
            }
            if let Some(v) = section.take_parsed("neighborhood")? {
                spec.neighborhood = v;
            }
            if let Some(v) = section.take_parsed("eta_crossover")? {
                spec.eta_crossover = v;
            }
            if let Some(v) = section.take_parsed("eta_mutation")? {
                spec.eta_mutation = v;
            }
            if let Some(entry) = section.take("mutation_probability") {
                spec.mutation_probability = parse_auto(entry)?;
            }
            if let Some(entry) = section.take("backend") {
                spec.backend = parse_backend(entry)?;
            }
            OptimizerSpec::Moead(spec)
        }
        "archipelago" => {
            let mut spec = ArchipelagoSpec::default();
            if let Some(v) = section.take_parsed("islands")? {
                spec.islands = v;
            }
            spec.island = take_nsga2(&mut section)?;
            if let Some(v) = section.take_parsed("migration_interval")? {
                spec.migration_interval = v;
            }
            if let Some(v) = section.take_parsed("migration_probability")? {
                spec.migration_probability = v;
            }
            if let Some(entry) = section.take("topology") {
                spec.topology = match entry.value.as_str() {
                    "broadcast" => MigrationTopology::Broadcast,
                    "ring" => MigrationTopology::Ring,
                    "isolated" => MigrationTopology::Isolated,
                    other => {
                        return Err(SpecError::parse(
                            entry.line,
                            format!(
                                "unknown topology '{other}' (expected broadcast, ring or isolated)"
                            ),
                        ))
                    }
                };
            }
            OptimizerSpec::Archipelago(spec)
        }
        other => {
            return Err(SpecError::parse(
                kind.line,
                format!("unknown optimizer kind '{other}' (expected nsga2, moead or archipelago)"),
            ))
        }
    };
    section.finish()?;

    // [run]
    let mut seed = 0u64;
    let mut checkpoint_every = 0usize;
    let mut retention = None;
    let mut reference_point = None;
    if let Some(entries) = document.section("run") {
        let mut section = Section::new("run", entries);
        if let Some(v) = section.take_parsed("seed")? {
            seed = v;
        }
        if let Some(v) = section.take_parsed("checkpoint_every")? {
            checkpoint_every = v;
        }
        let keep_last: Option<usize> = section.take_parsed("checkpoint_keep_last")?;
        let keep_every_line = section.take("checkpoint_keep_every").map(|e| e.line);
        let keep_every: Option<usize> = section.take_parsed("checkpoint_keep_every")?;
        retention = match (keep_last, keep_every) {
            (Some(keep_last), keep_every) => Some(CheckpointRetention {
                keep_last,
                keep_every: keep_every.unwrap_or(0),
            }),
            (None, None) => None,
            (None, Some(_)) => {
                return Err(SpecError::parse(
                    keep_every_line.expect("the key was just taken"),
                    "checkpoint_keep_every requires checkpoint_keep_last",
                ))
            }
        };
        if let Some(entry) = section.take("reference_point") {
            let mut values = Vec::new();
            for part in entry.value.split(',') {
                let value: f64 = part.trim().parse().map_err(|_| {
                    SpecError::parse(
                        entry.line,
                        format!("invalid reference point component '{}'", part.trim()),
                    )
                })?;
                values.push(value);
            }
            reference_point = Some(values);
        }
        section.finish()?;
    }

    // [stop]
    let mut stopping = StoppingSpec::default();
    if let Some(entries) = document.section("stop") {
        let mut section = Section::new("stop", entries);
        if let Some(v) = section.take_parsed("max_generations")? {
            stopping.max_generations = v;
        }
        stopping.max_evaluations = section.take_parsed("max_evaluations")?;
        let window: Option<usize> = section.take_parsed("stagnation_window")?;
        let epsilon: Option<f64> = section.take_parsed("stagnation_epsilon")?;
        stopping.stagnation = match (window, epsilon) {
            (Some(window), Some(epsilon)) => Some((window, epsilon)),
            (None, None) => None,
            _ => {
                return Err(SpecError::parse(
                    entries.first().map_or(1, |e| e.line),
                    "stagnation_window and stagnation_epsilon must be set together",
                ))
            }
        };
        section.finish()?;
    }

    // [observe]
    let mut log_every = None;
    if let Some(entries) = document.section("observe") {
        let mut section = Section::new("observe", entries);
        log_every = section.take_parsed("log_every")?;
        section.finish()?;
    }

    Ok(RunSpec {
        problem,
        optimizer,
        seed,
        checkpoint_every,
        retention,
        reference_point,
        stopping,
        log_every,
    })
}

fn take_nsga2(section: &mut Section<'_>) -> Result<Nsga2Spec, SpecError> {
    let mut spec = Nsga2Spec::default();
    if let Some(v) = section.take_parsed("population")? {
        spec.population = v;
    }
    if let Some(v) = section.take_parsed("crossover_probability")? {
        spec.crossover_probability = v;
    }
    if let Some(v) = section.take_parsed("eta_crossover")? {
        spec.eta_crossover = v;
    }
    if let Some(entry) = section.take("mutation_probability") {
        spec.mutation_probability = parse_auto(entry)?;
    }
    if let Some(v) = section.take_parsed("eta_mutation")? {
        spec.eta_mutation = v;
    }
    if let Some(entry) = section.take("backend") {
        spec.backend = parse_backend(entry)?;
    }
    Ok(spec)
}

fn parse_auto(entry: &Entry) -> Result<Option<f64>, SpecError> {
    if entry.value == "auto" {
        Ok(None)
    } else {
        entry.value.parse::<f64>().map(Some).map_err(|_| {
            SpecError::parse(
                entry.line,
                format!(
                    "invalid value '{}' for '{}' (expected 'auto' or a number)",
                    entry.value, entry.key
                ),
            )
        })
    }
}

fn parse_backend(entry: &Entry) -> Result<EvalBackend, SpecError> {
    if entry.value == "serial" {
        return Ok(EvalBackend::Serial);
    }
    if let Some(count) = entry.value.strip_prefix("threads:") {
        let workers: usize = count
            .parse()
            .map_err(|_| SpecError::parse(entry.line, format!("invalid thread count '{count}'")))?;
        return Ok(EvalBackend::Threads(workers));
    }
    Err(SpecError::parse(
        entry.line,
        format!(
            "unknown backend '{}' (expected serial or threads:<n>)",
            entry.value
        ),
    ))
}

/// Any of the shipped optimizers behind one concrete type, so spec-driven
/// code (the `pathway` CLI, `pathway-core`'s factories) can hold a
/// [`crate::engine::Driver`] without being generic over the optimizer kind.
#[derive(Debug, Clone)]
pub enum AnyOptimizer {
    /// A single NSGA-II population.
    Nsga2(Box<Nsga2>),
    /// MOEA/D with Tchebycheff decomposition.
    Moead(Box<Moead>),
    /// The PMO2 archipelago.
    Archipelago(Box<Archipelago>),
}

impl AnyOptimizer {
    /// Spec-text name of the wrapped optimizer kind.
    pub fn kind(&self) -> &'static str {
        match self {
            AnyOptimizer::Nsga2(_) => "nsga2",
            AnyOptimizer::Moead(_) => "moead",
            AnyOptimizer::Archipelago(_) => "archipelago",
        }
    }

    /// Cumulative candidate evaluations spent so far. Inherent (rather than
    /// only via [`Optimizer`]) because the trait method needs a problem type
    /// annotation the caller may not have at hand.
    pub fn evaluations(&self) -> usize {
        match self {
            AnyOptimizer::Nsga2(inner) => inner.evaluations(),
            AnyOptimizer::Moead(inner) => inner.evaluations(),
            AnyOptimizer::Archipelago(inner) => inner.evaluations(),
        }
    }

    /// Installs a (usually shared) evaluation [`Executor`] on the wrapped
    /// optimizer — for the archipelago, on every island. Spec-driven
    /// launchers (the `pathway` CLI) use this to run a whole invocation,
    /// resume included, on one persistent worker pool instead of letting
    /// each optimizer build its own. Executors never change results, only
    /// where batches are evaluated.
    pub fn set_executor(&mut self, executor: Arc<Executor>) {
        match self {
            AnyOptimizer::Nsga2(inner) => inner.set_executor(executor),
            AnyOptimizer::Moead(inner) => inner.set_executor(executor),
            AnyOptimizer::Archipelago(inner) => inner.set_executor(executor),
        }
    }

    /// Attaches a telemetry registry to the wrapped optimizer — for the
    /// archipelago, to every island. Observational only, like
    /// [`set_executor`](AnyOptimizer::set_executor). MOEA/D evaluates its
    /// children inline per sub-problem rather than in phased batches, so
    /// it records no optimizer-level phases; executor- and driver-level
    /// spans still cover it.
    pub fn set_metrics(&mut self, registry: MetricsRegistry) {
        match self {
            AnyOptimizer::Nsga2(inner) => inner.set_metrics(registry),
            AnyOptimizer::Moead(_) => {}
            AnyOptimizer::Archipelago(inner) => inner.set_metrics(registry),
        }
    }
}

impl<P: MultiObjectiveProblem> Optimizer<P> for AnyOptimizer {
    fn initialize(&mut self, problem: &P) {
        match self {
            AnyOptimizer::Nsga2(inner) => Optimizer::<P>::initialize(inner.as_mut(), problem),
            AnyOptimizer::Moead(inner) => Optimizer::<P>::initialize(inner.as_mut(), problem),
            AnyOptimizer::Archipelago(inner) => Optimizer::<P>::initialize(inner.as_mut(), problem),
        }
    }

    fn step(&mut self, problem: &P) {
        match self {
            AnyOptimizer::Nsga2(inner) => Optimizer::<P>::step(inner.as_mut(), problem),
            AnyOptimizer::Moead(inner) => Optimizer::<P>::step(inner.as_mut(), problem),
            AnyOptimizer::Archipelago(inner) => Optimizer::<P>::step(inner.as_mut(), problem),
        }
    }

    fn population(&self) -> Vec<Individual> {
        match self {
            AnyOptimizer::Nsga2(inner) => Optimizer::<P>::population(inner.as_ref()),
            AnyOptimizer::Moead(inner) => Optimizer::<P>::population(inner.as_ref()),
            AnyOptimizer::Archipelago(inner) => Optimizer::<P>::population(inner.as_ref()),
        }
    }

    fn front(&self) -> Vec<Individual> {
        match self {
            AnyOptimizer::Nsga2(inner) => Optimizer::<P>::front(inner.as_ref()),
            AnyOptimizer::Moead(inner) => Optimizer::<P>::front(inner.as_ref()),
            AnyOptimizer::Archipelago(inner) => Optimizer::<P>::front(inner.as_ref()),
        }
    }

    fn evaluations(&self) -> usize {
        match self {
            AnyOptimizer::Nsga2(inner) => Optimizer::<P>::evaluations(inner.as_ref()),
            AnyOptimizer::Moead(inner) => Optimizer::<P>::evaluations(inner.as_ref()),
            AnyOptimizer::Archipelago(inner) => Optimizer::<P>::evaluations(inner.as_ref()),
        }
    }

    fn state(&self) -> OptimizerState {
        match self {
            AnyOptimizer::Nsga2(inner) => Optimizer::<P>::state(inner.as_ref()),
            AnyOptimizer::Moead(inner) => Optimizer::<P>::state(inner.as_ref()),
            AnyOptimizer::Archipelago(inner) => Optimizer::<P>::state(inner.as_ref()),
        }
    }

    fn restore(&mut self, state: OptimizerState) -> Result<(), EngineError> {
        match self {
            AnyOptimizer::Nsga2(inner) => Optimizer::<P>::restore(inner.as_mut(), state),
            AnyOptimizer::Moead(inner) => Optimizer::<P>::restore(inner.as_mut(), state),
            AnyOptimizer::Archipelago(inner) => Optimizer::<P>::restore(inner.as_mut(), state),
        }
    }

    fn set_metrics(&mut self, registry: MetricsRegistry) {
        AnyOptimizer::set_metrics(self, registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::Schaffer;

    fn sample_spec() -> RunSpec {
        RunSpec {
            problem: ProblemSpec::named("zdt1").with_param("variables", "12"),
            optimizer: OptimizerSpec::Archipelago(ArchipelagoSpec {
                islands: 2,
                island: Nsga2Spec {
                    population: 24,
                    backend: EvalBackend::Threads(2),
                    ..Default::default()
                },
                migration_interval: 10,
                migration_probability: 0.5,
                topology: MigrationTopology::Ring,
            }),
            seed: 42,
            checkpoint_every: 5,
            retention: Some(CheckpointRetention {
                keep_last: 3,
                keep_every: 10,
            }),
            reference_point: Some(vec![1.1, 1.1]),
            stopping: StoppingSpec {
                max_generations: 30,
                max_evaluations: Some(10_000),
                stagnation: Some((8, 1e-9)),
            },
            log_every: Some(10),
        }
    }

    #[test]
    fn canonical_text_round_trips() {
        let spec = sample_spec();
        let text = spec.to_text();
        let reparsed = RunSpec::from_text(&text).expect("canonical text parses");
        assert_eq!(reparsed, spec);
        assert_eq!(reparsed.content_hash(), spec.content_hash());
    }

    #[test]
    fn minimal_spec_fills_defaults() {
        let text =
            format!("{SPEC_HEADER}\n[problem]\nname = schaffer\n[optimizer]\nkind = nsga2\n");
        let spec = RunSpec::from_text(&text).expect("minimal spec");
        assert_eq!(spec.problem.name, "schaffer");
        assert_eq!(spec.seed, 0);
        assert_eq!(spec.stopping.max_generations, 250);
        assert!(matches!(spec.optimizer, OptimizerSpec::Nsga2(_)));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!(
            "# leading comment\n{SPEC_HEADER}\n\n[problem] # trailing\nname = schaffer # the name\n\n[optimizer]\nkind = moead\n"
        );
        let spec = RunSpec::from_text(&text).expect("commented spec");
        assert!(matches!(spec.optimizer, OptimizerSpec::Moead(_)));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = format!("{SPEC_HEADER}\n[problem]\nname = schaffer\n[optimizer]\nkind = nsga2\npopulation = many\n");
        match RunSpec::from_text(&text) {
            Err(SpecError::Parse { line, message }) => {
                assert_eq!(line, 6);
                assert!(message.contains("population"), "{message}");
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_keys_sections_and_duplicates_are_rejected() {
        let bad_key = format!("{SPEC_HEADER}\n[problem]\nname = schaffer\n[optimizer]\nkind = nsga2\ntopolgy = ring\n");
        assert!(matches!(
            RunSpec::from_text(&bad_key),
            Err(SpecError::Parse { line: 6, .. })
        ));
        let bad_section = format!("{SPEC_HEADER}\n[problems]\nname = schaffer\n");
        assert!(matches!(
            RunSpec::from_text(&bad_section),
            Err(SpecError::Parse { line: 2, .. })
        ));
        let duplicate =
            format!("{SPEC_HEADER}\n[problem]\nname = a\nname = b\n[optimizer]\nkind = nsga2\n");
        assert!(matches!(
            RunSpec::from_text(&duplicate),
            Err(SpecError::Parse { line: 4, .. })
        ));
    }

    #[test]
    fn missing_header_is_line_one() {
        assert!(matches!(
            RunSpec::from_text("[problem]\nname = x\n"),
            Err(SpecError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            RunSpec::from_text(""),
            Err(SpecError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn validation_rejects_out_of_range_fields() {
        let mut spec = sample_spec();
        spec.reference_point = Some(vec![f64::NAN]);
        assert!(matches!(spec.validate(), Err(SpecError::Field { .. })));
        let mut spec = sample_spec();
        if let OptimizerSpec::Archipelago(arch) = &mut spec.optimizer {
            arch.migration_probability = 1.5;
        }
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("migration_probability"), "{err}");
    }

    #[test]
    fn comment_chars_in_param_values_and_zero_log_every_are_rejected() {
        // A '#' inside a value would re-parse truncated, silently changing
        // the spec and its hash — validation must refuse it up front.
        let mut spec = sample_spec();
        spec.problem = ProblemSpec::named("zdt1").with_param("variables", "12 # twelve");
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains('#'), "{err}");

        // log_every = 0 would mean "never" to a modulo check but "every
        // generation" to LogObserver; reject it instead of guessing.
        let mut spec = sample_spec();
        spec.log_every = Some(0);
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("log_every"), "{err}");

        // A param literally keyed 'name' would render as a duplicate
        // 'name =' line that from_text rejects.
        let mut spec = sample_spec();
        spec.problem = ProblemSpec::named("zdt1").with_param("name", "zdt2");
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("reserved"), "{err}");
    }

    #[test]
    fn retention_keys_parse_validate_and_round_trip() {
        // keep_every without keep_last is a parse error.
        let text = format!(
            "{SPEC_HEADER}\n[problem]\nname = schaffer\n[optimizer]\nkind = nsga2\n[run]\ncheckpoint_keep_every = 10\n"
        );
        match RunSpec::from_text(&text) {
            Err(SpecError::Parse { line, message }) => {
                assert!(message.contains("checkpoint_keep_last"), "{message}");
                assert_eq!(line, 7, "the error must point at the offending key");
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
        // keep_last alone round-trips with keep_every defaulting to 0.
        let text = format!(
            "{SPEC_HEADER}\n[problem]\nname = schaffer\n[optimizer]\nkind = nsga2\n[run]\ncheckpoint_keep_last = 5\n"
        );
        let spec = RunSpec::from_text(&text).expect("keep_last alone is valid");
        assert_eq!(
            spec.retention,
            Some(CheckpointRetention {
                keep_last: 5,
                keep_every: 0
            })
        );
        assert_eq!(RunSpec::from_text(&spec.to_text()).unwrap(), spec);
        // keep_last must be at least 1: the newest checkpoint is what
        // resume needs.
        let mut spec = sample_spec();
        spec.retention = Some(CheckpointRetention {
            keep_last: 0,
            keep_every: 10,
        });
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("checkpoint_keep_last"), "{err}");
    }

    #[test]
    fn stagnation_keys_must_come_together() {
        let text = format!(
            "{SPEC_HEADER}\n[problem]\nname = schaffer\n[optimizer]\nkind = nsga2\n[stop]\nstagnation_window = 5\n"
        );
        assert!(RunSpec::from_text(&text).is_err());
    }

    #[test]
    fn content_hash_tracks_meaningful_changes() {
        let spec = sample_spec();
        let mut tweaked = spec.clone();
        tweaked.seed = 43;
        assert_ne!(spec.content_hash(), tweaked.content_hash());
        // Formatting noise does not change the hash: parsing normalizes.
        let noisy = spec.to_text().replace(" = ", "   =   ");
        let reparsed = RunSpec::from_text(&noisy).expect("noisy spec parses");
        assert_eq!(reparsed.content_hash(), spec.content_hash());
    }

    #[test]
    fn build_optimizer_matches_kind_and_runs() {
        let mut spec = sample_spec();
        spec.stopping.max_generations = 3;
        let mut optimizer = spec.build_optimizer();
        assert!(matches!(optimizer, AnyOptimizer::Archipelago(_)));
        Optimizer::<Schaffer>::initialize(&mut optimizer, &Schaffer);
        Optimizer::<Schaffer>::step(&mut optimizer, &Schaffer);
        assert!(Optimizer::<Schaffer>::evaluations(&optimizer) > 0);
        assert!(!Optimizer::<Schaffer>::front(&optimizer).is_empty());
    }

    #[test]
    fn any_optimizer_state_round_trips_through_restore() {
        let spec = RunSpec {
            optimizer: OptimizerSpec::Nsga2(Nsga2Spec {
                population: 12,
                ..Default::default()
            }),
            ..sample_spec()
        };
        let mut a = spec.build_optimizer();
        Optimizer::<Schaffer>::step(&mut a, &Schaffer);
        let state = Optimizer::<Schaffer>::state(&a);
        let mut b = spec.build_optimizer();
        Optimizer::<Schaffer>::restore(&mut b, state).expect("same configuration");
        Optimizer::<Schaffer>::step(&mut a, &Schaffer);
        Optimizer::<Schaffer>::step(&mut b, &Schaffer);
        assert_eq!(
            Optimizer::<Schaffer>::front(&a),
            Optimizer::<Schaffer>::front(&b)
        );
        // Kind mismatch is rejected.
        let mut moead = OptimizerSpec::Moead(MoeadSpec::default()).build(1, 5);
        let err = Optimizer::<Schaffer>::restore(&mut moead, Optimizer::<Schaffer>::state(&a))
            .unwrap_err();
        assert!(matches!(err, EngineError::StateMismatch { .. }));
    }
}
