//! Engine-wide telemetry: a sharded [`MetricsRegistry`] of counters,
//! gauges, and fixed-bucket histograms, plus lightweight phase span
//! timers.
//!
//! # Design
//!
//! * **Observational only.** Nothing in this module feeds back into the
//!   search: timings never enter checkpointed state, never touch an RNG,
//!   and never influence evaluation order. The determinism suite proves
//!   runs are bit-identical with telemetry on vs. off.
//! * **Sharded, merge-deterministic.** A registry holds a fixed number of
//!   shards; each recording thread hashes its [`std::thread::ThreadId`]
//!   to pick one, so worker lanes rarely contend on a lock.
//!   [`MetricsRegistry::snapshot`] merges the shards in index order, and
//!   every merge operation is commutative and associative (counters add,
//!   gauges take the maximum, same-bounds histograms add elementwise), so
//!   merge order can never change a snapshot.
//! * **Zero dependencies.** Plain `std`: `Mutex` shards, `BTreeMap`
//!   storage, `Instant` spans.
//!
//! # Naming conventions
//!
//! Dotted lowercase names, namespaced by subsystem:
//!
//! * `exec.*` — executor/pool metrics (`exec.batches`, `exec.candidates`,
//!   `exec.queue_wait_us`, `exec.lane03.busy_us`, …);
//! * `oracle.*` — amortized-oracle counters (`oracle.fba.solves`,
//!   `oracle.ode.warm_starts`, …);
//! * `serve.*` — daemon scheduler metrics (`serve.turn_us`,
//!   `serve.loop_lag_us`, `serve.jobs_runnable`, …);
//! * `phase.<name>.us` / `phase.<name>.calls` — the counter pair behind a
//!   [`PhaseSpan`]; profile renderers fold these pairs into a phase table.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Fixed shard count. Larger than any pool the executor spawns in
/// practice, small enough that a snapshot merge is trivial.
pub const METRIC_SHARDS: usize = 16;

/// One recorded metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotone event count; merges by addition.
    Counter(u64),
    /// Last-set instantaneous value; merges by maximum. Set a gauge from
    /// a single thread when you need strict last-value semantics — one
    /// writer always lands in one shard, so its latest write survives.
    Gauge(f64),
    /// Fixed-bucket histogram; same-bounds histograms merge elementwise.
    Histogram(HistogramSnapshot),
}

/// Fixed-point scale for histogram sums: values are accumulated as
/// `value × 2²⁰` in an `i128`. Integer addition is associative, so shard
/// merges are bit-exact in any order — `f64` sums would drift in the last
/// ulp depending on merge order. Resolution ~1e-6 (sub-microsecond for
/// the µs timings recorded here), range ±2¹⁰⁷ in value units.
const SUM_FIXED_ONE: i128 = 1 << 20;

/// A fixed-bucket histogram: `counts[i]` holds observations with
/// `value <= bounds[i]` (and greater than the previous bound); the final
/// extra bucket counts overflow above the last bound. Non-finite
/// observations land in the overflow bucket and are excluded from the
/// sum.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Ascending upper bucket bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; `bounds.len() + 1` entries, the
    /// last one the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations, including overflow.
    pub count: u64,
    /// Sum of all finite observed values, in [`SUM_FIXED_ONE`] fixed
    /// point (kept private so every representation stays merge-exact;
    /// read it via [`HistogramSnapshot::sum`]).
    sum_fixed: i128,
}

impl HistogramSnapshot {
    /// An empty histogram over `bounds`.
    pub fn new(bounds: &[f64]) -> Self {
        HistogramSnapshot {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum_fixed: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let bucket = if value.is_finite() {
            self.sum_fixed = self
                .sum_fixed
                .saturating_add((value * SUM_FIXED_ONE as f64) as i128);
            self.bounds
                .iter()
                .position(|bound| value <= *bound)
                .unwrap_or(self.bounds.len())
        } else {
            self.bounds.len()
        };
        self.counts[bucket] += 1;
        self.count += 1;
    }

    /// Sum of all finite observed values (fixed-point resolution ~1e-6).
    pub fn sum(&self) -> f64 {
        self.sum_fixed as f64 / SUM_FIXED_ONE as f64
    }

    /// Folds `other` into `self`. Same-bounds histograms add elementwise.
    /// A bounds mismatch is a programming error (one name, two bucket
    /// layouts); it degrades gracefully by folding the other histogram's
    /// total count into the overflow bucket and its sum into the sum.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.bounds == other.bounds {
            for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
                *mine += theirs;
            }
        } else if let Some(overflow) = self.counts.last_mut() {
            *overflow += other.count;
        }
        self.count += other.count;
        self.sum_fixed = self.sum_fixed.saturating_add(other.sum_fixed);
    }
}

/// An owned, mergeable view of recorded metrics, keyed by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All metrics, sorted by name (a `BTreeMap` keeps iteration
    /// deterministic).
    pub metrics: BTreeMap<String, Metric>,
}

impl MetricsSnapshot {
    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn add(&mut self, name: &str, delta: u64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(value) => *value += delta,
            _ => debug_assert!(false, "metric '{name}' is not a counter"),
        }
    }

    /// Sets the gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.metrics.insert(name.to_string(), Metric::Gauge(value));
    }

    /// Records `value` into the histogram `name` bucketed by `bounds`.
    pub fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(HistogramSnapshot::new(bounds)))
        {
            Metric::Histogram(histogram) => histogram.observe(value),
            _ => debug_assert!(false, "metric '{name}' is not a histogram"),
        }
    }

    /// Folds every metric of `other` into `self`. Commutative and
    /// associative, so any merge order yields the same snapshot.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, metric) in &other.metrics {
            match self.metrics.get_mut(name) {
                None => {
                    self.metrics.insert(name.clone(), metric.clone());
                }
                Some(Metric::Counter(mine)) => {
                    if let Metric::Counter(theirs) = metric {
                        *mine += theirs;
                    }
                }
                Some(Metric::Gauge(mine)) => {
                    if let Metric::Gauge(theirs) = metric {
                        *mine = mine.max(*theirs);
                    }
                }
                Some(Metric::Histogram(mine)) => {
                    if let Metric::Histogram(theirs) = metric {
                        mine.merge(theirs);
                    }
                }
            }
        }
    }

    /// The counter `name`, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(Metric::Counter(value)) => Some(*value),
            _ => None,
        }
    }

    /// The gauge `name`, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(Metric::Gauge(value)) => Some(*value),
            _ => None,
        }
    }

    /// The histogram `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(Metric::Histogram(histogram)) => Some(histogram),
            _ => None,
        }
    }
}

/// A cheap-to-clone handle onto a sharded metrics store. Every clone
/// records into the same shards; [`snapshot`](MetricsRegistry::snapshot)
/// merges them deterministically.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    shards: Arc<Vec<Mutex<MetricsSnapshot>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// A fresh registry with [`METRIC_SHARDS`] empty shards.
    pub fn new() -> Self {
        MetricsRegistry {
            shards: Arc::new((0..METRIC_SHARDS).map(|_| Mutex::default()).collect()),
        }
    }

    /// The shard the calling thread records into.
    fn shard(&self) -> &Mutex<MetricsSnapshot> {
        let mut hasher = DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        let index = (hasher.finish() as usize) % self.shards.len();
        &self.shards[index]
    }

    /// Adds `delta` to the counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        self.shard().lock().expect("metrics shard").add(name, delta);
    }

    /// Sets the gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.shard()
            .lock()
            .expect("metrics shard")
            .set_gauge(name, value);
    }

    /// Records `value` into the histogram `name` bucketed by `bounds`.
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        self.shard()
            .lock()
            .expect("metrics shard")
            .observe(name, bounds, value);
    }

    /// Records `elapsed` (as microseconds) into the histogram `name`.
    pub fn observe_duration(&self, name: &str, bounds: &[f64], elapsed: Duration) {
        self.observe(name, bounds, duration_us_f64(elapsed));
    }

    /// Records one completed pass of the phase `name`: bumps the counter
    /// pair `phase.<name>.us` / `phase.<name>.calls`.
    pub fn record_phase(&self, name: &str, elapsed: Duration) {
        let mut shard = self.shard().lock().expect("metrics shard");
        shard.add(&format!("phase.{name}.us"), duration_us(elapsed));
        shard.add(&format!("phase.{name}.calls"), 1);
    }

    /// Starts a phase span; the returned guard records the elapsed time
    /// into `phase.<name>.*` when dropped.
    pub fn phase(&self, name: &'static str) -> PhaseSpan<'_> {
        PhaseSpan {
            registry: self,
            name,
            started: Instant::now(),
        }
    }

    /// Merges every shard (in index order — though any order would give
    /// the same result) into one snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut merged = MetricsSnapshot::default();
        for shard in self.shards.iter() {
            merged.merge(&shard.lock().expect("metrics shard"));
        }
        merged
    }
}

/// Saturating whole microseconds of a duration.
pub fn duration_us(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)
}

fn duration_us_f64(elapsed: Duration) -> f64 {
    elapsed.as_secs_f64() * 1e6
}

/// Drop guard for one timed pass through a phase; see
/// [`MetricsRegistry::phase`].
#[must_use = "a phase span records on drop; binding it to _ discards the timing"]
pub struct PhaseSpan<'a> {
    registry: &'a MetricsRegistry,
    name: &'static str,
    started: Instant,
}

impl Drop for PhaseSpan<'_> {
    fn drop(&mut self) {
        self.registry
            .record_phase(self.name, self.started.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_across_threads() {
        let registry = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let registry = registry.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        registry.add("test.events", 1);
                    }
                });
            }
        });
        registry.add("test.events", 7);
        assert_eq!(registry.snapshot().counter("test.events"), Some(407));
    }

    #[test]
    fn gauge_single_writer_keeps_last_value() {
        let registry = MetricsRegistry::new();
        registry.set_gauge("test.depth", 9.0);
        registry.set_gauge("test.depth", 3.0);
        assert_eq!(registry.snapshot().gauge("test.depth"), Some(3.0));
    }

    #[test]
    fn histogram_buckets_use_inclusive_upper_bounds() {
        let mut histogram = HistogramSnapshot::new(&[10.0, 100.0]);
        histogram.observe(10.0); // exactly on a bound: inclusive
        histogram.observe(10.5);
        histogram.observe(100.0);
        histogram.observe(1000.0); // overflow
        histogram.observe(-1.0); // below all bounds: first bucket
        assert_eq!(histogram.counts, vec![2, 2, 1]);
        assert_eq!(histogram.count, 5);
        assert!((histogram.sum() - 1119.5).abs() < 1e-4);
    }

    #[test]
    fn histogram_nonfinite_goes_to_overflow_without_poisoning_sum() {
        let mut histogram = HistogramSnapshot::new(&[1.0]);
        histogram.observe(f64::NAN);
        histogram.observe(f64::INFINITY);
        histogram.observe(0.5);
        assert_eq!(histogram.counts, vec![1, 2]);
        assert_eq!(histogram.count, 3);
        assert!((histogram.sum() - 0.5).abs() < 1e-4);
    }

    #[test]
    fn phase_span_records_us_and_calls() {
        let registry = MetricsRegistry::new();
        {
            let _span = registry.phase("variation");
        }
        {
            let _span = registry.phase("variation");
        }
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("phase.variation.calls"), Some(2));
        assert!(snapshot.counter("phase.variation.us").is_some());
    }

    #[test]
    fn merge_is_commutative() {
        let mut left = MetricsSnapshot::default();
        left.add("c", 3);
        left.set_gauge("g", 1.5);
        left.observe("h", &[1.0, 2.0], 0.5);

        let mut right = MetricsSnapshot::default();
        right.add("c", 4);
        right.set_gauge("g", 0.5);
        right.observe("h", &[1.0, 2.0], 5.0);
        right.add("only-right", 1);

        let mut ab = left.clone();
        ab.merge(&right);
        let mut ba = right.clone();
        ba.merge(&left);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c"), Some(7));
        assert_eq!(ab.gauge("g"), Some(1.5));
        assert_eq!(ab.histogram("h").map(|h| h.count), Some(2));
    }

    #[test]
    fn mismatched_bounds_fold_into_overflow() {
        let mut a = HistogramSnapshot::new(&[1.0]);
        a.observe(0.5);
        let mut b = HistogramSnapshot::new(&[2.0]);
        b.observe(0.5);
        b.observe(3.0);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.counts, vec![1, 2]);
    }
}
