//! Durable, cross-process checkpoints.
//!
//! [`crate::engine::Driver::checkpoint`] produces a plain-data
//! [`RunCheckpoint`]; this module makes it *durable*: a self-contained byte
//! codec (every `f64` stored via its IEEE-754 bits, so restored runs are
//! bit-identical), a versioned header with an FNV-1a integrity checksum, the
//! canonical spec text embedded alongside the state, and atomic
//! write-then-rename persistence so a crash mid-write never leaves a
//! half-checkpoint behind.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! magic    4 bytes  b"PWCK"
//! version  u32      currently 1
//! spec     u64 hash, u32 length, UTF-8 canonical spec text
//! payload  u64 length, encoded RunCheckpoint
//! checksum u64      FNV-1a over every preceding byte
//! ```
//!
//! Embedding the spec makes a checkpoint self-describing: `pathway resume`
//! needs only the checkpoint file, and a resume attempted against a
//! *different* spec is rejected by hash ([`StoredCheckpoint::ensure_matches`])
//! instead of silently diverging.

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::engine::spec::fnv1a64;
use crate::engine::{
    ArchipelagoState, MoeadState, Nsga2State, OptimizerState, RngState, RunCheckpoint, RunSpec,
};
use crate::Individual;

const MAGIC: &[u8; 4] = b"PWCK";
const VERSION: u32 = 1;
const EXTENSION: &str = "ckpt";

/// Errors surfaced by checkpoint persistence.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The integrity checksum does not match — truncated or bit-rotted file.
    ChecksumMismatch {
        /// Checksum recomputed from the file contents.
        computed: u64,
        /// Checksum stored in the file.
        stored: u64,
    },
    /// The file is structurally broken (short reads, impossible lengths).
    Corrupted {
        /// What failed to decode.
        detail: String,
    },
    /// The checkpoint belongs to a different spec than the one resuming.
    SpecMismatch {
        /// Content hash of the spec attempting to resume.
        expected: u64,
        /// Content hash recorded in the checkpoint.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(err) => write!(f, "checkpoint I/O error: {err}"),
            CheckpointError::BadMagic => {
                write!(f, "not a pathway checkpoint (bad magic)")
            }
            CheckpointError::UnsupportedVersion(version) => {
                write!(f, "unsupported checkpoint version {version} (this build reads v{VERSION})")
            }
            CheckpointError::ChecksumMismatch { computed, stored } => write!(
                f,
                "checkpoint integrity check failed (computed {computed:#018x}, stored {stored:#018x}): file is truncated or corrupted"
            ),
            CheckpointError::Corrupted { detail } => {
                write!(f, "corrupted checkpoint: {detail}")
            }
            CheckpointError::SpecMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different run spec (resuming spec hash {expected:#018x}, checkpoint spec hash {found:#018x}); resuming would silently diverge — pass the original spec or drop the override"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(err: std::io::Error) -> Self {
        CheckpointError::Io(err)
    }
}

/// A checkpoint read back from disk: the engine state plus the canonical
/// spec text it was produced under.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredCheckpoint {
    /// Canonical text of the spec the run was launched from.
    pub spec_text: String,
    /// [`RunSpec::content_hash`] of that spec.
    pub spec_hash: u64,
    /// The engine state.
    pub checkpoint: RunCheckpoint,
}

impl StoredCheckpoint {
    /// Generations completed when the checkpoint was taken.
    pub fn generation(&self) -> usize {
        self.checkpoint.generation
    }

    /// Cumulative candidate evaluations recorded in the optimizer snapshot.
    pub fn evaluations(&self) -> usize {
        match &self.checkpoint.optimizer {
            OptimizerState::Nsga2(state) => state.evaluations,
            OptimizerState::Moead(state) => state.evaluations,
            OptimizerState::Archipelago(state) => {
                state.islands.iter().map(|island| island.evaluations).sum()
            }
        }
    }

    /// Rejects the checkpoint unless it was produced by exactly `spec`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::SpecMismatch`] when the content hashes differ.
    pub fn ensure_matches(&self, spec: &RunSpec) -> Result<(), CheckpointError> {
        let expected = spec.content_hash();
        if expected != self.spec_hash {
            return Err(CheckpointError::SpecMismatch {
                expected,
                found: self.spec_hash,
            });
        }
        Ok(())
    }
}

/// Serializes a checkpoint (and its spec text) into the on-disk byte format.
pub fn encode_checkpoint(spec_text: &str, checkpoint: &RunCheckpoint) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4096);
    write_checkpoint_payload(&mut payload, checkpoint);

    let mut bytes = Vec::with_capacity(payload.len() + spec_text.len() + 64);
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&fnv1a64(spec_text.as_bytes()).to_le_bytes());
    bytes.extend_from_slice(&(spec_text.len() as u32).to_le_bytes());
    bytes.extend_from_slice(spec_text.as_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&payload);
    let checksum = fnv1a64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Deserializes the on-disk byte format back into a [`StoredCheckpoint`].
///
/// # Errors
///
/// Any [`CheckpointError`] except `Io`/`SpecMismatch`: bad magic, version,
/// checksum or structural corruption.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<StoredCheckpoint, CheckpointError> {
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(CheckpointError::Corrupted {
            detail: format!("file is only {} bytes long", bytes.len()),
        });
    }
    if &bytes[..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("length checked"));
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let body_len = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_len..].try_into().expect("length checked"));
    let computed = fnv1a64(&bytes[..body_len]);
    if stored != computed {
        return Err(CheckpointError::ChecksumMismatch { computed, stored });
    }

    let mut reader = Reader {
        bytes: &bytes[..body_len],
        at: 8,
    };
    let spec_hash = reader.u64("spec hash")?;
    let spec_len = reader.u32("spec length")? as usize;
    let spec_bytes = reader.take(spec_len, "spec text")?;
    let spec_text = std::str::from_utf8(spec_bytes)
        .map_err(|_| CheckpointError::Corrupted {
            detail: "spec text is not UTF-8".to_string(),
        })?
        .to_string();
    if fnv1a64(spec_text.as_bytes()) != spec_hash {
        return Err(CheckpointError::Corrupted {
            detail: "embedded spec text does not match the recorded spec hash".to_string(),
        });
    }
    let payload_len = reader.u64("payload length")? as usize;
    let payload = reader.take(payload_len, "payload")?;
    let mut payload_reader = Reader {
        bytes: payload,
        at: 0,
    };
    let checkpoint = read_checkpoint_payload(&mut payload_reader)?;
    if payload_reader.at != payload.len() {
        return Err(CheckpointError::Corrupted {
            detail: format!(
                "{} trailing payload bytes after the checkpoint",
                payload.len() - payload_reader.at
            ),
        });
    }
    Ok(StoredCheckpoint {
        spec_text,
        spec_hash,
        checkpoint,
    })
}

/// Writes a checkpoint file atomically: the bytes go to a sibling temporary
/// file which is fsynced and then renamed over `path`, so readers only ever
/// observe complete checkpoints.
///
/// # Errors
///
/// Propagates filesystem failures as [`CheckpointError::Io`].
pub fn write_checkpoint_file(
    path: &Path,
    spec_text: &str,
    checkpoint: &RunCheckpoint,
) -> Result<(), CheckpointError> {
    let bytes = encode_checkpoint(spec_text, checkpoint);
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            CheckpointError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "checkpoint path has no file name",
            ))
        })?
        .to_string_lossy();
    let tmp = path.with_file_name(format!(".{file_name}.tmp"));
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // The rename itself lives in the directory entry; without syncing the
    // directory a power loss could lose the (complete, synced) file. Best
    // effort: directories cannot be opened for sync on all platforms.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Reads and verifies a checkpoint file.
///
/// # Errors
///
/// [`CheckpointError::Io`] for filesystem failures, otherwise the decode
/// errors of [`decode_checkpoint`].
pub fn read_checkpoint_file(path: &Path) -> Result<StoredCheckpoint, CheckpointError> {
    let bytes = fs::read(path)?;
    decode_checkpoint(&bytes)
}

/// Which `gen-<n>.ckpt` files a [`CheckpointStore`] keeps on disk.
///
/// A long run with a tight checkpoint cadence writes thousands of files the
/// run will never resume from; a retention policy bounds that. After every
/// save the store deletes any checkpoint that is neither among the newest
/// `keep_last` generations nor (when `keep_every > 0`) at a generation
/// divisible by `keep_every`. The default store keeps everything — retention
/// is strictly opt-in (via [`CheckpointStore::with_retention`] or the
/// `checkpoint_keep_last` / `checkpoint_keep_every` keys of a run spec's
/// `[run]` section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointRetention {
    /// Always keep the newest `keep_last` checkpoints (at least 1 — the
    /// latest checkpoint is what `resume` needs and is never deleted).
    pub keep_last: usize,
    /// Additionally keep every checkpoint whose generation is a multiple of
    /// this; `0` disables the modular keeps.
    pub keep_every: usize,
}

impl CheckpointRetention {
    /// `true` when a checkpoint at `generation`, currently the
    /// `newest_rank`-th newest on disk (0 = newest), survives this policy.
    pub fn keeps(&self, generation: usize, newest_rank: usize) -> bool {
        newest_rank < self.keep_last.max(1)
            || (self.keep_every > 0 && generation.is_multiple_of(self.keep_every))
    }
}

/// A directory of checkpoints for one run.
///
/// The store remembers the run's canonical spec text, names files by
/// generation (`gen-<n>.ckpt`) and writes them atomically, so a `pathway
/// resume` (or any other process) can pick up [`CheckpointStore::latest`] at
/// any time — including while the run is still writing. An optional
/// [`CheckpointRetention`] policy prunes old generations after each save;
/// without one (the default) every checkpoint is kept.
///
/// # Example
///
/// ```no_run
/// use pathway_moo::engine::{CheckpointStore, RunSpec};
/// # fn demo(spec: &RunSpec, checkpoint: &pathway_moo::engine::RunCheckpoint) {
/// let store = CheckpointStore::create("checkpoints", spec).unwrap();
/// let path = store.save(checkpoint).unwrap();
/// let restored = CheckpointStore::load_matching(&path, spec).unwrap();
/// assert_eq!(&restored.checkpoint, checkpoint);
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    spec_text: String,
    retention: Option<CheckpointRetention>,
}

impl CheckpointStore {
    /// Creates the store directory (and parents) if needed and binds it to
    /// `spec`'s canonical text. Retention follows the spec: a
    /// `checkpoint_keep_last` in the spec's `[run]` section is installed
    /// automatically, otherwise every checkpoint is kept.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn create(dir: impl Into<PathBuf>, spec: &RunSpec) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            spec_text: spec.to_text(),
            retention: spec.retention,
        })
    }

    /// Overrides the retention policy (`None` keeps every checkpoint).
    #[must_use]
    pub fn with_retention(mut self, retention: Option<CheckpointRetention>) -> Self {
        self.retention = retention;
        self
    }

    /// The active retention policy, if any.
    pub fn retention(&self) -> Option<CheckpointRetention> {
        self.retention
    }

    /// The directory checkpoints are written into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Atomically writes `checkpoint` as `gen-<generation>.ckpt`, applies
    /// the retention policy, and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures. The new checkpoint is durable before
    /// any pruning starts, so a prune failure never loses the save.
    pub fn save(&self, checkpoint: &RunCheckpoint) -> Result<PathBuf, CheckpointError> {
        let path = self
            .dir
            .join(format!("gen-{}.{EXTENSION}", checkpoint.generation));
        write_checkpoint_file(&path, &self.spec_text, checkpoint)?;
        // The file just written is exempt from its own prune: a directory
        // holding stale *higher* generations (a resume extended past an old
        // run's leftovers) must not swallow the checkpoint this save
        // produced.
        self.prune_keeping(Some(checkpoint.generation))?;
        Ok(path)
    }

    /// Deletes every checkpoint the retention policy does not keep. No-op
    /// without a policy.
    ///
    /// # Errors
    ///
    /// Propagates directory-read and file-removal failures.
    pub fn prune(&self) -> Result<(), CheckpointError> {
        self.prune_keeping(None)
    }

    fn prune_keeping(&self, exempt: Option<usize>) -> Result<(), CheckpointError> {
        let Some(retention) = self.retention else {
            return Ok(());
        };
        let mut stored: Vec<(usize, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if let Some(generation) = Self::generation_of(&path) {
                stored.push((generation, path));
            }
        }
        // Newest first, so the index is the "newest rank" the policy reads.
        stored.sort_by_key(|(generation, _)| std::cmp::Reverse(*generation));
        for (rank, (generation, path)) in stored.iter().enumerate() {
            if Some(*generation) == exempt {
                continue;
            }
            if !retention.keeps(*generation, rank) {
                match fs::remove_file(path) {
                    Ok(()) => {}
                    // Another process (a concurrent resume's own prune, a
                    // user cleanup) may have deleted it first; the goal —
                    // the file being gone — is met either way, and a save
                    // must not fail after durably writing its checkpoint.
                    Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
                    Err(err) => return Err(err.into()),
                }
            }
        }
        Ok(())
    }

    /// The stored checkpoint with the highest generation, if any.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn latest(&self) -> Result<Option<PathBuf>, CheckpointError> {
        let mut best: Option<(usize, PathBuf)> = None;
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(generation) = Self::generation_of(&path) else {
                continue;
            };
            if best.as_ref().is_none_or(|(g, _)| generation > *g) {
                best = Some((generation, path));
            }
        }
        Ok(best.map(|(_, path)| path))
    }

    /// Parses the generation number out of a `gen-<n>.ckpt` file name.
    pub fn generation_of(path: &Path) -> Option<usize> {
        let name = path.file_name()?.to_str()?;
        name.strip_prefix("gen-")?
            .strip_suffix(&format!(".{EXTENSION}"))?
            .parse()
            .ok()
    }

    /// Reads a checkpoint file without any spec check (the embedded spec is
    /// still integrity-verified against its recorded hash).
    ///
    /// # Errors
    ///
    /// See [`read_checkpoint_file`].
    pub fn load(path: &Path) -> Result<StoredCheckpoint, CheckpointError> {
        read_checkpoint_file(path)
    }

    /// Reads a checkpoint file and rejects it unless it was produced by
    /// exactly `spec` (by canonical content hash).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::SpecMismatch`] on hash divergence, otherwise the
    /// errors of [`read_checkpoint_file`].
    pub fn load_matching(path: &Path, spec: &RunSpec) -> Result<StoredCheckpoint, CheckpointError> {
        let stored = read_checkpoint_file(path)?;
        stored.ensure_matches(spec)?;
        Ok(stored)
    }
}

// ----------------------------------------------------------- byte codec --

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .at
            .checked_add(len)
            .filter(|&end| end <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.at..end];
                self.at = end;
                Ok(slice)
            }
            None => Err(CheckpointError::Corrupted {
                detail: format!(
                    "truncated while reading {what} ({len} bytes at offset {}, {} available)",
                    self.at,
                    self.bytes.len() - self.at
                ),
            }),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn usize(&mut self, what: &str) -> Result<usize, CheckpointError> {
        let value = self.u64(what)?;
        usize::try_from(value).map_err(|_| CheckpointError::Corrupted {
            detail: format!("{what} {value} does not fit in usize"),
        })
    }

    /// Length prefix for a sequence of elements each at least `element_size`
    /// bytes — bounds the length against the remaining input so corrupt
    /// lengths fail fast instead of attempting huge allocations.
    fn sequence_len(&mut self, element_size: usize, what: &str) -> Result<usize, CheckpointError> {
        let len = self.usize(what)?;
        let remaining = self.bytes.len() - self.at;
        if len.saturating_mul(element_size.max(1)) > remaining {
            return Err(CheckpointError::Corrupted {
                detail: format!("{what} claims {len} elements but only {remaining} bytes remain"),
            });
        }
        Ok(len)
    }

    fn f64(&mut self, what: &str) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64(what)?))
    }
}

fn write_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn write_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn write_f64(out: &mut Vec<u8>, value: f64) {
    write_u64(out, value.to_bits());
}

fn write_f64_slice(out: &mut Vec<u8>, values: &[f64]) {
    write_u32(out, values.len() as u32);
    for &value in values {
        write_f64(out, value);
    }
}

fn read_f64_vec(reader: &mut Reader<'_>, what: &str) -> Result<Vec<f64>, CheckpointError> {
    let len = reader.u32(what)? as usize;
    let mut values = Vec::with_capacity(len.min(1 << 16));
    for _ in 0..len {
        values.push(reader.f64(what)?);
    }
    Ok(values)
}

fn write_individual(out: &mut Vec<u8>, individual: &Individual) {
    write_f64_slice(out, &individual.variables);
    write_f64_slice(out, &individual.objectives);
    write_f64(out, individual.violation);
    write_u64(out, individual.rank as u64);
    write_f64(out, individual.crowding);
}

fn read_individual(reader: &mut Reader<'_>) -> Result<Individual, CheckpointError> {
    let variables = read_f64_vec(reader, "individual variables")?;
    let objectives = read_f64_vec(reader, "individual objectives")?;
    let violation = reader.f64("individual violation")?;
    let rank = reader.u64("individual rank")? as usize;
    let crowding = reader.f64("individual crowding")?;
    let mut individual = Individual::from_evaluated(variables, objectives, violation);
    individual.rank = rank;
    individual.crowding = crowding;
    Ok(individual)
}

fn write_individuals(out: &mut Vec<u8>, individuals: &[Individual]) {
    write_u64(out, individuals.len() as u64);
    for individual in individuals {
        write_individual(out, individual);
    }
}

fn read_individuals(reader: &mut Reader<'_>) -> Result<Vec<Individual>, CheckpointError> {
    // Each individual is at least two length prefixes + three scalars.
    let len = reader.sequence_len(32, "population length")?;
    let mut individuals = Vec::with_capacity(len);
    for _ in 0..len {
        individuals.push(read_individual(reader)?);
    }
    Ok(individuals)
}

fn write_rng(out: &mut Vec<u8>, rng: &RngState) {
    for &word in &rng.0 {
        write_u64(out, word);
    }
}

fn read_rng(reader: &mut Reader<'_>) -> Result<RngState, CheckpointError> {
    let mut words = [0u64; 4];
    for word in &mut words {
        *word = reader.u64("rng state")?;
    }
    Ok(RngState(words))
}

fn write_nsga2_state(out: &mut Vec<u8>, state: &Nsga2State) {
    write_rng(out, &state.rng);
    write_u64(out, state.evaluations as u64);
    write_individuals(out, &state.population);
}

fn read_nsga2_state(reader: &mut Reader<'_>) -> Result<Nsga2State, CheckpointError> {
    Ok(Nsga2State {
        rng: read_rng(reader)?,
        evaluations: reader.usize("evaluations")?,
        population: read_individuals(reader)?,
    })
}

fn write_checkpoint_payload(out: &mut Vec<u8>, checkpoint: &RunCheckpoint) {
    write_u64(out, checkpoint.generation as u64);
    match &checkpoint.reference_point {
        None => out.push(0),
        Some(reference) => {
            out.push(1);
            write_f64_slice(out, reference);
        }
    }
    write_u32(out, checkpoint.hypervolume_history.len() as u32);
    for &value in &checkpoint.hypervolume_history {
        write_f64(out, value);
    }
    match &checkpoint.optimizer {
        OptimizerState::Nsga2(state) => {
            out.push(0);
            write_nsga2_state(out, state);
        }
        OptimizerState::Moead(state) => {
            out.push(1);
            write_rng(out, &state.rng);
            write_u64(out, state.evaluations as u64);
            write_f64_slice(out, &state.ideal);
            write_individuals(out, &state.population);
        }
        OptimizerState::Archipelago(state) => {
            out.push(2);
            write_u64(out, state.islands.len() as u64);
            for island in &state.islands {
                write_nsga2_state(out, island);
            }
            write_u64(out, state.archives.len() as u64);
            for archive in &state.archives {
                write_individuals(out, archive);
            }
            write_rng(out, &state.migration_rng);
            write_u64(out, state.generations_done as u64);
        }
    }
}

fn read_checkpoint_payload(reader: &mut Reader<'_>) -> Result<RunCheckpoint, CheckpointError> {
    let generation = reader.usize("generation")?;
    let reference_point = match reader.take(1, "reference point flag")?[0] {
        0 => None,
        1 => Some(read_f64_vec(reader, "reference point")?),
        other => {
            return Err(CheckpointError::Corrupted {
                detail: format!("invalid reference point flag {other}"),
            })
        }
    };
    let hypervolume_history = read_f64_vec(reader, "hypervolume history")?;
    let optimizer = match reader.take(1, "optimizer tag")?[0] {
        0 => OptimizerState::Nsga2(read_nsga2_state(reader)?),
        1 => OptimizerState::Moead(MoeadState {
            rng: read_rng(reader)?,
            evaluations: reader.usize("evaluations")?,
            ideal: read_f64_vec(reader, "ideal point")?,
            population: read_individuals(reader)?,
        }),
        2 => {
            let island_count = reader.sequence_len(44, "island count")?;
            let mut islands = Vec::with_capacity(island_count);
            for _ in 0..island_count {
                islands.push(read_nsga2_state(reader)?);
            }
            let archive_count = reader.sequence_len(8, "archive count")?;
            let mut archives = Vec::with_capacity(archive_count);
            for _ in 0..archive_count {
                archives.push(read_individuals(reader)?);
            }
            OptimizerState::Archipelago(ArchipelagoState {
                islands,
                archives,
                migration_rng: read_rng(reader)?,
                generations_done: reader.usize("generations done")?,
            })
        }
        other => {
            return Err(CheckpointError::Corrupted {
                detail: format!("invalid optimizer tag {other}"),
            })
        }
    };
    Ok(RunCheckpoint {
        generation,
        optimizer,
        hypervolume_history,
        reference_point,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Driver, ProblemSpec, StoppingRule};
    use crate::problems::Schaffer;
    use crate::{Nsga2, Nsga2Config};

    fn sample_checkpoint() -> RunCheckpoint {
        let mut driver = Driver::new(
            Nsga2::new(
                Nsga2Config {
                    population_size: 8,
                    ..Default::default()
                },
                3,
            ),
            &Schaffer,
        )
        .with_stopping(StoppingRule::MaxGenerations(4));
        driver.step();
        driver.step();
        driver.checkpoint()
    }

    fn sample_spec() -> RunSpec {
        RunSpec {
            problem: ProblemSpec::named("schaffer"),
            ..Default::default()
        }
    }

    #[test]
    fn encode_decode_round_trips_bit_for_bit() {
        let spec = sample_spec();
        let checkpoint = sample_checkpoint();
        let bytes = encode_checkpoint(&spec.to_text(), &checkpoint);
        let stored = decode_checkpoint(&bytes).expect("decodes");
        assert_eq!(stored.checkpoint, checkpoint);
        assert_eq!(stored.spec_text, spec.to_text());
        assert_eq!(stored.spec_hash, spec.content_hash());
        assert!(stored.evaluations() > 0);
    }

    #[test]
    fn store_saves_and_reloads_with_matching_spec() {
        let dir = std::env::temp_dir().join(format!("pathway-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let spec = sample_spec();
        let store = CheckpointStore::create(&dir, &spec).expect("create store");
        let checkpoint = sample_checkpoint();
        let path = store.save(&checkpoint).expect("save");
        assert_eq!(CheckpointStore::generation_of(&path), Some(2));
        assert_eq!(store.latest().expect("latest"), Some(path.clone()));
        let stored = CheckpointStore::load_matching(&path, &spec).expect("load");
        assert_eq!(stored.checkpoint, checkpoint);
        // A different spec is rejected with a clear error.
        let mut other = spec.clone();
        other.seed = 999;
        match CheckpointStore::load_matching(&path, &other) {
            Err(CheckpointError::SpecMismatch { expected, found }) => {
                assert_eq!(expected, other.content_hash());
                assert_eq!(found, spec.content_hash());
            }
            other => panic!("expected SpecMismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let spec = sample_spec();
        let bytes = encode_checkpoint(&spec.to_text(), &sample_checkpoint());

        // Truncation: checksum no longer matches.
        let truncated = &bytes[..bytes.len() - 9];
        assert!(matches!(
            decode_checkpoint(truncated),
            Err(CheckpointError::ChecksumMismatch { .. }) | Err(CheckpointError::Corrupted { .. })
        ));

        // A flipped payload byte trips the checksum.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            decode_checkpoint(&flipped),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));

        // Wrong magic.
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            decode_checkpoint(&wrong_magic),
            Err(CheckpointError::BadMagic)
        ));

        // Future version (checksum fixed up so the version check is what
        // fires).
        let mut future = bytes.clone();
        future[4] = 9;
        let body_len = future.len() - 8;
        let checksum = fnv1a64(&future[..body_len]);
        future[body_len..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            decode_checkpoint(&future),
            Err(CheckpointError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn errors_render_actionable_messages() {
        let error = CheckpointError::SpecMismatch {
            expected: 1,
            found: 2,
        };
        assert!(error.to_string().contains("different run spec"));
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
    }
}
