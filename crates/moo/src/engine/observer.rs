//! Per-generation telemetry for [`crate::engine::Driver`] runs.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What the driver learned from one completed generation.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationReport {
    /// 1-based index of the completed generation.
    pub generation: usize,
    /// Cumulative candidate evaluations spent so far (across the whole run,
    /// including initialization).
    pub evaluations: usize,
    /// Size of the current non-dominated front.
    pub front_size: usize,
    /// Hypervolume of the current front against the driver's reference
    /// point. NaN when no hypervolume could be computed (empty front or more
    /// than three objectives).
    pub hypervolume: f64,
    /// Wall-clock time this generation's step took. Telemetry only — it
    /// never influences the search and is not part of any checkpoint.
    pub wall_clock: Duration,
}

/// A callback the driver notifies after every generation.
///
/// Observers are telemetry sinks: they receive each [`GenerationReport`] in
/// order but cannot influence the run (use
/// [`crate::engine::StoppingRule`]s to end it). They are intentionally not
/// part of [`crate::engine::RunCheckpoint`]s — re-attach them after
/// [`crate::engine::Driver::resume`]. `Send` is required so a driver with
/// observers attached can run on a worker thread while a consumer (e.g. the
/// `pathway` CLI draining a [`ChannelObserver`]) renders the telemetry
/// elsewhere.
pub trait Observer: Send {
    /// Called once after each completed generation, in generation order.
    fn on_generation(&mut self, report: &GenerationReport);
}

/// An observer that ignores every report. Useful as an explicit "no
/// telemetry" marker in configuration code.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_generation(&mut self, _report: &GenerationReport) {}
}

/// Logs a one-line summary of every `every`-th generation to stderr.
#[derive(Debug, Clone)]
pub struct LogObserver {
    every: usize,
}

impl LogObserver {
    /// Logs every `every`-th generation (and generation 1). An `every` of
    /// zero is treated as 1.
    pub fn new(every: usize) -> Self {
        LogObserver {
            every: every.max(1),
        }
    }
}

impl Default for LogObserver {
    /// Logs every generation.
    fn default() -> Self {
        LogObserver::new(1)
    }
}

impl Observer for LogObserver {
    fn on_generation(&mut self, report: &GenerationReport) {
        if report.generation == 1 || report.generation.is_multiple_of(self.every) {
            eprintln!(
                "[gen {:>5}] evals {:>8}  front {:>4}  hv {:.6e}  ({:.1?})",
                report.generation,
                report.evaluations,
                report.front_size,
                report.hypervolume,
                report.wall_clock
            );
        }
    }
}

/// Collects every [`GenerationReport`] of a run.
///
/// The observer is a cheap handle around shared storage, so keep a clone and
/// read the collected history back after the driver finishes:
///
/// ```
/// use pathway_moo::engine::{Driver, HistoryObserver, StoppingRule};
/// use pathway_moo::{Nsga2, Nsga2Config, problems::Schaffer};
///
/// let history = HistoryObserver::new();
/// let config = Nsga2Config { population_size: 16, ..Default::default() };
/// let mut driver = Driver::new(Nsga2::new(config, 1), &Schaffer)
///     .with_observer(history.clone())
///     .with_stopping(StoppingRule::MaxGenerations(5));
/// driver.run();
/// assert_eq!(history.reports().len(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HistoryObserver {
    reports: Arc<Mutex<Vec<GenerationReport>>>,
}

impl HistoryObserver {
    /// Creates an empty history.
    pub fn new() -> Self {
        HistoryObserver::default()
    }

    /// The reports collected so far, oldest first.
    pub fn reports(&self) -> Vec<GenerationReport> {
        self.reports
            .lock()
            .expect("history observer lock is never poisoned")
            .clone()
    }

    /// Number of reports collected so far.
    pub fn len(&self) -> usize {
        self.reports
            .lock()
            .expect("history observer lock is never poisoned")
            .len()
    }

    /// `true` if no generation has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Observer for HistoryObserver {
    fn on_generation(&mut self, report: &GenerationReport) {
        self.reports
            .lock()
            .expect("history observer lock is never poisoned")
            .push(report.clone());
    }
}

/// Streams every [`GenerationReport`] into an [`std::sync::mpsc`] channel.
///
/// This is the asynchronous observer sink: the driver (typically running on
/// a worker thread) stays decoupled from whoever renders the telemetry — a
/// CLI progress printer, a dashboard, a log shipper — which drains the
/// [`Receiver`] at its own pace. The channel is unbounded, so the driver
/// never blocks on a slow consumer, and a dropped receiver is tolerated:
/// reports are then silently discarded, because telemetry must never be able
/// to kill a run.
///
/// # Example
///
/// ```
/// use pathway_moo::engine::{ChannelObserver, Driver, StoppingRule};
/// use pathway_moo::{Nsga2, Nsga2Config, problems::Schaffer};
///
/// let (observer, reports) = ChannelObserver::channel();
/// let config = Nsga2Config { population_size: 16, ..Default::default() };
/// std::thread::scope(|scope| {
///     scope.spawn(move || {
///         Driver::new(Nsga2::new(config, 1), &Schaffer)
///             .with_observer(observer)
///             .with_stopping(StoppingRule::MaxGenerations(5))
///             .run();
///         // Dropping the driver (and with it the observer) closes the
///         // channel, ending the consumer's iteration below.
///     });
///     assert_eq!(reports.iter().count(), 5);
/// });
/// ```
#[derive(Debug)]
pub struct ChannelObserver {
    sender: Sender<GenerationReport>,
    disconnected: bool,
}

impl ChannelObserver {
    /// Creates a connected observer/receiver pair.
    pub fn channel() -> (Self, Receiver<GenerationReport>) {
        let (sender, receiver) = std::sync::mpsc::channel();
        (
            ChannelObserver {
                sender,
                disconnected: false,
            },
            receiver,
        )
    }

    /// `true` once a send has failed because the receiver was dropped.
    ///
    /// The observer itself keeps working (reports are discarded), but
    /// long-lived hosts — e.g. the `pathway serve` scheduler, which attaches
    /// one observer per `watch` client — use this to prune dead sinks
    /// instead of cloning reports for them forever.
    pub fn is_disconnected(&self) -> bool {
        self.disconnected
    }
}

impl Observer for ChannelObserver {
    fn on_generation(&mut self, report: &GenerationReport) {
        // A hung-up receiver is fine: the run outlives its telemetry sinks.
        // After the first failed send, skip even the report clone.
        if self.disconnected {
            return;
        }
        if self.sender.send(report.clone()).is_err() {
            self.disconnected = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(generation: usize) -> GenerationReport {
        GenerationReport {
            generation,
            evaluations: generation * 10,
            front_size: 4,
            hypervolume: 1.0,
            wall_clock: Duration::from_millis(1),
        }
    }

    #[test]
    fn history_handles_share_storage() {
        let history = HistoryObserver::new();
        let mut handle = history.clone();
        assert!(history.is_empty());
        handle.on_generation(&report(1));
        handle.on_generation(&report(2));
        assert_eq!(history.len(), 2);
        assert_eq!(history.reports()[1].generation, 2);
    }

    #[test]
    fn channel_observer_streams_reports_and_survives_a_dropped_receiver() {
        let (mut observer, receiver) = ChannelObserver::channel();
        observer.on_generation(&report(1));
        observer.on_generation(&report(2));
        assert_eq!(receiver.try_iter().count(), 2);
        assert!(!observer.is_disconnected());
        drop(receiver);
        // Telemetry must never kill the run: sends to a hung-up channel are
        // swallowed, and the hangup is latched for hosts that prune sinks.
        observer.on_generation(&report(3));
        assert!(observer.is_disconnected());
        observer.on_generation(&report(4));
        assert!(observer.is_disconnected());
    }

    #[test]
    fn driver_finishes_a_full_run_after_its_watcher_hangs_up() {
        // Regression for the serve scheduler's watch path: a client that
        // disconnects (drops its Receiver) before — or during — a run must
        // neither panic nor wedge the driver, and must not change the
        // trajectory.
        use crate::engine::{Driver, StoppingRule};
        use crate::problems::Schaffer;
        use crate::{Nsga2, Nsga2Config};

        let config = Nsga2Config {
            population_size: 16,
            ..Default::default()
        };
        let stop = StoppingRule::MaxGenerations(6);

        let (observer, receiver) = ChannelObserver::channel();
        drop(receiver); // client hung up before the run even started
        let mut watched = Driver::new(Nsga2::new(config, 7), &Schaffer)
            .with_observer(observer)
            .with_stopping(stop.clone());
        let watched_front = watched.run();
        assert_eq!(watched.generation(), 6);

        let mut unwatched = Driver::new(Nsga2::new(config, 7), &Schaffer).with_stopping(stop);
        let unwatched_front = unwatched.run();
        assert_eq!(watched_front, unwatched_front);
    }

    #[test]
    fn null_and_log_observers_accept_reports() {
        NullObserver.on_generation(&report(1));
        let mut log = LogObserver::new(0);
        log.on_generation(&report(1));
        let mut sparse = LogObserver::new(100);
        sparse.on_generation(&report(50)); // silently skipped
    }
}
