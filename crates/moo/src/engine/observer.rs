//! Per-generation telemetry for [`crate::engine::Driver`] runs.

use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What the driver learned from one completed generation.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationReport {
    /// 1-based index of the completed generation.
    pub generation: usize,
    /// Cumulative candidate evaluations spent so far (across the whole run,
    /// including initialization).
    pub evaluations: usize,
    /// Size of the current non-dominated front.
    pub front_size: usize,
    /// Hypervolume of the current front against the driver's reference
    /// point. NaN when no hypervolume could be computed (empty front or more
    /// than three objectives).
    pub hypervolume: f64,
    /// Wall-clock time this generation's step took. Telemetry only — it
    /// never influences the search and is not part of any checkpoint.
    pub wall_clock: Duration,
}

/// A callback the driver notifies after every generation.
///
/// Observers are telemetry sinks: they receive each [`GenerationReport`] in
/// order but cannot influence the run (use
/// [`crate::engine::StoppingRule`]s to end it). They are intentionally not
/// part of [`crate::engine::RunCheckpoint`]s — re-attach them after
/// [`crate::engine::Driver::resume`].
pub trait Observer {
    /// Called once after each completed generation, in generation order.
    fn on_generation(&mut self, report: &GenerationReport);
}

/// An observer that ignores every report. Useful as an explicit "no
/// telemetry" marker in configuration code.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_generation(&mut self, _report: &GenerationReport) {}
}

/// Logs a one-line summary of every `every`-th generation to stderr.
#[derive(Debug, Clone)]
pub struct LogObserver {
    every: usize,
}

impl LogObserver {
    /// Logs every `every`-th generation (and generation 1). An `every` of
    /// zero is treated as 1.
    pub fn new(every: usize) -> Self {
        LogObserver {
            every: every.max(1),
        }
    }
}

impl Default for LogObserver {
    /// Logs every generation.
    fn default() -> Self {
        LogObserver::new(1)
    }
}

impl Observer for LogObserver {
    fn on_generation(&mut self, report: &GenerationReport) {
        if report.generation == 1 || report.generation.is_multiple_of(self.every) {
            eprintln!(
                "[gen {:>5}] evals {:>8}  front {:>4}  hv {:.6e}  ({:.1?})",
                report.generation,
                report.evaluations,
                report.front_size,
                report.hypervolume,
                report.wall_clock
            );
        }
    }
}

/// Collects every [`GenerationReport`] of a run.
///
/// The observer is a cheap handle around shared storage, so keep a clone and
/// read the collected history back after the driver finishes:
///
/// ```
/// use pathway_moo::engine::{Driver, HistoryObserver, StoppingRule};
/// use pathway_moo::{Nsga2, Nsga2Config, problems::Schaffer};
///
/// let history = HistoryObserver::new();
/// let config = Nsga2Config { population_size: 16, ..Default::default() };
/// let mut driver = Driver::new(Nsga2::new(config, 1), &Schaffer)
///     .with_observer(history.clone())
///     .with_stopping(StoppingRule::MaxGenerations(5));
/// driver.run();
/// assert_eq!(history.reports().len(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HistoryObserver {
    reports: Arc<Mutex<Vec<GenerationReport>>>,
}

impl HistoryObserver {
    /// Creates an empty history.
    pub fn new() -> Self {
        HistoryObserver::default()
    }

    /// The reports collected so far, oldest first.
    pub fn reports(&self) -> Vec<GenerationReport> {
        self.reports
            .lock()
            .expect("history observer lock is never poisoned")
            .clone()
    }

    /// Number of reports collected so far.
    pub fn len(&self) -> usize {
        self.reports
            .lock()
            .expect("history observer lock is never poisoned")
            .len()
    }

    /// `true` if no generation has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Observer for HistoryObserver {
    fn on_generation(&mut self, report: &GenerationReport) {
        self.reports
            .lock()
            .expect("history observer lock is never poisoned")
            .push(report.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(generation: usize) -> GenerationReport {
        GenerationReport {
            generation,
            evaluations: generation * 10,
            front_size: 4,
            hypervolume: 1.0,
            wall_clock: Duration::from_millis(1),
        }
    }

    #[test]
    fn history_handles_share_storage() {
        let history = HistoryObserver::new();
        let mut handle = history.clone();
        assert!(history.is_empty());
        handle.on_generation(&report(1));
        handle.on_generation(&report(2));
        assert_eq!(history.len(), 2);
        assert_eq!(history.reports()[1].generation, 2);
    }

    #[test]
    fn null_and_log_observers_accept_reports() {
        NullObserver.on_generation(&report(1));
        let mut log = LogObserver::new(0);
        log.on_generation(&report(1));
        let mut sparse = LogObserver::new(100);
        sparse.on_generation(&report(50)); // silently skipped
    }
}
