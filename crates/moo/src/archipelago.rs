use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::telemetry::MetricsRegistry;
use crate::engine::{ArchipelagoState, EngineError, Optimizer, OptimizerState, RngState};
use crate::exec::Executor;
use crate::{EvalBackend, Individual, MultiObjectiveProblem, Nsga2, Nsga2Config, ParetoArchive};

/// Topology describing which islands exchange migrants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MigrationTopology {
    /// Every island broadcasts to every other island (the paper's
    /// configuration).
    #[default]
    Broadcast,
    /// Each island sends only to its successor in a ring. Exports are
    /// passed neighbor-to-neighbor by ownership instead of cloned all-pairs,
    /// so a migration event costs `islands` buffer moves rather than the
    /// `islands²` individual copies of [`MigrationTopology::Broadcast`] —
    /// the scalable choice for wide archipelagos.
    Ring,
    /// No migration at all; equivalent to independent restarts. Used by the
    /// ablation bench.
    Isolated,
}

/// Configuration of the PMO2 archipelago.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchipelagoConfig {
    /// Number of islands (the paper uses 2).
    pub islands: usize,
    /// NSGA-II configuration used on every island. `generations` here is the
    /// total evolution length of [`Archipelago::run`]. The evaluation backend
    /// is configured here too (`island_config.backend`): each island applies
    /// it to its own offspring batches, multiplying the coarse-grained island
    /// parallelism by fine-grained evaluation parallelism.
    pub island_config: Nsga2Config,
    /// Number of generations between migrations (the paper uses 200).
    pub migration_interval: usize,
    /// Probability that an island participates in a given migration event
    /// (the paper uses 0.5).
    pub migration_probability: f64,
    /// Migration topology.
    pub topology: MigrationTopology,
}

impl Default for ArchipelagoConfig {
    fn default() -> Self {
        ArchipelagoConfig {
            islands: 2,
            island_config: Nsga2Config::default(),
            migration_interval: 200,
            migration_probability: 0.5,
            topology: MigrationTopology::Broadcast,
        }
    }
}

/// The PMO2 archipelago: a pool of independently seeded NSGA-II islands that
/// periodically exchange non-dominated solutions.
///
/// The paper's reference configuration — two NSGA-II islands, all-to-all
/// (broadcast) migration every 200 generations with probability 0.5 — is the
/// default. The archipelago is step-driven: every [`Archipelago::step`]
/// advances each island by one generation (islands run on separate threads,
/// coarse-grained parallelism), and a migration event fires lazily at each
/// epoch boundary — i.e. before the first step of each new
/// `migration_interval`-generation epoch, which reproduces the classic
/// "migrate between epochs, but not after the last one" schedule while
/// making the archipelago driveable and checkpointable at *any* generation
/// by a [`crate::engine::Driver`]. Results are deterministic for a given
/// seed regardless of thread scheduling.
///
/// Migration exports are served incrementally from per-island
/// [`ParetoArchive`]s: at each migration event an island's current
/// non-dominated front (read straight from its rank bookkeeping, no
/// population clone or re-sort) is folded into its archive, and the archive
/// members — the island's best solutions across *all* epochs so far — are
/// what the other islands receive.
///
/// # Example
///
/// ```
/// use pathway_moo::{Archipelago, ArchipelagoConfig, Nsga2Config, problems::Schaffer};
///
/// let config = ArchipelagoConfig {
///     islands: 2,
///     island_config: Nsga2Config { population_size: 30, generations: 40, ..Default::default() },
///     migration_interval: 10,
///     ..Default::default()
/// };
/// let front = Archipelago::new(config, 7).run(&Schaffer);
/// assert!(!front.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Archipelago {
    config: ArchipelagoConfig,
    seed: u64,
    islands: Vec<Nsga2>,
    archives: Vec<ParetoArchive>,
    migration_rng: StdRng,
    generations_done: usize,
    /// One executor shared by every island, lazily built from
    /// `island_config.backend` (or injected via
    /// [`Archipelago::set_executor`]): the islands' offspring batches all
    /// feed the same worker pool instead of spawning one pool per island.
    /// Configuration, not run state — never checkpointed.
    executor: Option<Arc<Executor>>,
    /// Telemetry sink for migration timings; forwarded to every island so
    /// their variation/selection phases land in the same registry. Like
    /// the executor: observational only, never checkpointed.
    metrics: Option<MetricsRegistry>,
}

/// Alias emphasising that the archipelago with its default configuration *is*
/// the paper's PMO2 algorithm.
pub type Pmo2 = Archipelago;

impl Archipelago {
    /// Creates an archipelago with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests zero islands or a zero migration
    /// interval.
    pub fn new(config: ArchipelagoConfig, seed: u64) -> Self {
        assert!(config.islands > 0, "at least one island is required");
        assert!(
            config.migration_interval > 0,
            "migration interval must be positive"
        );
        let islands: Vec<Nsga2> = (0..config.islands)
            .map(|i| {
                let island_config = Nsga2Config {
                    // Islands are driven per generation by the archipelago;
                    // their own generation budget is unused.
                    generations: 0,
                    ..config.island_config
                };
                Nsga2::new(island_config, seed.wrapping_add(1 + i as u64))
            })
            .collect();
        let archive_capacity = config.island_config.population_size.max(1);
        Archipelago {
            config,
            seed,
            islands,
            archives: (0..config.islands)
                .map(|_| ParetoArchive::new(archive_capacity))
                .collect(),
            migration_rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9)),
            generations_done: 0,
            executor: None,
            metrics: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ArchipelagoConfig {
        &self.config
    }

    /// Installs a (usually shared) evaluation executor on the archipelago
    /// and every island, replacing the pool that would otherwise be built
    /// lazily from `island_config.backend`. The `pathway` CLI uses this to
    /// run a whole invocation — run or resume — on one pool. Executors only
    /// change where batches are evaluated, never their results.
    pub fn set_executor(&mut self, executor: Arc<Executor>) {
        for island in &mut self.islands {
            island.set_executor(Arc::clone(&executor));
        }
        self.executor = Some(executor);
    }

    /// Attaches one telemetry registry to the archipelago and every
    /// island. Islands step concurrently, so per-phase times recorded
    /// here are CPU time summed across islands and can exceed the
    /// generation's wall-clock. Observational only.
    pub fn set_metrics(&mut self, registry: MetricsRegistry) {
        for island in &mut self.islands {
            island.set_metrics(registry.clone());
        }
        self.metrics = Some(registry);
    }

    /// Ensures every island evaluates on one shared executor, building it
    /// from the island backend configuration on first need. Idempotent and
    /// cheap once installed.
    ///
    /// The lazily-built pool is sized for the archipelago's *total*
    /// evaluation parallelism — `islands × n` lanes for a `Threads(n)`
    /// island backend — because all islands step concurrently and feed the
    /// same pool; sizing it for a single island would serialize the
    /// islands' chunks behind `n` lanes and lose the coarse × fine
    /// parallelism the per-island configuration promises. (An explicitly
    /// injected executor is used as-is: its owner chose the width.)
    fn ensure_executor(&mut self) {
        if self.executor.is_some() {
            return;
        }
        let backend = match self.config.island_config.backend {
            EvalBackend::Threads(n) if n >= 2 => {
                EvalBackend::Threads(n.saturating_mul(self.config.islands.max(1)))
            }
            other => other,
        };
        let shared = Executor::shared(backend);
        self.set_executor(shared);
    }

    /// The seed this archipelago (and its islands) were derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of generations every island has completed.
    pub fn generations_done(&self) -> usize {
        self.generations_done
    }

    /// The islands, in index order.
    pub fn islands(&self) -> &[Nsga2] {
        &self.islands
    }

    /// Cumulative candidate evaluations spent across all islands.
    pub fn evaluations(&self) -> usize {
        self.islands.iter().map(Nsga2::evaluations).sum()
    }

    /// Initializes every island's population if that has not happened yet.
    /// Idempotent.
    pub fn initialize<P: MultiObjectiveProblem>(&mut self, problem: &P) {
        self.ensure_executor();
        if self
            .islands
            .iter()
            .all(|island| !island.population().is_empty())
        {
            return;
        }
        if self.islands.len() == 1 {
            self.islands[0].initialize(problem);
            return;
        }
        std::thread::scope(|scope| {
            for island in self.islands.iter_mut() {
                scope.spawn(move || island.initialize(problem));
            }
        });
    }

    /// Advances every island by one generation (in parallel), firing the
    /// migration event lazily at each epoch boundary first. Initializes the
    /// islands if needed.
    pub fn step<P: MultiObjectiveProblem>(&mut self, problem: &P) {
        self.initialize(problem);
        if self.generations_done > 0
            && self
                .generations_done
                .is_multiple_of(self.config.migration_interval)
        {
            self.migrate();
        }
        if self.islands.len() == 1 {
            self.islands[0].step(problem);
        } else {
            std::thread::scope(|scope| {
                for island in self.islands.iter_mut() {
                    scope.spawn(move || island.step(problem));
                }
            });
        }
        self.generations_done += 1;
    }

    /// Runs the configured number of generations
    /// (`island_config.generations`) and returns the merged non-dominated
    /// front across all islands. Continues from wherever previous `step` /
    /// `run` calls left the archipelago.
    pub fn run<P: MultiObjectiveProblem>(&mut self, problem: &P) -> Vec<Individual> {
        self.initialize(problem);
        for _ in 0..self.config.island_config.generations {
            self.step(problem);
        }
        self.front()
    }

    /// The merged non-dominated front across all islands' current
    /// populations, sorted by objectives and deduplicated (broadcast
    /// migration copies solutions between islands).
    ///
    /// Candidates are borrowed from the islands' rank bookkeeping and
    /// filtered pairwise, so only the surviving front members are cloned —
    /// this runs once per generation on observed [`crate::engine::Driver`]
    /// runs and must not re-sort or copy whole populations.
    pub fn front(&self) -> Vec<Individual> {
        let candidates: Vec<&Individual> = self
            .islands
            .iter()
            .flat_map(|island| island.population().iter().filter(|m| m.rank == 0))
            .collect();
        let mut front: Vec<Individual> = candidates
            .iter()
            .filter(|candidate| {
                !candidates
                    .iter()
                    .any(|other| crate::constrained_dominates(other, candidate))
            })
            .map(|candidate| (*candidate).clone())
            .collect();
        // Deduplicate identical objective vectors that may arise from broadcast copies.
        front.sort_by(|a, b| {
            a.objectives
                .partial_cmp(&b.objectives)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        front.dedup_by(|a, b| a.objectives == b.objectives);
        front
    }

    /// Performs one migration event according to the configured topology.
    ///
    /// Each island's export is its [`ParetoArchive`], refreshed with the
    /// island's current front first (the archive keeps the island's best
    /// feasible solutions across all epochs; if it is empty — e.g. every
    /// solution so far is infeasible — the current front is exported
    /// directly). Migrants are appended to the target populations in place
    /// (the residents are never copied), and every island that received
    /// migrants re-runs non-dominated sorting and crowding afterwards: the
    /// injected individuals carry `rank`/`crowding` computed on their
    /// *source* island, and the next generation's tournament selection reads
    /// those fields before any environmental selection runs.
    fn migrate(&mut self) {
        if matches!(self.config.topology, MigrationTopology::Isolated) || self.islands.len() < 2 {
            return;
        }
        let migration_started = Instant::now();
        // Refresh each island's archive with its current front, then export
        // the archive members.
        let exports: Vec<Vec<Individual>> = self
            .islands
            .iter()
            .zip(self.archives.iter_mut())
            .map(|(island, archive)| {
                let current_front = island.nondominated_front();
                // The archive can stay empty only if it was empty and every
                // candidate is infeasible; keep a fallback copy for exactly
                // that case instead of recomputing the front.
                let fallback = if archive.is_empty() {
                    current_front.clone()
                } else {
                    Vec::new()
                };
                archive.extend(current_front);
                if archive.is_empty() {
                    fallback
                } else {
                    archive.members().to_vec()
                }
            })
            .collect();

        let n = self.islands.len();
        let mut received = vec![false; n];
        let probability = self.config.migration_probability.clamp(0.0, 1.0);
        match self.config.topology {
            // Broadcast is inherently clone-heavy: every export is copied to
            // all n-1 other islands (n² individual copies in total).
            MigrationTopology::Broadcast => {
                for (source, export) in exports.iter().enumerate() {
                    if !self.migration_rng.gen_bool(probability) {
                        continue;
                    }
                    for (target, island) in self.islands.iter_mut().enumerate() {
                        if target == source {
                            continue;
                        }
                        island.inject_migrants(export.iter().cloned());
                        received[target] = true;
                    }
                }
            }
            // Each export has exactly one recipient (the ring successor), so
            // ownership of the export buffer is *moved* into the target
            // population — the only copies are the n archive reads above,
            // not the n² clones broadcast would pay.
            MigrationTopology::Ring => {
                for (source, export) in exports.into_iter().enumerate() {
                    if !self.migration_rng.gen_bool(probability) {
                        continue;
                    }
                    let target = (source + 1) % n;
                    self.islands[target].inject_migrants(export);
                    received[target] = true;
                }
            }
            MigrationTopology::Isolated => unreachable!("isolated returns early above"),
        }
        for (island, got_migrants) in self.islands.iter_mut().zip(received) {
            if got_migrants {
                island.refresh_ranks();
            }
        }
        if let Some(metrics) = &self.metrics {
            metrics.record_phase("migration", migration_started.elapsed());
        }
    }

    /// Captures the archipelago's run state (every island's snapshot, the
    /// migration archives and RNG, the generation counter) as plain data.
    pub(crate) fn snapshot(&self) -> ArchipelagoState {
        ArchipelagoState {
            islands: self.islands.iter().map(Nsga2::snapshot).collect(),
            archives: self
                .archives
                .iter()
                .map(|archive| archive.members().to_vec())
                .collect(),
            migration_rng: RngState::capture(&self.migration_rng),
            generations_done: self.generations_done,
        }
    }

    /// Restores a snapshot captured with [`Archipelago::snapshot`].
    pub(crate) fn restore_snapshot(&mut self, state: ArchipelagoState) -> Result<(), EngineError> {
        if state.islands.len() != self.islands.len() {
            return Err(EngineError::ConfigMismatch {
                detail: format!(
                    "snapshot has {} islands but this archipelago has {}",
                    state.islands.len(),
                    self.islands.len()
                ),
            });
        }
        if state.archives.len() != self.archives.len() {
            return Err(EngineError::ConfigMismatch {
                detail: format!(
                    "snapshot has {} archives but this archipelago has {}",
                    state.archives.len(),
                    self.archives.len()
                ),
            });
        }
        // Validate every island snapshot before touching any state, so a
        // rejected restore leaves the archipelago untouched.
        let expected = self.config.island_config.population_size;
        for (index, snapshot) in state.islands.iter().enumerate() {
            if !snapshot.population.is_empty() && snapshot.population.len() != expected {
                return Err(EngineError::ConfigMismatch {
                    detail: format!(
                        "island {index} snapshot holds {} individuals but the islands are \
                         configured for {expected}",
                        snapshot.population.len()
                    ),
                });
            }
        }
        for (island, snapshot) in self.islands.iter_mut().zip(state.islands) {
            island
                .restore_snapshot(snapshot)
                .expect("island snapshots were validated above");
        }
        let capacity = self.config.island_config.population_size.max(1);
        for (archive, members) in self.archives.iter_mut().zip(state.archives) {
            // Archive members are mutually non-dominated and feasible, so
            // re-inserting them in captured order reproduces the archive
            // bit for bit.
            let mut rebuilt = ParetoArchive::new(capacity);
            for member in members {
                rebuilt.insert(member);
            }
            *archive = rebuilt;
        }
        self.migration_rng = state.migration_rng.rebuild();
        self.generations_done = state.generations_done;
        Ok(())
    }
}

impl<P: MultiObjectiveProblem> Optimizer<P> for Archipelago {
    fn initialize(&mut self, problem: &P) {
        Archipelago::initialize(self, problem);
    }

    fn step(&mut self, problem: &P) {
        Archipelago::step(self, problem);
    }

    fn population(&self) -> Vec<Individual> {
        self.islands
            .iter()
            .flat_map(|island| island.population().members().iter().cloned())
            .collect()
    }

    fn front(&self) -> Vec<Individual> {
        Archipelago::front(self)
    }

    fn evaluations(&self) -> usize {
        Archipelago::evaluations(self)
    }

    fn state(&self) -> OptimizerState {
        OptimizerState::Archipelago(self.snapshot())
    }

    fn restore(&mut self, state: OptimizerState) -> Result<(), EngineError> {
        match state {
            OptimizerState::Archipelago(snapshot) => self.restore_snapshot(snapshot),
            other => Err(EngineError::StateMismatch {
                expected: "Archipelago",
                found: other.kind(),
            }),
        }
    }

    fn set_metrics(&mut self, registry: MetricsRegistry) {
        Archipelago::set_metrics(self, registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::dominates;
    use crate::metrics;
    use crate::problems::{Schaffer, Zdt1};

    fn config(islands: usize, generations: usize, interval: usize) -> ArchipelagoConfig {
        ArchipelagoConfig {
            islands,
            island_config: Nsga2Config {
                population_size: 30,
                generations,
                ..Default::default()
            },
            migration_interval: interval,
            migration_probability: 0.5,
            topology: MigrationTopology::Broadcast,
        }
    }

    #[test]
    fn pmo2_finds_the_schaffer_front() {
        let front = Archipelago::new(config(2, 40, 10), 42).run(&Schaffer);
        assert!(front.len() >= 10);
        for individual in &front {
            assert!(individual.variables[0] > -0.3 && individual.variables[0] < 2.3);
        }
    }

    #[test]
    fn merged_front_is_mutually_nondominating_and_deduplicated() {
        let front = Archipelago::new(config(3, 30, 10), 5).run(&Zdt1 { variables: 6 });
        for a in &front {
            for b in &front {
                assert!(!dominates(&a.objectives, &b.objectives) || a.objectives == b.objectives);
            }
        }
        for i in 1..front.len() {
            assert_ne!(front[i - 1].objectives, front[i].objectives);
        }
    }

    #[test]
    fn seeded_runs_are_reproducible_despite_threads() {
        let a = Archipelago::new(config(2, 20, 5), 9).run(&Schaffer);
        let b = Archipelago::new(config(2, 20, 5), 9).run(&Schaffer);
        assert_eq!(
            a.iter().map(|i| i.objectives.clone()).collect::<Vec<_>>(),
            b.iter().map(|i| i.objectives.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stepwise_run_matches_monolithic_run() {
        let monolithic = Archipelago::new(config(2, 15, 4), 31).run(&Schaffer);
        let mut stepped = Archipelago::new(config(2, 15, 4), 31);
        stepped.initialize(&Schaffer);
        for _ in 0..15 {
            stepped.step(&Schaffer);
        }
        assert_eq!(stepped.generations_done(), 15);
        assert_eq!(
            monolithic
                .iter()
                .map(|i| i.objectives.clone())
                .collect::<Vec<_>>(),
            stepped
                .front()
                .iter()
                .map(|i| i.objectives.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn migration_improves_over_isolated_islands_on_zdt1() {
        let problem = Zdt1 { variables: 12 };
        let base = config(2, 60, 15);
        let isolated = ArchipelagoConfig {
            topology: MigrationTopology::Isolated,
            ..base
        };
        let reference = [1.1, 1.1];
        // Average over a few seeds to keep the comparison statistically stable.
        let mut hv_migration = 0.0;
        let mut hv_isolated = 0.0;
        for seed in 0..3 {
            let with_migration = Archipelago::new(base, seed).run(&problem);
            let without = Archipelago::new(isolated, seed).run(&problem);
            hv_migration += metrics::hypervolume(
                &with_migration
                    .iter()
                    .map(|i| i.objectives.clone())
                    .collect::<Vec<_>>(),
                &reference,
            );
            hv_isolated += metrics::hypervolume(
                &without
                    .iter()
                    .map(|i| i.objectives.clone())
                    .collect::<Vec<_>>(),
                &reference,
            );
        }
        // Migration should not hurt; allow a small tolerance for stochastic noise.
        assert!(
            hv_migration >= hv_isolated - 0.05,
            "migration hv {hv_migration} fell well below isolated hv {hv_isolated}"
        );
    }

    #[test]
    fn ring_topology_runs() {
        let cfg = ArchipelagoConfig {
            topology: MigrationTopology::Ring,
            ..config(3, 20, 5)
        };
        let front = Archipelago::new(cfg, 3).run(&Schaffer);
        assert!(!front.is_empty());
    }

    #[test]
    fn ring_migration_moves_exports_to_the_successor_only() {
        // Probability 1 so every island participates in the event.
        let cfg = ArchipelagoConfig {
            islands: 3,
            island_config: Nsga2Config {
                population_size: 10,
                ..Default::default()
            },
            migration_interval: 4,
            migration_probability: 1.0,
            topology: MigrationTopology::Ring,
        };
        let mut archipelago = Archipelago::new(cfg, 17);
        archipelago.initialize(&Schaffer);
        for _ in 0..4 {
            archipelago.step(&Schaffer);
        }
        // The next step fires the lazy epoch-boundary migration.
        archipelago.migrate();
        // Every island exported its archive to exactly one successor, so
        // each population grew by its predecessor's archive size.
        for (index, island) in archipelago.islands().iter().enumerate() {
            let predecessor = (index + 2) % 3;
            let expected = 10 + archipelago.archives[predecessor].len();
            assert_eq!(
                island.population().len(),
                expected,
                "island {index} should hold its residents plus island {predecessor}'s archive"
            );
        }
    }

    #[test]
    fn ring_runs_are_deterministic() {
        let cfg = ArchipelagoConfig {
            topology: MigrationTopology::Ring,
            ..config(3, 18, 4)
        };
        let a = Archipelago::new(cfg, 11).run(&Schaffer);
        let b = Archipelago::new(cfg, 11).run(&Schaffer);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one island")]
    fn zero_islands_panics() {
        let _ = Archipelago::new(
            ArchipelagoConfig {
                islands: 0,
                ..Default::default()
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "migration interval must be positive")]
    fn zero_interval_panics() {
        let _ = Archipelago::new(
            ArchipelagoConfig {
                migration_interval: 0,
                ..Default::default()
            },
            0,
        );
    }
}
