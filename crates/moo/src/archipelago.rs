use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dominance::{fast_nondominated_sort_with, SortScratch};
use crate::{Individual, MultiObjectiveProblem, Nsga2, Nsga2Config};

/// Topology describing which islands exchange migrants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MigrationTopology {
    /// Every island broadcasts to every other island (the paper's
    /// configuration).
    #[default]
    Broadcast,
    /// Each island sends only to its successor in a ring.
    Ring,
    /// No migration at all; equivalent to independent restarts. Used by the
    /// ablation bench.
    Isolated,
}

/// Configuration of the PMO2 archipelago.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchipelagoConfig {
    /// Number of islands (the paper uses 2).
    pub islands: usize,
    /// NSGA-II configuration used on every island. `generations` here is the
    /// total evolution length of the archipelago. The evaluation backend is
    /// configured here too (`island_config.backend`): each island applies it
    /// to its own offspring batches, multiplying the coarse-grained island
    /// parallelism by fine-grained evaluation parallelism.
    pub island_config: Nsga2Config,
    /// Number of generations between migrations (the paper uses 200).
    pub migration_interval: usize,
    /// Probability that an island participates in a given migration event
    /// (the paper uses 0.5).
    pub migration_probability: f64,
    /// Migration topology.
    pub topology: MigrationTopology,
}

impl Default for ArchipelagoConfig {
    fn default() -> Self {
        ArchipelagoConfig {
            islands: 2,
            island_config: Nsga2Config::default(),
            migration_interval: 200,
            migration_probability: 0.5,
            topology: MigrationTopology::Broadcast,
        }
    }
}

/// The PMO2 archipelago: a pool of independently seeded NSGA-II islands that
/// periodically exchange non-dominated solutions.
///
/// The paper's reference configuration — two NSGA-II islands, all-to-all
/// (broadcast) migration every 200 generations with probability 0.5 — is the
/// default. Islands evolve on separate threads (coarse-grained parallelism)
/// and synchronize at every migration point, so the result is deterministic
/// for a given seed regardless of thread scheduling.
///
/// # Example
///
/// ```
/// use pathway_moo::{Archipelago, ArchipelagoConfig, Nsga2Config, problems::Schaffer};
///
/// let config = ArchipelagoConfig {
///     islands: 2,
///     island_config: Nsga2Config { population_size: 30, generations: 40, ..Default::default() },
///     migration_interval: 10,
///     ..Default::default()
/// };
/// let front = Archipelago::new(config, 7).run(&Schaffer);
/// assert!(!front.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Archipelago {
    config: ArchipelagoConfig,
    seed: u64,
}

/// Alias emphasising that the archipelago with its default configuration *is*
/// the paper's PMO2 algorithm.
pub type Pmo2 = Archipelago;

impl Archipelago {
    /// Creates an archipelago with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests zero islands or a zero migration
    /// interval.
    pub fn new(config: ArchipelagoConfig, seed: u64) -> Self {
        assert!(config.islands > 0, "at least one island is required");
        assert!(
            config.migration_interval > 0,
            "migration interval must be positive"
        );
        Archipelago { config, seed }
    }

    /// The configuration.
    pub fn config(&self) -> &ArchipelagoConfig {
        &self.config
    }

    /// Runs the archipelago and returns the merged non-dominated front across
    /// all islands.
    pub fn run<P: MultiObjectiveProblem>(&self, problem: &P) -> Vec<Individual> {
        let total_generations = self.config.island_config.generations;
        let mut islands: Vec<Nsga2> = (0..self.config.islands)
            .map(|i| {
                let island_config = Nsga2Config {
                    // Each island runs `migration_interval` generations per epoch.
                    generations: 0,
                    ..self.config.island_config
                };
                Nsga2::new(island_config, self.seed.wrapping_add(1 + i as u64))
            })
            .collect();
        let mut migration_rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9));

        let mut generations_done = 0;
        while generations_done < total_generations {
            let epoch = self
                .config
                .migration_interval
                .min(total_generations - generations_done);

            // Evolve every island for one epoch, in parallel.
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for island in islands.iter_mut() {
                    handles.push(scope.spawn(move || {
                        for _ in 0..epoch {
                            island.step(problem);
                        }
                    }));
                }
                for handle in handles {
                    handle.join().expect("island thread must not panic");
                }
            });
            generations_done += epoch;

            if generations_done < total_generations {
                self.migrate(&mut islands, &mut migration_rng);
            }
        }

        // Merge the islands' populations and extract the global front.
        let mut merged: Vec<Individual> = islands
            .iter()
            .flat_map(|island| island.nondominated_front())
            .collect();
        if merged.is_empty() {
            return merged;
        }
        let mut scratch = SortScratch::new();
        fast_nondominated_sort_with(&mut merged, &mut scratch);
        let mut front: Vec<Individual> = scratch
            .front(0)
            .iter()
            .map(|&i| merged[i].clone())
            .collect();
        // Deduplicate identical objective vectors that may arise from broadcast copies.
        front.sort_by(|a, b| {
            a.objectives
                .partial_cmp(&b.objectives)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        front.dedup_by(|a, b| a.objectives == b.objectives);
        front
    }

    /// Performs one migration event according to the configured topology.
    ///
    /// Migrants are appended to the target populations in place (the
    /// residents are never copied), and every island that received migrants
    /// re-runs non-dominated sorting and crowding afterwards: the injected
    /// individuals carry `rank`/`crowding` computed on their *source* island,
    /// and the next epoch's tournament selection reads those fields before
    /// any environmental selection runs.
    fn migrate(&self, islands: &mut [Nsga2], rng: &mut StdRng) {
        if matches!(self.config.topology, MigrationTopology::Isolated) || islands.len() < 2 {
            return;
        }
        // Snapshot each island's non-dominated set before mixing.
        let exports: Vec<Vec<Individual>> = islands
            .iter()
            .map(|island| island.nondominated_front())
            .collect();

        let n = islands.len();
        let mut received = vec![false; n];
        for (source, export) in exports.iter().enumerate() {
            if !rng.gen_bool(self.config.migration_probability.clamp(0.0, 1.0)) {
                continue;
            }
            let targets = match self.config.topology {
                MigrationTopology::Broadcast => 0..n,
                MigrationTopology::Ring => {
                    let next = (source + 1) % n;
                    next..next + 1
                }
                MigrationTopology::Isolated => 0..0,
            };
            for target in targets {
                if target == source {
                    continue;
                }
                islands[target].inject_migrants(export.iter().cloned());
                received[target] = true;
            }
        }
        for (island, got_migrants) in islands.iter_mut().zip(received) {
            if got_migrants {
                island.refresh_ranks();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::dominates;
    use crate::metrics;
    use crate::problems::{Schaffer, Zdt1};

    fn config(islands: usize, generations: usize, interval: usize) -> ArchipelagoConfig {
        ArchipelagoConfig {
            islands,
            island_config: Nsga2Config {
                population_size: 30,
                generations,
                ..Default::default()
            },
            migration_interval: interval,
            migration_probability: 0.5,
            topology: MigrationTopology::Broadcast,
        }
    }

    #[test]
    fn pmo2_finds_the_schaffer_front() {
        let front = Archipelago::new(config(2, 40, 10), 42).run(&Schaffer);
        assert!(front.len() >= 10);
        for individual in &front {
            assert!(individual.variables[0] > -0.3 && individual.variables[0] < 2.3);
        }
    }

    #[test]
    fn merged_front_is_mutually_nondominating_and_deduplicated() {
        let front = Archipelago::new(config(3, 30, 10), 5).run(&Zdt1 { variables: 6 });
        for a in &front {
            for b in &front {
                assert!(!dominates(&a.objectives, &b.objectives) || a.objectives == b.objectives);
            }
        }
        for i in 1..front.len() {
            assert_ne!(front[i - 1].objectives, front[i].objectives);
        }
    }

    #[test]
    fn seeded_runs_are_reproducible_despite_threads() {
        let a = Archipelago::new(config(2, 20, 5), 9).run(&Schaffer);
        let b = Archipelago::new(config(2, 20, 5), 9).run(&Schaffer);
        assert_eq!(
            a.iter().map(|i| i.objectives.clone()).collect::<Vec<_>>(),
            b.iter().map(|i| i.objectives.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn migration_improves_over_isolated_islands_on_zdt1() {
        let problem = Zdt1 { variables: 12 };
        let base = config(2, 60, 15);
        let isolated = ArchipelagoConfig {
            topology: MigrationTopology::Isolated,
            ..base
        };
        let reference = [1.1, 1.1];
        // Average over a few seeds to keep the comparison statistically stable.
        let mut hv_migration = 0.0;
        let mut hv_isolated = 0.0;
        for seed in 0..3 {
            let with_migration = Archipelago::new(base, seed).run(&problem);
            let without = Archipelago::new(isolated, seed).run(&problem);
            hv_migration += metrics::hypervolume(
                &with_migration
                    .iter()
                    .map(|i| i.objectives.clone())
                    .collect::<Vec<_>>(),
                &reference,
            );
            hv_isolated += metrics::hypervolume(
                &without
                    .iter()
                    .map(|i| i.objectives.clone())
                    .collect::<Vec<_>>(),
                &reference,
            );
        }
        // Migration should not hurt; allow a small tolerance for stochastic noise.
        assert!(
            hv_migration >= hv_isolated - 0.05,
            "migration hv {hv_migration} fell well below isolated hv {hv_isolated}"
        );
    }

    #[test]
    fn ring_topology_runs() {
        let cfg = ArchipelagoConfig {
            topology: MigrationTopology::Ring,
            ..config(3, 20, 5)
        };
        let front = Archipelago::new(cfg, 3).run(&Schaffer);
        assert!(!front.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one island")]
    fn zero_islands_panics() {
        let _ = Archipelago::new(
            ArchipelagoConfig {
                islands: 0,
                ..Default::default()
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "migration interval must be positive")]
    fn zero_interval_panics() {
        let _ = Archipelago::new(
            ArchipelagoConfig {
                migration_interval: 0,
                ..Default::default()
            },
            0,
        );
    }
}
