//! Multi-objective optimization framework reproducing the algorithmic
//! contribution of *Design of Robust Metabolic Pathways* (Umeton et al.,
//! DAC 2011).
//!
//! The crate contains:
//!
//! * [`MultiObjectiveProblem`] — the problem trait (box-bounded decision
//!   variables, any number of minimized objectives, optional constraint
//!   violation).
//! * [`engine`] — the step-driven engine: the [`Optimizer`] trait all three
//!   algorithms implement, and the generic [`Driver`] with per-generation
//!   [`Observer`]s, composable [`StoppingRule`]s and bit-identical
//!   checkpoint/resume.
//! * [`Nsga2`] — the Non-dominated Sorting Genetic Algorithm II of Deb et al.,
//!   the paper's island engine.
//! * [`Moead`] — MOEA/D with Tchebycheff decomposition (Zhang & Li), the
//!   paper's comparison baseline in Table 1.
//! * [`Archipelago`] / [`Pmo2`] — the island model with periodic migration
//!   that constitutes PMO2 (the paper's configuration: two NSGA-II islands,
//!   all-to-all migration every 200 generations with probability 0.5).
//! * [`EvalBackend`] / [`exec::Executor`] — batched candidate evaluation,
//!   serial or on a persistent worker pool; bit-identical to serial for a
//!   fixed seed.
//! * [`metrics`] — the hypervolume indicator and the paper's global/relative
//!   Pareto coverage metrics (Equations 1–2).
//! * [`mining`] — trade-off selection strategies: ideal point, Pareto Relative
//!   Minimum, closest-to-ideal and shadow minima (Section 2.2).
//! * [`robustness`] — the robustness condition ρ and uptake yield Γ with
//!   global and local Monte-Carlo ensembles (Section 2.3, Equations 3–4).
//! * [`problems`] — standard synthetic benchmark problems (ZDT1, Schaffer,
//!   a constrained variant) used by the test-suite and the benches.
//!
//! # Example
//!
//! ```
//! use pathway_moo::{Nsga2, Nsga2Config, problems::Schaffer};
//!
//! let config = Nsga2Config { population_size: 40, generations: 50, ..Default::default() };
//! let front = Nsga2::new(config, 42).run(&Schaffer);
//! assert!(!front.is_empty());
//! // Every solution on the Schaffer front has x in [0, 2].
//! for individual in &front {
//!     assert!(individual.variables[0] > -0.5 && individual.variables[0] < 2.5);
//! }
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod archipelago;
mod archive;
mod crowding;
mod dominance;
mod eval;
mod individual;
mod moead;
mod nsga2;
mod operators;
mod problem;

pub mod engine;
pub mod exec;
pub mod metrics;
pub mod mining;
pub mod problems;
pub mod robustness;

pub use archipelago::{Archipelago, ArchipelagoConfig, MigrationTopology, Pmo2};
pub use archive::ParetoArchive;
pub use crowding::assign_crowding_distance;
pub use dominance::{
    constrained_dominates, dominates, fast_nondominated_sort, fast_nondominated_sort_with,
    SortScratch,
};
pub use engine::{
    Driver, EngineError, GenerationReport, HistoryObserver, LogObserver, NullObserver, Observer,
    Optimizer, OptimizerState, RunCheckpoint, StoppingRule,
};
pub use eval::EvalBackend;
pub use exec::{Executor, ExecutorStats};
pub use individual::{Individual, Population};
pub use moead::{Moead, MoeadConfig};
pub use nsga2::{Nsga2, Nsga2Config};
pub use operators::{polynomial_mutation, sbx_crossover, tournament_select};
pub use problem::MultiObjectiveProblem;
