//! Quality indicators for Pareto fronts.
//!
//! Implements the three indicators the paper reports in Table 1:
//!
//! * the hypervolume indicator `V_p`,
//! * the global Pareto coverage `G_p` (Equation 1),
//! * the relative Pareto coverage `R_p` (Equation 2),
//!
//! plus the spacing metric used by the benches to quantify front spread.

use crate::dominance::nondominated_filter;

/// Hypervolume enclosed between a front and a reference point, for 2- or
/// 3-objective minimization fronts.
///
/// Points that do not dominate the reference point contribute nothing.
/// Dominated points of `front` are filtered out first, so the caller may pass
/// any point cloud.
///
/// # Panics
///
/// Panics if the number of objectives is not 2 or 3, or if points have
/// inconsistent lengths.
///
/// # Example
///
/// ```
/// use pathway_moo::metrics::hypervolume;
///
/// let front = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
/// let hv = hypervolume(&front, &[4.0, 4.0]);
/// assert!((hv - 6.0).abs() < 1e-12);
/// ```
pub fn hypervolume(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    if front.is_empty() {
        return 0.0;
    }
    let dim = reference.len();
    assert!(
        dim == 2 || dim == 3,
        "hypervolume supports 2 or 3 objectives, got {dim}"
    );
    for point in front {
        assert_eq!(
            point.len(),
            dim,
            "front points must match the reference length"
        );
    }
    let nondominated: Vec<Vec<f64>> = nondominated_filter(front)
        .into_iter()
        .filter(|p| p.iter().zip(reference).all(|(v, r)| v < r))
        .collect();
    if nondominated.is_empty() {
        return 0.0;
    }
    match dim {
        2 => hypervolume_2d(&nondominated, reference),
        _ => hypervolume_3d(&nondominated, reference),
    }
}

fn hypervolume_2d(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut sorted = front.to_vec();
    sorted.sort_by(|a, b| a[0].partial_cmp(&b[0]).expect("objectives are not NaN"));
    let mut volume = 0.0;
    let mut previous_f2 = reference[1];
    for point in &sorted {
        let width = reference[0] - point[0];
        let height = previous_f2 - point[1];
        if width > 0.0 && height > 0.0 {
            volume += width * height;
        }
        previous_f2 = previous_f2.min(point[1]);
    }
    volume
}

/// 3-D hypervolume by slicing along the third objective.
fn hypervolume_3d(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    // Collect distinct f3 slice boundaries.
    let mut levels: Vec<f64> = front.iter().map(|p| p[2]).collect();
    levels.sort_by(|a, b| a.partial_cmp(b).expect("objectives are not NaN"));
    levels.dedup();
    levels.push(reference[2]);

    let mut volume = 0.0;
    for w in 0..levels.len() - 1 {
        let z_low = levels[w];
        let z_high = levels[w + 1];
        let thickness = z_high - z_low;
        if thickness <= 0.0 {
            continue;
        }
        // All points with f3 <= z_low contribute to this slab.
        let slab: Vec<Vec<f64>> = front
            .iter()
            .filter(|p| p[2] <= z_low)
            .map(|p| vec![p[0], p[1]])
            .collect();
        if slab.is_empty() {
            continue;
        }
        let slab_front = nondominated_filter(&slab);
        volume += hypervolume_2d(&slab_front, &reference[..2]) * thickness;
    }
    volume
}

/// Union of several fronts, reduced to its non-dominated subset. This is the
/// paper's `P_A = ∪ P_i` global front.
pub fn union_front(fronts: &[Vec<Vec<f64>>]) -> Vec<Vec<f64>> {
    let mut all: Vec<Vec<f64>> = fronts.iter().flatten().cloned().collect();
    all.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    all.dedup();
    nondominated_filter(&all)
}

fn contains(front: &[Vec<f64>], point: &[f64]) -> bool {
    front
        .iter()
        .any(|p| p.len() == point.len() && p.iter().zip(point).all(|(a, b)| (a - b).abs() < 1e-12))
}

/// Global Pareto coverage `G_p(P_i, P_A)` (Equation 1): the fraction of the
/// global front `P_A` contributed by `P_i`.
///
/// Returns 0 when the global front is empty.
pub fn global_coverage(front: &[Vec<f64>], global_front: &[Vec<f64>]) -> f64 {
    if global_front.is_empty() {
        return 0.0;
    }
    let shared = global_front
        .iter()
        .filter(|point| contains(front, point))
        .count();
    shared as f64 / global_front.len() as f64
}

/// Relative Pareto coverage `R_p(P_i, P_A)` (Equation 2): the fraction of
/// `P_i` that is globally Pareto-optimal.
///
/// Returns 0 when `front` is empty.
pub fn relative_coverage(front: &[Vec<f64>], global_front: &[Vec<f64>]) -> f64 {
    if front.is_empty() {
        return 0.0;
    }
    let kept = front
        .iter()
        .filter(|point| contains(global_front, point))
        .count();
    kept as f64 / front.len() as f64
}

/// Schott's spacing metric: standard deviation of nearest-neighbour distances
/// along the front. Zero for a perfectly uniform spread; undefined (returns 0)
/// for fronts with fewer than 2 points.
pub fn spacing(front: &[Vec<f64>]) -> f64 {
    if front.len() < 2 {
        return 0.0;
    }
    let distances: Vec<f64> = front
        .iter()
        .map(|a| {
            front
                .iter()
                .filter(|b| !std::ptr::eq(a, *b))
                .map(|b| {
                    a.iter()
                        .zip(b.iter())
                        .map(|(x, y)| (x - y).abs())
                        .sum::<f64>()
                })
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let mean = distances.iter().sum::<f64>() / distances.len() as f64;
    let variance = distances
        .iter()
        .map(|d| (d - mean) * (d - mean))
        .sum::<f64>()
        / distances.len() as f64;
    variance.sqrt()
}

/// Inverted generational distance: mean distance from each reference-front
/// point to the closest point of `front`. Lower is better.
pub fn inverted_generational_distance(front: &[Vec<f64>], reference_front: &[Vec<f64>]) -> f64 {
    if reference_front.is_empty() || front.is_empty() {
        return f64::INFINITY;
    }
    let total: f64 = reference_front
        .iter()
        .map(|r| {
            front
                .iter()
                .map(|p| {
                    r.iter()
                        .zip(p.iter())
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt()
                })
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    total / reference_front.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hypervolume_of_a_single_point() {
        let hv = hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        assert!((hv - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_ignores_dominated_and_outside_points() {
        let front = vec![
            vec![1.0, 1.0],
            vec![2.0, 2.0],  // dominated
            vec![10.0, 0.5], // outside the reference box in f1
        ];
        let hv = hypervolume(&front, &[3.0, 3.0]);
        assert!((hv - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_of_staircase_front() {
        let front = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        // Rectangles: 3x1 + 2x1 + 1x1 = 6.
        assert!((hypervolume(&front, &[4.0, 4.0]) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_front_has_zero_hypervolume() {
        assert_eq!(hypervolume(&[], &[1.0, 1.0]), 0.0);
        assert_eq!(hypervolume(&[vec![5.0, 5.0]], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn hypervolume_3d_of_single_point() {
        let hv = hypervolume(&[vec![0.0, 0.0, 0.0]], &[1.0, 2.0, 3.0]);
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_3d_of_two_points_matches_inclusion_exclusion() {
        // Boxes [0,2]x[0,2]x[0,2] (8) and [1,2]^3 shifted... compute by hand:
        // p1 = (0,0,1): box to ref (2,2,2) is 2*2*1 = 4
        // p2 = (1,1,0): box is 1*1*2 = 2
        // overlap: (max 0..2 etc) intersection is 1*1*1 = 1 → total 5.
        let hv = hypervolume(
            &[vec![0.0, 0.0, 1.0], vec![1.0, 1.0, 0.0]],
            &[2.0, 2.0, 2.0],
        );
        assert!((hv - 5.0).abs() < 1e-9, "hv was {hv}");
    }

    #[test]
    #[should_panic(expected = "supports 2 or 3 objectives")]
    fn hypervolume_rejects_high_dimensions() {
        let _ = hypervolume(&[vec![0.0; 4]], &[1.0; 4]);
    }

    #[test]
    fn coverage_metrics_match_the_papers_definitions() {
        // Front A is globally optimal everywhere; front B is fully dominated.
        let front_a = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        let front_b = vec![vec![2.5, 3.5], vec![3.5, 2.5]];
        let global = union_front(&[front_a.clone(), front_b.clone()]);
        assert_eq!(global.len(), 3);
        assert!((global_coverage(&front_a, &global) - 1.0).abs() < 1e-12);
        assert_eq!(global_coverage(&front_b, &global), 0.0);
        assert!((relative_coverage(&front_a, &global) - 1.0).abs() < 1e-12);
        assert_eq!(relative_coverage(&front_b, &global), 0.0);
    }

    #[test]
    fn coverage_with_partial_overlap() {
        let front_a = vec![vec![1.0, 4.0], vec![3.0, 2.0]];
        let front_b = vec![vec![2.0, 3.0], vec![4.0, 1.0]];
        let global = union_front(&[front_a.clone(), front_b.clone()]);
        assert_eq!(global.len(), 4);
        assert!((global_coverage(&front_a, &global) - 0.5).abs() < 1e-12);
        assert!((relative_coverage(&front_b, &global) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_of_empty_fronts_is_zero() {
        assert_eq!(global_coverage(&[], &[vec![1.0, 1.0]]), 0.0);
        assert_eq!(relative_coverage(&[], &[vec![1.0, 1.0]]), 0.0);
        assert_eq!(global_coverage(&[vec![1.0, 1.0]], &[]), 0.0);
    }

    #[test]
    fn spacing_is_zero_for_uniform_fronts() {
        let uniform = vec![
            vec![0.0, 3.0],
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![3.0, 0.0],
        ];
        assert!(spacing(&uniform) < 1e-12);
        let uneven = vec![vec![0.0, 3.0], vec![0.1, 2.9], vec![3.0, 0.0]];
        assert!(spacing(&uneven) > 0.1);
        assert_eq!(spacing(&[vec![1.0, 1.0]]), 0.0);
    }

    #[test]
    fn igd_decreases_as_fronts_approach_the_reference() {
        let reference: Vec<Vec<f64>> = (0..11)
            .map(|i| {
                let f1 = i as f64 / 10.0;
                vec![f1, 1.0 - f1.sqrt()]
            })
            .collect();
        let far: Vec<Vec<f64>> = reference.iter().map(|p| vec![p[0], p[1] + 1.0]).collect();
        let near: Vec<Vec<f64>> = reference.iter().map(|p| vec![p[0], p[1] + 0.1]).collect();
        assert!(
            inverted_generational_distance(&near, &reference)
                < inverted_generational_distance(&far, &reference)
        );
        assert_eq!(
            inverted_generational_distance(&[], &reference),
            f64::INFINITY
        );
    }

    proptest! {
        #[test]
        fn prop_hypervolume_is_monotone_under_point_addition(
            x in 0.0f64..0.9,
            y in 0.0f64..0.9,
        ) {
            let base = vec![vec![0.5, 0.5]];
            let mut extended = base.clone();
            extended.push(vec![x, y]);
            let reference = [1.0, 1.0];
            prop_assert!(hypervolume(&extended, &reference) >= hypervolume(&base, &reference) - 1e-12);
        }

        #[test]
        fn prop_coverage_is_within_unit_interval(seed in 0u64..100) {
            let front_a: Vec<Vec<f64>> = (0..5)
                .map(|i| vec![(i as f64 + seed as f64 % 3.0), 5.0 - i as f64])
                .collect();
            let front_b: Vec<Vec<f64>> = (0..5)
                .map(|i| vec![(i as f64) + 0.5, 5.2 - i as f64])
                .collect();
            let global = union_front(&[front_a.clone(), front_b.clone()]);
            for front in [&front_a, &front_b] {
                let g = global_coverage(front, &global);
                let r = relative_coverage(front, &global);
                prop_assert!((0.0..=1.0).contains(&g));
                prop_assert!((0.0..=1.0).contains(&r));
            }
        }
    }
}
