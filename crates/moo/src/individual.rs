use crate::MultiObjectiveProblem;
use rand::Rng;

/// A candidate solution: decision variables plus cached evaluation results and
/// the bookkeeping fields used by NSGA-II.
#[derive(Debug, Clone, PartialEq)]
pub struct Individual {
    /// Decision variables.
    pub variables: Vec<f64>,
    /// Objective values (all minimized).
    pub objectives: Vec<f64>,
    /// Total constraint violation (`0.0` = feasible).
    pub violation: f64,
    /// Non-domination rank (0 = first front). Populated by the sorter.
    pub rank: usize,
    /// Crowding distance within its front. Populated by the crowding pass.
    pub crowding: f64,
}

/// Samples a decision vector uniformly within `bounds`, one `gen_range` draw
/// per non-degenerate variable. Pulled out of [`Individual::random`] so that
/// population initializers can sample every vector up front and evaluate the
/// whole batch through an [`crate::EvalBackend`] without changing the RNG
/// stream.
pub(crate) fn sample_within<R: Rng>(bounds: &[(f64, f64)], rng: &mut R) -> Vec<f64> {
    bounds
        .iter()
        .map(|&(lower, upper)| {
            if (upper - lower).abs() < f64::EPSILON {
                lower
            } else {
                rng.gen_range(lower..=upper)
            }
        })
        .collect()
}

impl Individual {
    /// Evaluates a decision vector against a problem.
    pub fn from_variables<P: MultiObjectiveProblem>(problem: &P, variables: Vec<f64>) -> Self {
        let objectives = problem.evaluate(&variables);
        let violation = problem.constraint_violation(&variables);
        Individual::from_evaluated(variables, objectives, violation)
    }

    /// Wraps an already-evaluated candidate (rank and crowding unassigned).
    /// This is how batch evaluation results re-enter the population.
    pub fn from_evaluated(variables: Vec<f64>, objectives: Vec<f64>, violation: f64) -> Self {
        Individual {
            variables,
            objectives,
            violation,
            rank: usize::MAX,
            crowding: 0.0,
        }
    }

    /// Samples a uniformly random individual within the problem bounds.
    pub fn random<P: MultiObjectiveProblem, R: Rng>(problem: &P, rng: &mut R) -> Self {
        let variables = sample_within(&problem.bounds(), rng);
        Individual::from_variables(problem, variables)
    }

    /// `true` if the individual satisfies every constraint.
    pub fn is_feasible(&self) -> bool {
        self.violation <= 0.0
    }
}

/// A population of individuals.
///
/// A thin wrapper over `Vec<Individual>` with the collection conveniences the
/// algorithms need.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Population {
    members: Vec<Individual>,
}

impl Population {
    /// Creates an empty population.
    pub fn new() -> Self {
        Population {
            members: Vec::new(),
        }
    }

    /// Creates a population of `size` random individuals.
    pub fn random<P: MultiObjectiveProblem, R: Rng>(problem: &P, size: usize, rng: &mut R) -> Self {
        Population {
            members: (0..size)
                .map(|_| Individual::random(problem, rng))
                .collect(),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the population has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Immutable member access.
    pub fn members(&self) -> &[Individual] {
        &self.members
    }

    /// Mutable member access.
    pub fn members_mut(&mut self) -> &mut [Individual] {
        &mut self.members
    }

    /// Adds an individual.
    pub fn push(&mut self, individual: Individual) {
        self.members.push(individual);
    }

    /// Iterator over the members.
    pub fn iter(&self) -> std::slice::Iter<'_, Individual> {
        self.members.iter()
    }

    /// Extracts the objective vectors of every member.
    pub fn objective_matrix(&self) -> Vec<Vec<f64>> {
        self.members.iter().map(|m| m.objectives.clone()).collect()
    }

    /// Consumes the population, returning its members without copying them.
    pub fn into_members(self) -> Vec<Individual> {
        self.members
    }
}

impl From<Vec<Individual>> for Population {
    fn from(members: Vec<Individual>) -> Self {
        Population { members }
    }
}

impl FromIterator<Individual> for Population {
    fn from_iter<T: IntoIterator<Item = Individual>>(iter: T) -> Self {
        Population {
            members: iter.into_iter().collect(),
        }
    }
}

impl Extend<Individual> for Population {
    fn extend<T: IntoIterator<Item = Individual>>(&mut self, iter: T) {
        self.members.extend(iter);
    }
}

impl IntoIterator for Population {
    type Item = Individual;
    type IntoIter = std::vec::IntoIter<Individual>;

    fn into_iter(self) -> Self::IntoIter {
        self.members.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{BinhKorn, Schaffer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_variables_caches_objectives_and_violation() {
        let ind = Individual::from_variables(&Schaffer, vec![1.0]);
        assert_eq!(ind.objectives, vec![1.0, 1.0]);
        assert!(ind.is_feasible());
        let infeasible = Individual::from_variables(&BinhKorn, vec![0.0, 3.0]);
        assert!(!infeasible.is_feasible());
    }

    #[test]
    fn random_individuals_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let ind = Individual::random(&Schaffer, &mut rng);
            assert!(ind.variables[0] >= -5.0 && ind.variables[0] <= 5.0);
        }
    }

    #[test]
    fn random_population_has_requested_size_and_is_varied() {
        let mut rng = StdRng::seed_from_u64(1);
        let pop = Population::random(&Schaffer, 20, &mut rng);
        assert_eq!(pop.len(), 20);
        let first = &pop.members()[0].variables;
        assert!(pop.iter().any(|m| m.variables != *first));
    }

    #[test]
    fn population_collection_traits() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Individual::random(&Schaffer, &mut rng);
        let b = Individual::random(&Schaffer, &mut rng);
        let mut pop: Population = vec![a].into_iter().collect();
        pop.extend(vec![b]);
        assert_eq!(pop.len(), 2);
        assert_eq!(pop.objective_matrix().len(), 2);
        let back: Vec<Individual> = pop.into_iter().collect();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn fixed_bound_variable_is_handled() {
        struct Pinned;
        impl MultiObjectiveProblem for Pinned {
            fn num_variables(&self) -> usize {
                2
            }
            fn num_objectives(&self) -> usize {
                2
            }
            fn bounds(&self) -> Vec<(f64, f64)> {
                vec![(0.45, 0.45), (0.0, 1.0)]
            }
            fn evaluate(&self, x: &[f64]) -> Vec<f64> {
                vec![x[0], x[1]]
            }
        }
        let mut rng = StdRng::seed_from_u64(9);
        let ind = Individual::random(&Pinned, &mut rng);
        assert_eq!(ind.variables[0], 0.45);
    }
}
