//! Synthetic benchmark problems with known Pareto fronts.
//!
//! These are used by this crate's tests, by the workspace's property tests and
//! by the Criterion benches, so they are part of the public API.

use crate::MultiObjectiveProblem;

/// Schaffer's single-variable problem: minimize `(x², (x-2)²)` over
/// `x ∈ [-5, 5]`. The Pareto set is `x ∈ [0, 2]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Schaffer;

impl MultiObjectiveProblem for Schaffer {
    fn num_variables(&self) -> usize {
        1
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn bounds(&self) -> Vec<(f64, f64)> {
        vec![(-5.0, 5.0)]
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        vec![x[0] * x[0], (x[0] - 2.0) * (x[0] - 2.0)]
    }
    fn name(&self) -> &str {
        "schaffer"
    }
}

/// The ZDT1 problem: `n` variables in `[0, 1]`, convex Pareto front
/// `f2 = 1 - sqrt(f1)` at `x_2..x_n = 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zdt1 {
    /// Number of decision variables (at least 2; the classic setting is 30).
    pub variables: usize,
}

impl Default for Zdt1 {
    fn default() -> Self {
        Zdt1 { variables: 30 }
    }
}

impl MultiObjectiveProblem for Zdt1 {
    fn num_variables(&self) -> usize {
        self.variables
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn bounds(&self) -> Vec<(f64, f64)> {
        vec![(0.0, 1.0); self.variables]
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        let f1 = x[0];
        let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (self.variables as f64 - 1.0);
        let f2 = g * (1.0 - (f1 / g).sqrt());
        vec![f1, f2]
    }
    fn name(&self) -> &str {
        "zdt1"
    }
}

/// ZDT2: like ZDT1 but with a concave front `f2 = 1 - f1²`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zdt2 {
    /// Number of decision variables (at least 2; the classic setting is 30).
    pub variables: usize,
}

impl Default for Zdt2 {
    fn default() -> Self {
        Zdt2 { variables: 30 }
    }
}

impl MultiObjectiveProblem for Zdt2 {
    fn num_variables(&self) -> usize {
        self.variables
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn bounds(&self) -> Vec<(f64, f64)> {
        vec![(0.0, 1.0); self.variables]
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        let f1 = x[0];
        let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (self.variables as f64 - 1.0);
        let f2 = g * (1.0 - (f1 / g).powi(2));
        vec![f1, f2]
    }
    fn name(&self) -> &str {
        "zdt2"
    }
}

/// Binh and Korn's constrained problem: two variables, two objectives, two
/// constraints. Used to exercise constrained-domination.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinhKorn;

impl MultiObjectiveProblem for BinhKorn {
    fn num_variables(&self) -> usize {
        2
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn bounds(&self) -> Vec<(f64, f64)> {
        vec![(0.0, 5.0), (0.0, 3.0)]
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        let f1 = 4.0 * x[0] * x[0] + 4.0 * x[1] * x[1];
        let f2 = (x[0] - 5.0).powi(2) + (x[1] - 5.0).powi(2);
        vec![f1, f2]
    }
    fn constraint_violation(&self, x: &[f64]) -> f64 {
        // (x1-5)^2 + x2^2 <= 25  and  (x1-8)^2 + (x2+3)^2 >= 7.7
        let g1 = (x[0] - 5.0).powi(2) + x[1] * x[1] - 25.0;
        let g2 = 7.7 - ((x[0] - 8.0).powi(2) + (x[1] + 3.0).powi(2));
        g1.max(0.0) + g2.max(0.0)
    }
    fn name(&self) -> &str {
        "binh-korn"
    }
}

/// A three-objective variant of the DTLZ2 problem with a spherical front, used
/// to exercise the 3-D hypervolume and the Pareto-surface analysis of the
/// paper's Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dtlz2 {
    /// Number of decision variables (at least 3).
    pub variables: usize,
}

impl Default for Dtlz2 {
    fn default() -> Self {
        Dtlz2 { variables: 7 }
    }
}

impl MultiObjectiveProblem for Dtlz2 {
    fn num_variables(&self) -> usize {
        self.variables
    }
    fn num_objectives(&self) -> usize {
        3
    }
    fn bounds(&self) -> Vec<(f64, f64)> {
        vec![(0.0, 1.0); self.variables]
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        use std::f64::consts::FRAC_PI_2;
        let g: f64 = x[2..].iter().map(|v| (v - 0.5) * (v - 0.5)).sum();
        let f1 = (1.0 + g) * (x[0] * FRAC_PI_2).cos() * (x[1] * FRAC_PI_2).cos();
        let f2 = (1.0 + g) * (x[0] * FRAC_PI_2).cos() * (x[1] * FRAC_PI_2).sin();
        let f3 = (1.0 + g) * (x[0] * FRAC_PI_2).sin();
        vec![f1, f2, f3]
    }
    fn name(&self) -> &str {
        "dtlz2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schaffer_pareto_set_is_zero_to_two() {
        let ideal_left = Schaffer.evaluate(&[0.0]);
        let ideal_right = Schaffer.evaluate(&[2.0]);
        assert_eq!(ideal_left, vec![0.0, 4.0]);
        assert_eq!(ideal_right, vec![4.0, 0.0]);
    }

    #[test]
    fn zdt1_front_is_reached_at_zero_tail() {
        let problem = Zdt1 { variables: 5 };
        let x = [0.25, 0.0, 0.0, 0.0, 0.0];
        let f = problem.evaluate(&x);
        assert!((f[1] - (1.0 - 0.25f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn zdt2_front_is_concave() {
        let problem = Zdt2 { variables: 4 };
        let f = problem.evaluate(&[0.5, 0.0, 0.0, 0.0]);
        assert!((f[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn binh_korn_violation_detects_infeasible_points() {
        assert_eq!(BinhKorn.constraint_violation(&[2.0, 2.0]), 0.0);
        assert!(BinhKorn.constraint_violation(&[0.0, 3.0]) > 0.0);
    }

    #[test]
    fn dtlz2_front_is_the_unit_sphere() {
        let problem = Dtlz2 { variables: 7 };
        let x = [0.3, 0.7, 0.5, 0.5, 0.5, 0.5, 0.5];
        let f = problem.evaluate(&x);
        let radius: f64 = f.iter().map(|v| v * v).sum::<f64>();
        assert!((radius - 1.0).abs() < 1e-9);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Schaffer.name(), "schaffer");
        assert_eq!(Zdt1::default().name(), "zdt1");
        assert_eq!(Dtlz2::default().name(), "dtlz2");
    }
}
