//! Robustness analysis (Section 2.3 of the paper).
//!
//! Robustness is the persistence of a system property under perturbation. For
//! an enzyme partition `x̄` and a property function `f` (the CO₂ uptake), the
//! paper defines:
//!
//! * the robustness condition `ρ(x̄, x̄*, f, ε) = 1` iff `|f(x̄) − f(x̄*)| ≤ ε`
//!   (Equation 3), where `x̄*` is a perturbed copy and `ε` is a percentage of
//!   the nominal value;
//! * the yield `Γ(x̄, f, ε)` — the fraction of a Monte-Carlo ensemble `T` of
//!   perturbed copies that satisfies `ρ` (Equation 4).
//!
//! The ensembles follow the paper's protocol: a **global** analysis perturbs
//! every variable simultaneously (5·10³ trials by default) and a **local**
//! analysis perturbs one variable at a time (200 trials per variable), both
//! with a maximum perturbation of ±10% and ε = 5% of the nominal value.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Settings of a robustness analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessOptions {
    /// Maximum relative perturbation per variable (the paper uses 0.10).
    pub perturbation: f64,
    /// Robustness threshold ε as a fraction of the nominal property value
    /// (the paper uses 0.05).
    pub epsilon_fraction: f64,
    /// Ensemble size for the global analysis (the paper uses 5000).
    pub global_trials: usize,
    /// Trials per variable for the local analysis (the paper uses 200).
    pub local_trials: usize,
    /// RNG seed so analyses are reproducible.
    pub seed: u64,
}

impl Default for RobustnessOptions {
    fn default() -> Self {
        RobustnessOptions {
            perturbation: 0.10,
            epsilon_fraction: 0.05,
            global_trials: 5_000,
            local_trials: 200,
            seed: 0xB10_C0DE,
        }
    }
}

/// Result of a robustness (yield) analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessReport {
    /// Nominal property value `f(x̄)`.
    pub nominal: f64,
    /// Yield Γ in `[0, 1]`: fraction of perturbed copies within ε of nominal.
    pub yield_fraction: f64,
    /// Number of trials evaluated.
    pub trials: usize,
    /// Per-variable yields (only populated by the local analysis).
    pub per_variable_yield: Vec<f64>,
}

impl RobustnessReport {
    /// Yield expressed as a percentage, as reported in the paper's Table 2.
    pub fn yield_percent(&self) -> f64 {
        self.yield_fraction * 100.0
    }
}

/// The robustness condition ρ (Equation 3): `1` if the perturbed property
/// value stays within `epsilon` of the nominal value, else `0`.
///
/// # Example
///
/// ```
/// use pathway_moo::robustness::robustness_condition;
///
/// assert_eq!(robustness_condition(10.0, 10.3, 0.5), 1);
/// assert_eq!(robustness_condition(10.0, 11.0, 0.5), 0);
/// ```
pub fn robustness_condition(nominal: f64, perturbed: f64, epsilon: f64) -> u8 {
    u8::from((nominal - perturbed).abs() <= epsilon)
}

/// Global robustness analysis: every variable of `x` is perturbed
/// simultaneously by a uniform factor in `[1 - perturbation, 1 + perturbation]`
/// and the yield Γ (Equation 4) is estimated over the ensemble.
///
/// `property` maps a decision vector to the scalar property of interest (the
/// CO₂ uptake in the paper).
pub fn global_yield<F>(x: &[f64], property: F, options: &RobustnessOptions) -> RobustnessReport
where
    F: Fn(&[f64]) -> f64,
{
    let nominal = property(x);
    let epsilon = options.epsilon_fraction * nominal.abs();
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut robust = 0usize;
    let mut perturbed = x.to_vec();
    for _ in 0..options.global_trials {
        for (value, &original) in perturbed.iter_mut().zip(x.iter()) {
            let factor = 1.0 + rng.gen_range(-options.perturbation..=options.perturbation);
            *value = original * factor;
        }
        let value = property(&perturbed);
        robust += robustness_condition(nominal, value, epsilon) as usize;
    }
    RobustnessReport {
        nominal,
        yield_fraction: robust as f64 / options.global_trials.max(1) as f64,
        trials: options.global_trials,
        per_variable_yield: Vec::new(),
    }
}

/// Local robustness analysis: one variable at a time is perturbed
/// (`local_trials` times each); the report contains both the per-variable
/// yields and their mean as the overall yield.
pub fn local_yield<F>(x: &[f64], property: F, options: &RobustnessOptions) -> RobustnessReport
where
    F: Fn(&[f64]) -> f64,
{
    let nominal = property(x);
    let epsilon = options.epsilon_fraction * nominal.abs();
    let mut rng = StdRng::seed_from_u64(options.seed.wrapping_add(1));
    let mut per_variable_yield = Vec::with_capacity(x.len());
    let mut perturbed = x.to_vec();
    for variable in 0..x.len() {
        let mut robust = 0usize;
        for _ in 0..options.local_trials {
            let factor = 1.0 + rng.gen_range(-options.perturbation..=options.perturbation);
            perturbed[variable] = x[variable] * factor;
            let value = property(&perturbed);
            robust += robustness_condition(nominal, value, epsilon) as usize;
        }
        perturbed[variable] = x[variable];
        per_variable_yield.push(robust as f64 / options.local_trials.max(1) as f64);
    }
    let mean_yield = if per_variable_yield.is_empty() {
        0.0
    } else {
        per_variable_yield.iter().sum::<f64>() / per_variable_yield.len() as f64
    };
    RobustnessReport {
        nominal,
        yield_fraction: mean_yield,
        trials: options.local_trials * x.len(),
        per_variable_yield,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options(global: usize, local: usize) -> RobustnessOptions {
        RobustnessOptions {
            global_trials: global,
            local_trials: local,
            ..Default::default()
        }
    }

    #[test]
    fn rho_matches_equation_3() {
        assert_eq!(robustness_condition(100.0, 104.9, 5.0), 1);
        assert_eq!(robustness_condition(100.0, 105.1, 5.0), 0);
        assert_eq!(robustness_condition(100.0, 95.0, 5.0), 1);
    }

    #[test]
    fn a_flat_property_is_perfectly_robust() {
        let report = global_yield(&[1.0, 2.0, 3.0], |_| 42.0, &options(500, 50));
        assert_eq!(report.yield_fraction, 1.0);
        assert_eq!(report.nominal, 42.0);
        assert_eq!(report.trials, 500);
    }

    #[test]
    fn a_knife_edge_property_is_fragile() {
        // The property jumps by 100% for any perturbation of x[0].
        let property = |x: &[f64]| if (x[0] - 1.0).abs() < 1e-12 { 1.0 } else { 2.0 };
        let report = global_yield(&[1.0, 1.0], property, &options(500, 50));
        assert!(report.yield_fraction < 0.05);
    }

    #[test]
    fn smooth_property_yield_reflects_sensitivity() {
        // f = 10 + x0: a ±10% perturbation of x0=10 moves f by ±1 out of 20,
        // i.e. ±5%; roughly half the trials fall inside the ε = 5% band...
        // actually |Δf| ≤ 1 = ε exactly, so every trial is robust.
        let gentle = global_yield(&[10.0], |x: &[f64]| 10.0 + x[0], &options(2000, 50));
        assert!(gentle.yield_fraction > 0.99);
        // f = x0 alone: a ±10% perturbation moves f by up to ±10% > 5%,
        // and the yield drops to about one half.
        let steep = global_yield(&[10.0], |x: &[f64]| x[0], &options(2000, 50));
        assert!(steep.yield_fraction > 0.3 && steep.yield_fraction < 0.7);
    }

    #[test]
    fn local_analysis_identifies_the_sensitive_variable() {
        // Only x[0] matters; x[1] is inert.
        let property = |x: &[f64]| 10.0 * x[0];
        let report = local_yield(&[1.0, 1.0], property, &options(100, 400));
        assert_eq!(report.per_variable_yield.len(), 2);
        assert!(report.per_variable_yield[1] > 0.99);
        assert!(report.per_variable_yield[0] < report.per_variable_yield[1]);
        assert_eq!(report.trials, 800);
    }

    #[test]
    fn yield_percent_is_scaled() {
        let report = RobustnessReport {
            nominal: 1.0,
            yield_fraction: 0.67,
            trials: 100,
            per_variable_yield: vec![],
        };
        assert!((report.yield_percent() - 67.0).abs() < 1e-12);
    }

    #[test]
    fn analyses_are_reproducible_for_a_fixed_seed() {
        let property = |x: &[f64]| x.iter().sum::<f64>();
        let a = global_yield(&[1.0, 2.0], property, &options(300, 50));
        let b = global_yield(&[1.0, 2.0], property, &options(300, 50));
        assert_eq!(a.yield_fraction, b.yield_fraction);
    }

    #[test]
    fn default_options_match_the_paper_protocol() {
        let defaults = RobustnessOptions::default();
        assert_eq!(defaults.perturbation, 0.10);
        assert_eq!(defaults.epsilon_fraction, 0.05);
        assert_eq!(defaults.global_trials, 5_000);
        assert_eq!(defaults.local_trials, 200);
    }
}
