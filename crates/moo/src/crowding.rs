use crate::Individual;

/// Assigns the NSGA-II crowding distance to every individual of one front.
///
/// `front` holds indices into `individuals`. Boundary solutions of each
/// objective receive an infinite distance so they are always preserved; the
/// others receive the normalized side length of the cuboid formed by their
/// nearest neighbours along each objective.
///
/// This convenience wrapper allocates a fresh index buffer per call; hot
/// paths that assign crowding every generation should reuse the buffers
/// folded into [`crate::SortScratch`] via
/// [`crate::SortScratch::assign_crowding`].
pub fn assign_crowding_distance(individuals: &mut [Individual], front: &[usize]) {
    let mut order = Vec::new();
    assign_crowding_with_order(individuals, front, &mut order);
}

/// Crowding assignment over a reusable index buffer: `order` is cleared,
/// refilled from `front` and sorted once per objective, so after the first
/// call at a given front size the assignment performs no allocations.
///
/// Exact objective ties are broken by front position, which reproduces a
/// stable sort of the front order while keeping the sort allocation-free
/// (`sort_unstable_by`).
///
/// # Panics
///
/// Panics if any compared objective value is NaN.
pub(crate) fn assign_crowding_with_order(
    individuals: &mut [Individual],
    front: &[usize],
    order: &mut Vec<u32>,
) {
    if front.is_empty() {
        return;
    }
    for &i in front {
        individuals[i].crowding = 0.0;
    }
    if front.len() <= 2 {
        for &i in front {
            individuals[i].crowding = f64::INFINITY;
        }
        return;
    }
    let num_objectives = individuals[front[0]].objectives.len();
    for m in 0..num_objectives {
        order.clear();
        order.extend(0..front.len() as u32);
        order.sort_unstable_by(|&a, &b| {
            individuals[front[a as usize]].objectives[m]
                .partial_cmp(&individuals[front[b as usize]].objectives[m])
                .expect("objective values must not be NaN")
                .then_with(|| a.cmp(&b))
        });
        let first = front[order[0] as usize];
        let last = front[order[order.len() - 1] as usize];
        let min = individuals[first].objectives[m];
        let max = individuals[last].objectives[m];
        let range = (max - min).max(f64::EPSILON);

        individuals[first].crowding = f64::INFINITY;
        individuals[last].crowding = f64::INFINITY;
        for w in 1..order.len() - 1 {
            let previous = individuals[front[order[w - 1] as usize]].objectives[m];
            let next = individuals[front[order[w + 1] as usize]].objectives[m];
            let current = front[order[w] as usize];
            if individuals[current].crowding.is_finite() {
                individuals[current].crowding += (next - previous) / range;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn individual(objectives: Vec<f64>) -> Individual {
        Individual {
            variables: vec![],
            objectives,
            violation: 0.0,
            rank: 0,
            crowding: 0.0,
        }
    }

    #[test]
    fn boundary_points_get_infinite_distance() {
        let mut individuals = vec![
            individual(vec![0.0, 10.0]),
            individual(vec![5.0, 5.0]),
            individual(vec![10.0, 0.0]),
        ];
        let front = vec![0, 1, 2];
        assign_crowding_distance(&mut individuals, &front);
        assert!(individuals[0].crowding.is_infinite());
        assert!(individuals[2].crowding.is_infinite());
        assert!(individuals[1].crowding.is_finite());
        assert!(individuals[1].crowding > 0.0);
    }

    #[test]
    fn crowded_points_score_lower_than_isolated_ones() {
        // Points at f1 = 0, 1, 1.1, 5, 10 on a line f2 = -f1.
        let mut individuals = vec![
            individual(vec![0.0, 0.0]),
            individual(vec![1.0, -1.0]),
            individual(vec![1.1, -1.1]),
            individual(vec![5.0, -5.0]),
            individual(vec![10.0, -10.0]),
        ];
        let front = vec![0, 1, 2, 3, 4];
        assign_crowding_distance(&mut individuals, &front);
        // Index 2 is crowded between 1 and 5; index 3 is isolated.
        assert!(individuals[3].crowding > individuals[2].crowding);
    }

    #[test]
    fn tiny_fronts_are_all_boundary() {
        let mut individuals = vec![individual(vec![1.0, 2.0]), individual(vec![2.0, 1.0])];
        assign_crowding_distance(&mut individuals, &[0, 1]);
        assert!(individuals[0].crowding.is_infinite());
        assert!(individuals[1].crowding.is_infinite());
    }

    #[test]
    fn empty_front_is_a_noop() {
        let mut individuals: Vec<Individual> = vec![];
        assign_crowding_distance(&mut individuals, &[]);
    }

    #[test]
    fn degenerate_objective_range_does_not_blow_up() {
        let mut individuals = vec![
            individual(vec![1.0, 3.0]),
            individual(vec![1.0, 2.0]),
            individual(vec![1.0, 1.0]),
        ];
        assign_crowding_distance(&mut individuals, &[0, 1, 2]);
        assert!(individuals.iter().all(|i| !i.crowding.is_nan()));
    }

    #[test]
    fn reused_buffer_matches_the_allocating_wrapper() {
        let points: Vec<Individual> = (0..12)
            .map(|i| {
                let x = i as f64 * 0.7;
                individual(vec![x.sin() + 2.0, x.cos() + 2.0])
            })
            .collect();
        let front: Vec<usize> = (0..points.len()).collect();

        let mut via_wrapper = points.clone();
        assign_crowding_distance(&mut via_wrapper, &front);

        let mut via_buffer = points;
        let mut order = Vec::new();
        assign_crowding_with_order(&mut via_buffer, &front, &mut order);
        // Exercise reuse: a second pass over the warm buffer changes nothing.
        assign_crowding_with_order(&mut via_buffer, &front, &mut order);

        for (a, b) in via_wrapper.iter().zip(&via_buffer) {
            assert_eq!(a.crowding, b.crowding);
        }
    }
}
