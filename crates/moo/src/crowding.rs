use crate::Individual;

/// Assigns the NSGA-II crowding distance to every individual of one front.
///
/// `front` holds indices into `individuals`. Boundary solutions of each
/// objective receive an infinite distance so they are always preserved; the
/// others receive the normalized side length of the cuboid formed by their
/// nearest neighbours along each objective.
pub fn assign_crowding_distance(individuals: &mut [Individual], front: &[usize]) {
    if front.is_empty() {
        return;
    }
    for &i in front {
        individuals[i].crowding = 0.0;
    }
    if front.len() <= 2 {
        for &i in front {
            individuals[i].crowding = f64::INFINITY;
        }
        return;
    }
    let num_objectives = individuals[front[0]].objectives.len();
    for m in 0..num_objectives {
        let mut sorted: Vec<usize> = front.to_vec();
        sorted.sort_by(|&a, &b| {
            individuals[a].objectives[m]
                .partial_cmp(&individuals[b].objectives[m])
                .expect("objective values must not be NaN")
        });
        let min = individuals[sorted[0]].objectives[m];
        let max = individuals[*sorted.last().expect("front is non-empty")].objectives[m];
        let range = (max - min).max(f64::EPSILON);

        individuals[sorted[0]].crowding = f64::INFINITY;
        individuals[*sorted.last().expect("front is non-empty")].crowding = f64::INFINITY;
        for w in 1..sorted.len() - 1 {
            let previous = individuals[sorted[w - 1]].objectives[m];
            let next = individuals[sorted[w + 1]].objectives[m];
            if individuals[sorted[w]].crowding.is_finite() {
                individuals[sorted[w]].crowding += (next - previous) / range;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn individual(objectives: Vec<f64>) -> Individual {
        Individual {
            variables: vec![],
            objectives,
            violation: 0.0,
            rank: 0,
            crowding: 0.0,
        }
    }

    #[test]
    fn boundary_points_get_infinite_distance() {
        let mut individuals = vec![
            individual(vec![0.0, 10.0]),
            individual(vec![5.0, 5.0]),
            individual(vec![10.0, 0.0]),
        ];
        let front = vec![0, 1, 2];
        assign_crowding_distance(&mut individuals, &front);
        assert!(individuals[0].crowding.is_infinite());
        assert!(individuals[2].crowding.is_infinite());
        assert!(individuals[1].crowding.is_finite());
        assert!(individuals[1].crowding > 0.0);
    }

    #[test]
    fn crowded_points_score_lower_than_isolated_ones() {
        // Points at f1 = 0, 1, 1.1, 5, 10 on a line f2 = -f1.
        let mut individuals = vec![
            individual(vec![0.0, 0.0]),
            individual(vec![1.0, -1.0]),
            individual(vec![1.1, -1.1]),
            individual(vec![5.0, -5.0]),
            individual(vec![10.0, -10.0]),
        ];
        let front = vec![0, 1, 2, 3, 4];
        assign_crowding_distance(&mut individuals, &front);
        // Index 2 is crowded between 1 and 5; index 3 is isolated.
        assert!(individuals[3].crowding > individuals[2].crowding);
    }

    #[test]
    fn tiny_fronts_are_all_boundary() {
        let mut individuals = vec![individual(vec![1.0, 2.0]), individual(vec![2.0, 1.0])];
        assign_crowding_distance(&mut individuals, &[0, 1]);
        assert!(individuals[0].crowding.is_infinite());
        assert!(individuals[1].crowding.is_infinite());
    }

    #[test]
    fn empty_front_is_a_noop() {
        let mut individuals: Vec<Individual> = vec![];
        assign_crowding_distance(&mut individuals, &[]);
    }

    #[test]
    fn degenerate_objective_range_does_not_blow_up() {
        let mut individuals = vec![
            individual(vec![1.0, 3.0]),
            individual(vec![1.0, 2.0]),
            individual(vec![1.0, 1.0]),
        ];
        assign_crowding_distance(&mut individuals, &[0, 1, 2]);
        assert!(individuals.iter().all(|i| !i.crowding.is_nan()));
    }
}
