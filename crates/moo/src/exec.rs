//! Persistent execution: a long-lived worker pool behind every
//! [`EvalBackend`], with a deterministic index-stealing splitter.
//!
//! The batched-evaluation design of this workspace used to re-spawn scoped
//! OS threads (`std::thread::scope`) for every offspring batch. Thread
//! creation costs on the order of ten microseconds per worker, which is
//! negligible against an expensive oracle but *dominates* cheap ones — a
//! sparse steady-state residual over the 608-reaction Geobacter model takes
//! single-digit microseconds per candidate, so the old strategy could make
//! `Threads(n)` slower than `Serial` on exactly the workloads parallelism
//! should help most.
//!
//! An [`Executor`] fixes this by keeping the workers alive: threads are
//! spawned once, parked on a channel, and fed lane jobs batch after batch
//! for the lifetime of the run. Serial mode ([`Executor::serial`]; also what
//! the `Threads(0)` / `Threads(1)` backends short-circuit to, without
//! constructing any pool) evaluates on the calling thread.
//!
//! # Work stealing
//!
//! Fixed contiguous chunks leave lanes idle whenever per-candidate cost
//! varies — exactly the ODE steady-state workload the leaf-redesign oracle
//! produces, where one candidate can integrate 100× longer than its
//! neighbour. The splitter therefore publishes work as *per-slot indices*:
//! each lane starts with a contiguous index range, the owner pops small
//! blocks from the **front** of its own range, and a lane that runs dry
//! steals a block from the **tail** of another lane's remaining range
//! (largest-half-first, round-robin victim scan). Claimed runs are always
//! contiguous sub-slices of the batch, so batched-oracle overrides still
//! amortize within a run.
//!
//! # Determinism
//!
//! Executors preserve batch order and never touch any RNG. Results commit
//! *by slot*: every claimed run `[start, end)` stores its outputs keyed by
//! `start`, and the caller splices the runs back together in index order.
//! Because [`MultiObjectiveProblem::evaluate_batch`] overrides are required
//! to be pure per candidate, the output is bit-identical to a serial run for
//! any lane count and **any interleaving of steals** — the schedule decides
//! only *who* computes a slot, never *what* the slot contains (enforced by
//! `tests/determinism.rs` and the proptests below).
//!
//! # Sharing
//!
//! Executors are shared as `Arc<Executor>`: an archipelago injects one pool
//! into all of its islands, and the `pathway` CLI builds a single pool for a
//! whole `run`/`resume` invocation (`--threads`). Cloning an optimizer
//! clones the `Arc`, so clones share the same workers.
//!
//! # Example
//!
//! ```
//! use pathway_moo::exec::Executor;
//! use pathway_moo::{problems::Schaffer, EvalBackend};
//!
//! let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
//! let pool = Executor::new(EvalBackend::Threads(2));
//! let serial = Executor::serial();
//! // One pool, many batches — and always bit-identical to serial.
//! for _ in 0..3 {
//!     assert_eq!(
//!         pool.evaluate_batch(&Schaffer, &xs),
//!         serial.evaluate_batch(&Schaffer, &xs)
//!     );
//! }
//! ```

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::engine::telemetry::{duration_us, MetricsRegistry};
use crate::{EvalBackend, Individual, MultiObjectiveProblem};

/// A unit of work shipped to a pool worker: the closure plus its enqueue
/// timestamp, so the worker can attribute real enqueue→dequeue latency to
/// the queue-wait histogram at the moment it picks the job up.
struct Job {
    enqueued: Instant,
    run: Box<dyn FnOnce() + Send + 'static>,
}

/// Histogram bucket bounds (µs) for time a lane job waits in the pool queue.
const QUEUE_WAIT_BOUNDS_US: [f64; 10] = [
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
];

/// Histogram bucket bounds (µs) for per-run (claimed block) execution time.
const CHUNK_BOUNDS_US: [f64; 11] = [
    50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 25000.0, 50000.0, 100000.0,
];

/// Most items a single claim (owner pop or steal) may take. Small enough
/// that a skewed tail can be redistributed, large enough that batched
/// oracles still amortize within a run.
const CLAIM_BLOCK: usize = 8;

/// A point-in-time load snapshot of an [`Executor`] (see
/// [`Executor::stats`]).
///
/// The gauges are updated with relaxed atomics on the submit/execute path,
/// so a snapshot is advisory — a health signal for dashboards and the
/// `pathway serve` `status` command, not a synchronization primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Configured degree of parallelism (the caller lane included); matches
    /// [`Executor::workers`].
    pub workers: usize,
    /// Lane jobs submitted to the pool's queue but not yet picked up by a
    /// worker. Always 0 in serial mode.
    pub queued_chunks: usize,
    /// Lanes currently executing, the caller lane included. Always
    /// 0 in serial mode (serial evaluation is not instrumented).
    pub active_workers: usize,
}

/// A persistent evaluation executor: either the calling thread
/// (serial mode) or a long-lived pool of parked worker threads.
///
/// Construction from an [`EvalBackend`] is the usual entry point
/// ([`Executor::new`] / [`Executor::shared`]); `Threads(0)` and `Threads(1)`
/// short-circuit to serial mode without constructing a pool, since a
/// one-worker pool could only ever evaluate the same slots the calling
/// thread would.
///
/// Dropping the last handle to a pooled executor shuts the workers down and
/// joins them.
pub struct Executor {
    mode: Mode,
    /// Telemetry sink, attachable after construction (see
    /// [`Executor::set_metrics`]). A `OnceLock` shared into the worker
    /// threads at spawn time: the pool outlives any particular registry
    /// decision, so workers capture the cell, not a registry.
    metrics: Arc<OnceLock<MetricsRegistry>>,
}

enum Mode {
    Serial,
    Pool(WorkerPool),
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.mode {
            Mode::Serial => f.write_str("Executor::Serial"),
            Mode::Pool(pool) => write!(f, "Executor::Pool({}-way)", pool.workers),
        }
    }
}

impl Default for Executor {
    /// The serial executor.
    fn default() -> Self {
        Executor::serial()
    }
}

impl Executor {
    /// An executor that evaluates on the calling thread.
    pub fn serial() -> Self {
        Executor {
            mode: Mode::Serial,
            metrics: Arc::new(OnceLock::new()),
        }
    }

    /// Builds the executor an [`EvalBackend`] describes:
    /// [`EvalBackend::Serial`], `Threads(0)` and `Threads(1)` become the
    /// (pool-free) serial executor, `Threads(n ≥ 2)` spawns a persistent
    /// pool of `n` workers.
    pub fn new(backend: EvalBackend) -> Self {
        match backend {
            EvalBackend::Serial | EvalBackend::Threads(0) | EvalBackend::Threads(1) => {
                Executor::serial()
            }
            EvalBackend::Threads(workers) => {
                let metrics = Arc::new(OnceLock::new());
                Executor {
                    mode: Mode::Pool(WorkerPool::new(workers, Arc::clone(&metrics))),
                    metrics,
                }
            }
        }
    }

    /// Attaches a telemetry registry. Callable on a shared `Arc<Executor>`
    /// at any point after construction; the first call wins and later
    /// calls are ignored (the worker threads captured the cell at spawn
    /// time). Purely observational — splitting, batch order and results
    /// are bit-identical with and without a registry attached.
    pub fn set_metrics(&self, registry: MetricsRegistry) {
        let _ = self.metrics.set(registry);
    }

    /// The attached telemetry registry, if any.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.get()
    }

    /// Like [`Executor::new`], wrapped for sharing between optimizers (e.g.
    /// one pool across all islands of an archipelago).
    pub fn shared(backend: EvalBackend) -> Arc<Self> {
        Arc::new(Self::new(backend))
    }

    /// Degree of parallelism: how many lanes a batch is split across (1 in
    /// serial mode). A pooled executor runs one lane on the calling thread
    /// and the rest on its `workers() - 1` spawned threads.
    pub fn workers(&self) -> usize {
        match &self.mode {
            Mode::Serial => 1,
            Mode::Pool(pool) => pool.workers,
        }
    }

    /// `true` when this executor owns a worker pool.
    pub fn is_pooled(&self) -> bool {
        matches!(self.mode, Mode::Pool(_))
    }

    /// A point-in-time load snapshot: configured lanes, lane jobs waiting in
    /// the queue, lanes currently executing. Safe to call from any
    /// thread at any time — this is the observability hook the `pathway
    /// serve` `status` command surfaces as executor health.
    pub fn stats(&self) -> ExecutorStats {
        match &self.mode {
            Mode::Serial => ExecutorStats {
                workers: 1,
                queued_chunks: 0,
                active_workers: 0,
            },
            Mode::Pool(pool) => ExecutorStats {
                workers: pool.workers,
                queued_chunks: pool.gauges.queued.load(Ordering::Relaxed),
                active_workers: pool.gauges.active.load(Ordering::Relaxed),
            },
        }
    }

    /// Applies `f` to contiguous runs of `items` claimed through the
    /// index-stealing splitter and returns the outputs spliced back into
    /// input order. `f` must produce **exactly one output per input item**
    /// (debug-asserted) and be pure per item; under that contract the result
    /// is identical to `f(items)` regardless of lane count or steal
    /// interleaving. Serial mode applies `f` to the whole slice at once.
    ///
    /// A panic inside `f` is propagated to the caller after every
    /// in-flight lane of this call has finished; the pool itself survives
    /// and can run further batches.
    ///
    /// Do not call this from inside a job running *on the same pool*
    /// (i.e. from within `f`): the outer job would occupy a worker while
    /// blocking on the inner call's completion, which can deadlock a
    /// saturated pool. Calling from ordinary threads — including several
    /// concurrently, e.g. archipelago islands sharing one executor — is
    /// fine and how the pool is meant to be used.
    pub fn map_chunks<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> Vec<R> + Sync,
    {
        match &self.mode {
            Mode::Serial => f(items),
            Mode::Pool(pool) => {
                let lanes = pool.workers.min(items.len());
                if lanes <= 1 {
                    return f(items);
                }
                pool.run_lanes(items, lanes, &f)
            }
        }
    }

    /// Evaluates a batch of decision vectors, returning
    /// `(objectives, constraint_violation)` per candidate in batch order.
    ///
    /// [`MultiObjectiveProblem::prepare_batch`] is called exactly once with
    /// the *whole* batch before any run is evaluated (this is what lets
    /// stateful oracles like the warm-started leaf model stay deterministic
    /// under splitting), then each claimed run goes through
    /// [`MultiObjectiveProblem::evaluate_batch`], so batched-oracle
    /// overrides amortize under the serial and the pooled mode alike.
    pub fn evaluate_batch<P: MultiObjectiveProblem>(
        &self,
        problem: &P,
        xs: &[Vec<f64>],
    ) -> Vec<(Vec<f64>, f64)> {
        let metrics = self.metrics.get();
        if let Some(metrics) = metrics {
            metrics.add("exec.batches", 1);
            metrics.add("exec.candidates", xs.len() as u64);
        }
        {
            let _span = metrics.map(|m| m.phase("prepare_batch"));
            problem.prepare_batch(xs);
        }
        let _span = metrics.map(|m| m.phase("eval"));
        self.map_chunks(xs, |chunk| problem.evaluate_batch(chunk))
    }

    /// Evaluates a batch of decision vectors into [`Individual`]s (rank and
    /// crowding left unassigned), preserving batch order.
    pub fn evaluate_individuals<P: MultiObjectiveProblem>(
        &self,
        problem: &P,
        variables: Vec<Vec<f64>>,
    ) -> Vec<Individual> {
        let evaluated = self.evaluate_batch(problem, &variables);
        variables
            .into_iter()
            .zip(evaluated)
            .map(|(x, (objectives, violation))| {
                Individual::from_evaluated(x, objectives, violation)
            })
            .collect()
    }
}

/// The pre-pool strategy, kept as a measured baseline: spawns `workers`
/// scoped OS threads for this one batch, splits the batch into fixed
/// contiguous chunks (no stealing), and tears the threads down again.
///
/// `benches/batch_eval.rs` races this against a persistent [`Executor`] pool
/// — including a skewed-cost workload where fixed chunks starve — to
/// demonstrate why the pool replaced it; production code should never call
/// it.
pub fn scoped_evaluate_batch<P: MultiObjectiveProblem>(
    problem: &P,
    xs: &[Vec<f64>],
    workers: usize,
) -> Vec<(Vec<f64>, f64)> {
    problem.prepare_batch(xs);
    let workers = workers.max(1).min(xs.len().max(1));
    if workers <= 1 {
        return problem.evaluate_batch(xs);
    }
    let chunk_size = xs.len().div_ceil(workers);
    let mut results: Vec<(Vec<f64>, f64)> = Vec::with_capacity(xs.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = xs
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || problem.evaluate_batch(chunk)))
            .collect();
        for handle in handles {
            results.extend(handle.join().expect("evaluation thread must not panic"));
        }
    });
    results
}

// -------------------------------------------------- the stealing splitter --

/// One lane's remaining index range, packed `lo << 32 | hi` so a claim is a
/// single CAS. The owner pops blocks from `lo` (the front); thieves lower
/// `hi` (the tail). `lo >= hi` means drained.
struct LaneRange(AtomicU64);

fn pack(lo: usize, hi: usize) -> u64 {
    debug_assert!(hi <= u32::MAX as usize, "batches are far below 2^32 items");
    ((lo as u64) << 32) | hi as u64
}

fn unpack(value: u64) -> (usize, usize) {
    (
        (value >> 32) as usize,
        (value & u64::from(u32::MAX)) as usize,
    )
}

impl LaneRange {
    fn new(lo: usize, hi: usize) -> Self {
        LaneRange(AtomicU64::new(pack(lo, hi)))
    }

    /// The owner's claim: pop up to [`CLAIM_BLOCK`] items from the front.
    fn pop_front(&self) -> Option<(usize, usize)> {
        let mut current = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(current);
            if lo >= hi {
                return None;
            }
            let take = CLAIM_BLOCK.min(hi - lo);
            match self.0.compare_exchange_weak(
                current,
                pack(lo + take, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((lo, lo + take)),
                Err(seen) => current = seen,
            }
        }
    }

    /// A thief's claim: take up to half the remaining range (capped at
    /// [`CLAIM_BLOCK`]) off the tail.
    fn steal_tail(&self) -> Option<(usize, usize)> {
        let mut current = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(current);
            if lo >= hi {
                return None;
            }
            let take = ((hi - lo).div_ceil(2)).min(CLAIM_BLOCK);
            match self.0.compare_exchange_weak(
                current,
                pack(lo, hi - take),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((hi - take, hi)),
                Err(seen) => current = seen,
            }
        }
    }
}

/// Per-batch splitter counters, accumulated with relaxed atomics by the
/// lanes and flushed to the registry once by the caller after the barrier.
#[derive(Default)]
struct SplitterCounters {
    /// Contiguous runs claimed (owner pops and steals alike).
    runs: AtomicU64,
    /// Runs executed by the caller lane (lane 0).
    inline_runs: AtomicU64,
    /// Successful tail steals.
    steals: AtomicU64,
    /// Lanes that finished the batch without claiming a single run.
    idle_lanes: AtomicU64,
}

// ------------------------------------------------------------- the pool --

/// Completion tracking for one `run_lanes` call: a countdown of outstanding
/// lane jobs plus the first panic payload any of them produced.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(jobs: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining: jobs,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Marks one job finished, recording its panic payload if it had one.
    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.state.lock().expect("latch lock poisoned");
        state.remaining -= 1;
        if state.panic.is_none() {
            state.panic = panic;
        }
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every job completed; returns the first panic payload.
    fn wait(&self) -> Option<Box<dyn std::any::Any + Send>> {
        let mut state = self.state.lock().expect("latch lock poisoned");
        while state.remaining > 0 {
            state = self.done.wait(state).expect("latch lock poisoned");
        }
        state.panic.take()
    }
}

/// Long-lived worker threads parked on a shared job channel.
///
/// An *n*-way pool spawns only `n - 1` OS threads: `run_lanes` always
/// drives one lane on the calling thread (which would otherwise idle at
/// the barrier), so the caller is the n-th lane and a spawned n-th worker
/// could never receive work from a single caller.
struct WorkerPool {
    /// `Some` until shutdown; dropping it is what makes the workers exit.
    sender: Option<mpsc::Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    /// Configured parallelism (caller lane included), not thread count.
    workers: usize,
    /// Live load gauges behind [`Executor::stats`].
    gauges: Arc<PoolGauges>,
    /// The owning executor's telemetry cell (workers hold their own clone).
    metrics: Arc<OnceLock<MetricsRegistry>>,
}

/// Relaxed-atomic load gauges shared between the pool handle, its workers,
/// and any thread taking an [`ExecutorStats`] snapshot.
#[derive(Debug, Default)]
struct PoolGauges {
    queued: AtomicUsize,
    active: AtomicUsize,
}

impl WorkerPool {
    fn new(workers: usize, metrics: Arc<OnceLock<MetricsRegistry>>) -> Self {
        debug_assert!(workers >= 2, "one-worker pools short-circuit to serial");
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let gauges = Arc::new(PoolGauges::default());
        let handles = (0..workers - 1)
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                let gauges = Arc::clone(&gauges);
                let metrics = Arc::clone(&metrics);
                // Lane 0 is the caller lane (see `run_lanes`); spawned
                // workers are lanes 1..workers.
                let lane_busy = format!("exec.lane{:02}.busy_us", index + 1);
                std::thread::Builder::new()
                    .name(format!("pathway-exec-{index}"))
                    .spawn(move || loop {
                        // The lock guards only the `recv` hand-off, not job
                        // execution: it is released the moment a job (or the
                        // hang-up) arrives.
                        let message = {
                            let guard = receiver.lock().expect("pool receiver lock poisoned");
                            guard.recv()
                        };
                        match message {
                            // Jobs carry their own panic containment (see
                            // `run_lanes`); the extra catch keeps a worker
                            // alive even if that invariant is ever broken.
                            Ok(job) => {
                                gauges.queued.fetch_sub(1, Ordering::Relaxed);
                                gauges.active.fetch_add(1, Ordering::Relaxed);
                                // The message carries its enqueue timestamp:
                                // this is the real enqueue→dequeue latency,
                                // measured before the job runs a single
                                // instruction.
                                if let Some(registry) = metrics.get() {
                                    registry.observe_duration(
                                        "exec.queue_wait_us",
                                        &QUEUE_WAIT_BOUNDS_US,
                                        job.enqueued.elapsed(),
                                    );
                                }
                                let started = Instant::now();
                                let _ = panic::catch_unwind(AssertUnwindSafe(job.run));
                                if let Some(registry) = metrics.get() {
                                    registry.add(&lane_busy, duration_us(started.elapsed()));
                                }
                                gauges.active.fetch_sub(1, Ordering::Relaxed);
                            }
                            Err(mpsc::RecvError) => break,
                        }
                    })
                    .expect("spawning a pool worker thread failed")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            handles,
            workers,
            gauges,
            metrics,
        }
    }

    /// Runs `f` over `items` with `lanes` cooperating lanes: lanes `1..`
    /// are shipped to the pool, lane `0` runs on the calling thread (the
    /// caller would otherwise idle-wait), and the call blocks until all
    /// lanes completed. Each lane pops blocks off the front of its own
    /// index range and steals from the tails of others once drained;
    /// results commit by slot, so the spliced output is independent of the
    /// steal schedule. Panics from any lane are re-raised here after the
    /// barrier.
    fn run_lanes<T, R, F>(&self, items: &[T], lanes: usize, f: &F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> Vec<R> + Sync,
    {
        debug_assert!(lanes >= 2 && lanes <= items.len());
        let chunk_size = items.len().div_ceil(lanes);
        let ranges: Vec<LaneRange> = (0..lanes)
            .map(|lane| {
                let lo = (lane * chunk_size).min(items.len());
                let hi = ((lane + 1) * chunk_size).min(items.len());
                LaneRange::new(lo, hi)
            })
            .collect();
        // Completed runs as (start slot, outputs); disjoint and covering,
        // so sorting by start reproduces input order exactly.
        let runs: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(lanes * 2));
        let counters = SplitterCounters::default();
        let latch = Latch::new(lanes - 1);
        let metrics = self.metrics.get();

        // One lane's drain loop: own front first, then steal round-robin.
        let work_lane = |lane: usize| {
            let mut claimed_any = false;
            loop {
                let claim = ranges[lane].pop_front().or_else(|| {
                    (1..lanes).find_map(|offset| {
                        let victim = (lane + offset) % lanes;
                        let stolen = ranges[victim].steal_tail();
                        if stolen.is_some() {
                            counters.steals.fetch_add(1, Ordering::Relaxed);
                        }
                        stolen
                    })
                });
                let Some((start, end)) = claim else { break };
                claimed_any = true;
                counters.runs.fetch_add(1, Ordering::Relaxed);
                if lane == 0 {
                    counters.inline_runs.fetch_add(1, Ordering::Relaxed);
                }
                let run_started = Instant::now();
                let values = f(&items[start..end]);
                debug_assert_eq!(
                    values.len(),
                    end - start,
                    "map_chunks requires exactly one output per input item"
                );
                if let Some(registry) = metrics {
                    registry.observe_duration(
                        "exec.chunk_us",
                        &CHUNK_BOUNDS_US,
                        run_started.elapsed(),
                    );
                }
                runs.lock()
                    .expect("run sink poisoned")
                    .push((start, values));
            }
            if !claimed_any {
                counters.idle_lanes.fetch_add(1, Ordering::Relaxed);
            }
        };

        let sender = self
            .sender
            .as_ref()
            .expect("the pool is only shut down on drop");
        for lane in 1..lanes {
            let work_lane = &work_lane;
            let latch = &latch;
            let job = move || match panic::catch_unwind(AssertUnwindSafe(|| work_lane(lane))) {
                Ok(()) => latch.complete(None),
                Err(payload) => latch.complete(Some(payload)),
            };
            let boxed: Box<dyn FnOnce() + Send + '_> = Box::new(job);
            // SAFETY: the job borrows `work_lane` (which itself borrows
            // `items`, `ranges`, `runs`, `counters`, `f`) and `latch`, all
            // of which live on this stack frame. The lifetime is erased to
            // ship the job through the pool's 'static channel, and the
            // erasure is sound because this function does not return (and
            // never unwinds past the borrows) until `latch.wait()` below has
            // observed every submitted job's completion — including the
            // panic path, which counts the latch down before unwinding is
            // contained by `catch_unwind`.
            let run: Box<dyn FnOnce() + Send + 'static> = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(
                    boxed,
                )
            };
            self.gauges.queued.fetch_add(1, Ordering::Relaxed);
            let job = Job {
                enqueued: Instant::now(),
                run,
            };
            if let Err(mpsc::SendError(job)) = sender.send(job) {
                // Unreachable while `self` is alive, but losing a job would
                // deadlock the latch — run it here instead.
                self.gauges.queued.fetch_sub(1, Ordering::Relaxed);
                (job.run)();
            }
        }
        // The calling thread is lane 0: it drains work instead of idling
        // until the pool finishes.
        self.gauges.active.fetch_add(1, Ordering::Relaxed);
        let inline_started = Instant::now();
        let inline_panic = panic::catch_unwind(AssertUnwindSafe(|| work_lane(0))).err();
        if let Some(registry) = metrics {
            registry.add("exec.lane00.busy_us", duration_us(inline_started.elapsed()));
        }
        self.gauges.active.fetch_sub(1, Ordering::Relaxed);
        // Always reach the barrier before unwinding anything: the workers
        // still hold borrows into this frame until the latch drains.
        let pool_panic = latch.wait();
        if let Some(registry) = metrics {
            registry.add("exec.chunks", counters.runs.load(Ordering::Relaxed));
            registry.add(
                "exec.inline_chunks",
                counters.inline_runs.load(Ordering::Relaxed),
            );
            registry.add("exec.steal_count", counters.steals.load(Ordering::Relaxed));
            registry.add(
                "exec.idle_lane_turns",
                counters.idle_lanes.load(Ordering::Relaxed),
            );
        }
        if let Some(payload) = inline_panic {
            panic::resume_unwind(payload);
        }
        if let Some(payload) = pool_panic {
            panic::resume_unwind(payload);
        }
        let mut runs = runs.into_inner().expect("run sink poisoned");
        runs.sort_unstable_by_key(|(start, _)| *start);
        let mut out: Vec<R> = Vec::with_capacity(items.len());
        for (start, values) in runs {
            debug_assert_eq!(out.len(), start, "claimed runs must tile the batch");
            out.extend(values);
        }
        debug_assert_eq!(out.len(), items.len());
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Hang up the channel, then join: each worker exits its recv loop
        // once the queue drains.
        drop(self.sender.take());
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{BinhKorn, Schaffer};
    use proptest::prelude::*;

    fn candidates(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![-5.0 + i as f64 * 0.37]).collect()
    }

    /// Deterministic busy-work so tests can skew per-item cost without
    /// sleeping; returns a value derived from the spin to defeat the
    /// optimizer.
    fn burn(iters: u64) -> f64 {
        let mut acc = 0.0f64;
        for i in 0..iters {
            acc += std::hint::black_box((i as f64).sqrt());
        }
        acc
    }

    #[test]
    fn backend_construction_short_circuits_degenerate_pools() {
        assert!(!Executor::new(EvalBackend::Serial).is_pooled());
        assert!(!Executor::new(EvalBackend::Threads(0)).is_pooled());
        assert!(!Executor::new(EvalBackend::Threads(1)).is_pooled());
        let pool = Executor::new(EvalBackend::Threads(3));
        assert!(pool.is_pooled());
        assert_eq!(pool.workers(), 3);
        assert_eq!(Executor::serial().workers(), 1);
    }

    #[test]
    fn pool_matches_serial_across_many_batches() {
        let pool = Executor::new(EvalBackend::Threads(4));
        let serial = Executor::serial();
        for batch_len in [0, 1, 2, 3, 7, 13, 50] {
            let xs = candidates(batch_len);
            assert_eq!(
                pool.evaluate_batch(&Schaffer, &xs),
                serial.evaluate_batch(&Schaffer, &xs),
                "batch of {batch_len} diverged"
            );
        }
    }

    #[test]
    fn constraint_violations_survive_the_pool() {
        let xs: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![i as f64 * 0.6, 3.0 - i as f64 * 0.3])
            .collect();
        let pool = Executor::new(EvalBackend::Threads(3));
        let pooled = pool.evaluate_batch(&BinhKorn, &xs);
        assert_eq!(pooled, Executor::serial().evaluate_batch(&BinhKorn, &xs));
        assert!(pooled.iter().any(|(_, v)| *v > 0.0));
    }

    #[test]
    fn map_chunks_preserves_order() {
        let pool = Executor::new(EvalBackend::Threads(3));
        let items: Vec<usize> = (0..100).collect();
        let doubled = pool.map_chunks(&items, |chunk| {
            chunk.iter().map(|v| v * 2).collect::<Vec<_>>()
        });
        assert_eq!(doubled, (0..100).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn lane_range_claims_are_disjoint_and_exhaustive() {
        let range = LaneRange::new(3, 20);
        let mut popped = Vec::new();
        // Interleave owner pops and tail steals; every item must be claimed
        // exactly once.
        while let Some((lo, hi)) = range.pop_front() {
            popped.push((lo, hi));
            if let Some((lo, hi)) = range.steal_tail() {
                popped.push((lo, hi));
            }
        }
        let mut claimed: Vec<usize> = popped.iter().flat_map(|&(lo, hi)| lo..hi).collect();
        claimed.sort_unstable();
        assert_eq!(claimed, (3..20).collect::<Vec<_>>());
        assert!(popped.iter().all(|&(lo, hi)| hi - lo <= CLAIM_BLOCK));
    }

    #[test]
    fn evaluate_individuals_preserves_order_and_variables() {
        let xs = candidates(6);
        let pool = Executor::new(EvalBackend::Threads(2));
        let individuals = pool.evaluate_individuals(&Schaffer, xs.clone());
        assert_eq!(individuals.len(), xs.len());
        for (individual, x) in individuals.iter().zip(&xs) {
            assert_eq!(&individual.variables, x);
            assert_eq!(individual.objectives, Schaffer.evaluate(x));
        }
    }

    #[test]
    fn a_panicking_chunk_propagates_and_the_pool_survives() {
        let pool = Executor::new(EvalBackend::Threads(2));
        let items: Vec<usize> = (0..16).collect();
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_chunks(&items, |chunk| {
                if chunk.contains(&12) {
                    panic!("oracle exploded");
                }
                chunk.to_vec()
            })
        }));
        assert!(outcome.is_err(), "the chunk panic must reach the caller");
        // The pool is still serviceable afterwards.
        let squares = pool.map_chunks(&items, |chunk| {
            chunk.iter().map(|v| v * v).collect::<Vec<_>>()
        });
        assert_eq!(squares.len(), items.len());
    }

    #[test]
    fn stats_report_configuration_and_return_to_idle() {
        let serial = Executor::serial();
        assert_eq!(
            serial.stats(),
            ExecutorStats {
                workers: 1,
                queued_chunks: 0,
                active_workers: 0
            }
        );

        let pool = Executor::new(EvalBackend::Threads(3));
        assert_eq!(pool.stats().workers, 3);
        assert_eq!(pool.stats().queued_chunks, 0);
        assert_eq!(pool.stats().active_workers, 0);

        // While a batch is in flight, at least the caller lane is active
        // (the closure runs *inside* map_chunks).
        let items: Vec<usize> = (0..64).collect();
        let seen_active = AtomicUsize::new(0);
        pool.map_chunks(&items, |chunk| {
            seen_active.fetch_max(pool.stats().active_workers, Ordering::Relaxed);
            chunk.to_vec()
        });
        assert!(seen_active.load(Ordering::Relaxed) >= 1);

        // Idle again once the batch completed.
        let after = pool.stats();
        assert_eq!(after.queued_chunks, 0);
        assert_eq!(after.active_workers, 0);
    }

    #[test]
    fn scoped_baseline_matches_the_pool() {
        let xs = candidates(11);
        let pool = Executor::new(EvalBackend::Threads(3));
        assert_eq!(
            scoped_evaluate_batch(&Schaffer, &xs, 3),
            pool.evaluate_batch(&Schaffer, &xs)
        );
    }

    #[test]
    fn metrics_record_batches_without_changing_results() {
        let pool = Executor::new(EvalBackend::Threads(3));
        pool.set_metrics(MetricsRegistry::new());
        let xs = candidates(30);
        let pooled = pool.evaluate_batch(&Schaffer, &xs);
        assert_eq!(pooled, Executor::serial().evaluate_batch(&Schaffer, &xs));

        let snapshot = pool.metrics().expect("registry attached").snapshot();
        assert_eq!(snapshot.counter("exec.batches"), Some(1));
        assert_eq!(snapshot.counter("exec.candidates"), Some(30));
        // Every claimed run takes at most CLAIM_BLOCK items, so 30 items
        // produce at least ceil(30 / 8) = 4 runs; how they distribute over
        // lanes (and how many steals happen) depends on timing.
        let runs = snapshot.counter("exec.chunks").expect("runs recorded");
        assert!(
            runs >= 4,
            "30 items must take at least 4 claims, saw {runs}"
        );
        assert!(snapshot.counter("exec.inline_chunks").is_some());
        assert!(snapshot.counter("exec.steal_count").is_some());
        assert!(snapshot.counter("exec.idle_lane_turns").is_some());
        assert_eq!(snapshot.counter("phase.prepare_batch.calls"), Some(1));
        assert_eq!(snapshot.counter("phase.eval.calls"), Some(1));
        // Exactly the two spawned lane jobs wait in the queue.
        let waits = snapshot
            .histogram("exec.queue_wait_us")
            .expect("lane jobs record their queue wait");
        assert_eq!(waits.count, 2);
        let chunk_times = snapshot
            .histogram("exec.chunk_us")
            .expect("runs record their execution time");
        assert_eq!(chunk_times.count, runs);
        assert!(snapshot.counter("exec.lane00.busy_us").is_some());

        // A second registry is ignored: the first attachment wins.
        pool.set_metrics(MetricsRegistry::new());
        pool.evaluate_batch(&Schaffer, &xs);
        let again = pool.metrics().expect("registry attached").snapshot();
        assert_eq!(again.counter("exec.batches"), Some(2));
    }

    #[test]
    fn skewed_costs_trigger_steals_and_no_lane_starves() {
        // All the expensive items sit in lane 0's initial range: under
        // fixed chunking the other lanes would finish their cheap thirds
        // and idle while lane 0 grinds alone. With tail stealing they must
        // come back for lane 0's tail.
        let pool = Executor::new(EvalBackend::Threads(3));
        pool.set_metrics(MetricsRegistry::new());
        let items: Vec<u64> = (0..96).map(|i| if i < 32 { 400_000 } else { 10 }).collect();
        let expected: Vec<f64> = items.iter().map(|&iters| burn(iters)).collect();
        let spun = pool.map_chunks(&items, |chunk| {
            chunk.iter().map(|&iters| burn(iters)).collect::<Vec<_>>()
        });
        assert_eq!(spun, expected, "stealing must not change any slot");
        let snapshot = pool.metrics().expect("registry attached").snapshot();
        let steals = snapshot.counter("exec.steal_count").unwrap_or(0);
        assert!(
            steals >= 1,
            "cheap lanes must steal from the loaded lane's tail, saw {steals} steals"
        );
    }

    proptest! {
        /// Any batch shape, lane count and (cost-skew-induced) steal
        /// interleaving yields slot-exact results equal to serial.
        #[test]
        fn prop_stealing_is_slot_exact(
            len in 0usize..120,
            workers in 2usize..6,
            seed in 0u64..1000,
        ) {
            let pool = Executor::new(EvalBackend::Threads(workers));
            let items: Vec<u64> = (0..len as u64)
                // Pseudo-random per-item cost skew: some items ~30µs of
                // spin, most near-free, pattern varies with the seed.
                .map(|i| if (i * 2654435761 + seed) % 7 == 0 { 20_000 } else { 50 })
                .collect();
            let expected: Vec<(u64, f64)> =
                items.iter().map(|&iters| (iters, burn(iters))).collect();
            let pooled = pool.map_chunks(&items, |chunk| {
                chunk.iter().map(|&iters| (iters, burn(iters))).collect::<Vec<_>>()
            });
            prop_assert_eq!(pooled, expected);
        }
    }

    #[test]
    fn debug_formats_name_the_mode() {
        assert_eq!(format!("{:?}", Executor::serial()), "Executor::Serial");
        let pool = Executor::new(EvalBackend::Threads(2));
        assert_eq!(format!("{pool:?}"), "Executor::Pool(2-way)");
    }
}
