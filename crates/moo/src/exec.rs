//! Persistent execution: a long-lived worker pool behind every
//! [`EvalBackend`].
//!
//! The batched-evaluation design of this workspace used to re-spawn scoped
//! OS threads (`std::thread::scope`) for every offspring batch. Thread
//! creation costs on the order of ten microseconds per worker, which is
//! negligible against an expensive oracle but *dominates* cheap ones — a
//! sparse steady-state residual over the 608-reaction Geobacter model takes
//! single-digit microseconds per candidate, so the old strategy could make
//! `Threads(n)` slower than `Serial` on exactly the workloads parallelism
//! should help most.
//!
//! An [`Executor`] fixes this by keeping the workers alive: threads are
//! spawned once, parked on a channel, and fed contiguous work chunks batch
//! after batch for the lifetime of the run. Serial mode ([`Executor::serial`];
//! also what the `Threads(0)` / `Threads(1)` backends short-circuit to,
//! without constructing any pool) evaluates on the calling thread.
//!
//! # Determinism
//!
//! Executors preserve batch order and never touch any RNG. Chunk boundaries
//! are a pure function of `(batch length, worker count)` and each chunk is
//! evaluated through [`MultiObjectiveProblem::evaluate_batch`], whose
//! overrides are required to be pure per candidate — so a pooled run is
//! bit-identical to a serial run for a fixed seed, exactly like the scoped
//! strategy it replaces (enforced by `tests/determinism.rs`).
//!
//! # Sharing
//!
//! Executors are shared as `Arc<Executor>`: an archipelago injects one pool
//! into all of its islands, and the `pathway` CLI builds a single pool for a
//! whole `run`/`resume` invocation (`--threads`). Cloning an optimizer
//! clones the `Arc`, so clones share the same workers.
//!
//! # Example
//!
//! ```
//! use pathway_moo::exec::Executor;
//! use pathway_moo::{problems::Schaffer, EvalBackend};
//!
//! let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
//! let pool = Executor::new(EvalBackend::Threads(2));
//! let serial = Executor::serial();
//! // One pool, many batches — and always bit-identical to serial.
//! for _ in 0..3 {
//!     assert_eq!(
//!         pool.evaluate_batch(&Schaffer, &xs),
//!         serial.evaluate_batch(&Schaffer, &xs)
//!     );
//! }
//! ```

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::engine::telemetry::{duration_us, MetricsRegistry};
use crate::{EvalBackend, Individual, MultiObjectiveProblem};

/// A type-erased unit of work shipped to a pool worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Histogram bucket bounds (µs) for time a chunk waits in the pool queue.
const QUEUE_WAIT_BOUNDS_US: [f64; 10] = [
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
];

/// Histogram bucket bounds (µs) for chunk execution time.
const CHUNK_BOUNDS_US: [f64; 11] = [
    50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 25000.0, 50000.0, 100000.0,
];

/// A point-in-time load snapshot of an [`Executor`] (see
/// [`Executor::stats`]).
///
/// The gauges are updated with relaxed atomics on the submit/execute path,
/// so a snapshot is advisory — a health signal for dashboards and the
/// `pathway serve` `status` command, not a synchronization primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Configured degree of parallelism (the caller lane included); matches
    /// [`Executor::workers`].
    pub workers: usize,
    /// Chunks submitted to the pool's queue but not yet picked up by a
    /// worker. Always 0 in serial mode.
    pub queued_chunks: usize,
    /// Lanes currently executing a chunk, the caller lane included. Always
    /// 0 in serial mode (serial evaluation is not instrumented).
    pub active_workers: usize,
}

/// A persistent evaluation executor: either the calling thread
/// (serial mode) or a long-lived pool of parked worker threads.
///
/// Construction from an [`EvalBackend`] is the usual entry point
/// ([`Executor::new`] / [`Executor::shared`]); `Threads(0)` and `Threads(1)`
/// short-circuit to serial mode without constructing a pool, since a
/// one-worker pool could only ever evaluate the same chunks the calling
/// thread would.
///
/// Dropping the last handle to a pooled executor shuts the workers down and
/// joins them.
pub struct Executor {
    mode: Mode,
    /// Telemetry sink, attachable after construction (see
    /// [`Executor::set_metrics`]). A `OnceLock` shared into the worker
    /// threads at spawn time: the pool outlives any particular registry
    /// decision, so workers capture the cell, not a registry.
    metrics: Arc<OnceLock<MetricsRegistry>>,
}

enum Mode {
    Serial,
    Pool(WorkerPool),
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.mode {
            Mode::Serial => f.write_str("Executor::Serial"),
            Mode::Pool(pool) => write!(f, "Executor::Pool({}-way)", pool.workers),
        }
    }
}

impl Default for Executor {
    /// The serial executor.
    fn default() -> Self {
        Executor::serial()
    }
}

impl Executor {
    /// An executor that evaluates on the calling thread.
    pub fn serial() -> Self {
        Executor {
            mode: Mode::Serial,
            metrics: Arc::new(OnceLock::new()),
        }
    }

    /// Builds the executor an [`EvalBackend`] describes:
    /// [`EvalBackend::Serial`], `Threads(0)` and `Threads(1)` become the
    /// (pool-free) serial executor, `Threads(n ≥ 2)` spawns a persistent
    /// pool of `n` workers.
    pub fn new(backend: EvalBackend) -> Self {
        match backend {
            EvalBackend::Serial | EvalBackend::Threads(0) | EvalBackend::Threads(1) => {
                Executor::serial()
            }
            EvalBackend::Threads(workers) => {
                let metrics = Arc::new(OnceLock::new());
                Executor {
                    mode: Mode::Pool(WorkerPool::new(workers, Arc::clone(&metrics))),
                    metrics,
                }
            }
        }
    }

    /// Attaches a telemetry registry. Callable on a shared `Arc<Executor>`
    /// at any point after construction; the first call wins and later
    /// calls are ignored (the worker threads captured the cell at spawn
    /// time). Purely observational — chunking, batch order and results
    /// are bit-identical with and without a registry attached.
    pub fn set_metrics(&self, registry: MetricsRegistry) {
        let _ = self.metrics.set(registry);
    }

    /// The attached telemetry registry, if any.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.get()
    }

    /// Like [`Executor::new`], wrapped for sharing between optimizers (e.g.
    /// one pool across all islands of an archipelago).
    pub fn shared(backend: EvalBackend) -> Arc<Self> {
        Arc::new(Self::new(backend))
    }

    /// Degree of parallelism: how many chunks a batch is split into (1 in
    /// serial mode). A pooled executor runs one chunk on the calling thread
    /// and the rest on its `workers() - 1` spawned threads.
    pub fn workers(&self) -> usize {
        match &self.mode {
            Mode::Serial => 1,
            Mode::Pool(pool) => pool.workers,
        }
    }

    /// `true` when this executor owns a worker pool.
    pub fn is_pooled(&self) -> bool {
        matches!(self.mode, Mode::Pool(_))
    }

    /// A point-in-time load snapshot: configured lanes, chunks waiting in
    /// the queue, lanes currently executing a chunk. Safe to call from any
    /// thread at any time — this is the observability hook the `pathway
    /// serve` `status` command surfaces as executor health.
    pub fn stats(&self) -> ExecutorStats {
        match &self.mode {
            Mode::Serial => ExecutorStats {
                workers: 1,
                queued_chunks: 0,
                active_workers: 0,
            },
            Mode::Pool(pool) => ExecutorStats {
                workers: pool.workers,
                queued_chunks: pool.gauges.queued.load(Ordering::Relaxed),
                active_workers: pool.gauges.active.load(Ordering::Relaxed),
            },
        }
    }

    /// Applies `f` to contiguous chunks of `items` — one chunk per worker,
    /// the same split [`EvalBackend::workers`] describes — and returns the
    /// concatenated per-chunk outputs in input order. Serial mode applies
    /// `f` to the whole slice at once.
    ///
    /// A panic inside `f` is propagated to the caller after every
    /// in-flight chunk of this call has finished; the pool itself survives
    /// and can run further batches.
    ///
    /// Do not call this from inside a job running *on the same pool*
    /// (i.e. from within `f`): the outer job would occupy a worker while
    /// blocking on the inner call's completion, which can deadlock a
    /// saturated pool. Calling from ordinary threads — including several
    /// concurrently, e.g. archipelago islands sharing one executor — is
    /// fine and how the pool is meant to be used.
    pub fn map_chunks<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> Vec<R> + Sync,
    {
        match &self.mode {
            Mode::Serial => f(items),
            Mode::Pool(pool) => {
                let workers = pool.workers.min(items.len());
                if workers <= 1 {
                    return f(items);
                }
                let chunk_size = items.len().div_ceil(workers);
                let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
                if let Some(metrics) = self.metrics.get() {
                    // Chunk 0 runs inline on the caller lane; the rest are
                    // queued. Lanes with no chunk this batch sat idle.
                    metrics.add("exec.chunks", (chunks.len() - 1) as u64);
                    metrics.add("exec.inline_chunks", 1);
                    metrics.add("exec.idle_lane_turns", (pool.workers - chunks.len()) as u64);
                }
                pool.run_chunks(&chunks, &f).into_iter().flatten().collect()
            }
        }
    }

    /// Evaluates a batch of decision vectors, returning
    /// `(objectives, constraint_violation)` per candidate in batch order.
    ///
    /// [`MultiObjectiveProblem::prepare_batch`] is called exactly once with
    /// the *whole* batch before any chunk is evaluated (this is what lets
    /// stateful oracles like the warm-started leaf model stay deterministic
    /// under chunking), then each chunk goes through
    /// [`MultiObjectiveProblem::evaluate_batch`], so batched-oracle
    /// overrides amortize under the serial and the pooled mode alike.
    pub fn evaluate_batch<P: MultiObjectiveProblem>(
        &self,
        problem: &P,
        xs: &[Vec<f64>],
    ) -> Vec<(Vec<f64>, f64)> {
        let metrics = self.metrics.get();
        if let Some(metrics) = metrics {
            metrics.add("exec.batches", 1);
            metrics.add("exec.candidates", xs.len() as u64);
        }
        {
            let _span = metrics.map(|m| m.phase("prepare_batch"));
            problem.prepare_batch(xs);
        }
        let _span = metrics.map(|m| m.phase("eval"));
        self.map_chunks(xs, |chunk| problem.evaluate_batch(chunk))
    }

    /// Evaluates a batch of decision vectors into [`Individual`]s (rank and
    /// crowding left unassigned), preserving batch order.
    pub fn evaluate_individuals<P: MultiObjectiveProblem>(
        &self,
        problem: &P,
        variables: Vec<Vec<f64>>,
    ) -> Vec<Individual> {
        let evaluated = self.evaluate_batch(problem, &variables);
        variables
            .into_iter()
            .zip(evaluated)
            .map(|(x, (objectives, violation))| {
                Individual::from_evaluated(x, objectives, violation)
            })
            .collect()
    }
}

/// The pre-pool strategy, kept as a measured baseline: spawns `workers`
/// scoped OS threads for this one batch and tears them down again.
///
/// `benches/batch_eval.rs` races this against a persistent [`Executor`] pool
/// to demonstrate why the pool replaced it; production code should never
/// call it.
pub fn scoped_evaluate_batch<P: MultiObjectiveProblem>(
    problem: &P,
    xs: &[Vec<f64>],
    workers: usize,
) -> Vec<(Vec<f64>, f64)> {
    problem.prepare_batch(xs);
    let workers = workers.max(1).min(xs.len().max(1));
    if workers <= 1 {
        return problem.evaluate_batch(xs);
    }
    let chunk_size = xs.len().div_ceil(workers);
    let mut results: Vec<(Vec<f64>, f64)> = Vec::with_capacity(xs.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = xs
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || problem.evaluate_batch(chunk)))
            .collect();
        for handle in handles {
            results.extend(handle.join().expect("evaluation thread must not panic"));
        }
    });
    results
}

// ------------------------------------------------------------- the pool --

/// Completion tracking for one `run_chunks` call: a countdown of outstanding
/// jobs plus the first panic payload any of them produced.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(jobs: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining: jobs,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Marks one job finished, recording its panic payload if it had one.
    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.state.lock().expect("latch lock poisoned");
        state.remaining -= 1;
        if state.panic.is_none() {
            state.panic = panic;
        }
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every job completed; returns the first panic payload.
    fn wait(&self) -> Option<Box<dyn std::any::Any + Send>> {
        let mut state = self.state.lock().expect("latch lock poisoned");
        while state.remaining > 0 {
            state = self.done.wait(state).expect("latch lock poisoned");
        }
        state.panic.take()
    }
}

/// Long-lived worker threads parked on a shared job channel.
///
/// An *n*-way pool spawns only `n - 1` OS threads: `run_chunks` always
/// executes one chunk on the calling thread (which would otherwise idle at
/// the barrier), so the caller is the n-th lane and a spawned n-th worker
/// could never receive work from a single caller.
struct WorkerPool {
    /// `Some` until shutdown; dropping it is what makes the workers exit.
    sender: Option<mpsc::Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    /// Configured parallelism (caller lane included), not thread count.
    workers: usize,
    /// Live load gauges behind [`Executor::stats`].
    gauges: Arc<PoolGauges>,
    /// The owning executor's telemetry cell (workers hold their own clone).
    metrics: Arc<OnceLock<MetricsRegistry>>,
}

/// Relaxed-atomic load gauges shared between the pool handle, its workers,
/// and any thread taking an [`ExecutorStats`] snapshot.
#[derive(Debug, Default)]
struct PoolGauges {
    queued: AtomicUsize,
    active: AtomicUsize,
}

impl WorkerPool {
    fn new(workers: usize, metrics: Arc<OnceLock<MetricsRegistry>>) -> Self {
        debug_assert!(workers >= 2, "one-worker pools short-circuit to serial");
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let gauges = Arc::new(PoolGauges::default());
        let handles = (0..workers - 1)
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                let gauges = Arc::clone(&gauges);
                let metrics = Arc::clone(&metrics);
                // Lane 0 is the caller lane (see `run_chunks`); spawned
                // workers are lanes 1..workers.
                let lane_busy = format!("exec.lane{:02}.busy_us", index + 1);
                std::thread::Builder::new()
                    .name(format!("pathway-exec-{index}"))
                    .spawn(move || loop {
                        // The lock guards only the `recv` hand-off, not job
                        // execution: it is released the moment a job (or the
                        // hang-up) arrives.
                        let message = {
                            let guard = receiver.lock().expect("pool receiver lock poisoned");
                            guard.recv()
                        };
                        match message {
                            // Jobs carry their own panic containment (see
                            // `run_chunks`); the extra catch keeps a worker
                            // alive even if that invariant is ever broken.
                            Ok(job) => {
                                gauges.queued.fetch_sub(1, Ordering::Relaxed);
                                gauges.active.fetch_add(1, Ordering::Relaxed);
                                let started = Instant::now();
                                let _ = panic::catch_unwind(AssertUnwindSafe(job));
                                if let Some(registry) = metrics.get() {
                                    registry.add(&lane_busy, duration_us(started.elapsed()));
                                }
                                gauges.active.fetch_sub(1, Ordering::Relaxed);
                            }
                            Err(mpsc::RecvError) => break,
                        }
                    })
                    .expect("spawning a pool worker thread failed")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            handles,
            workers,
            gauges,
            metrics,
        }
    }

    /// Runs `f` over every chunk: chunks `1..` go to the pool, chunk `0`
    /// runs on the calling thread (the caller would otherwise idle-wait),
    /// and the call blocks until all chunks completed. Panics from any chunk
    /// are re-raised here after the barrier.
    fn run_chunks<T, R, F>(&self, chunks: &[&[T]], f: &F) -> Vec<Vec<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> Vec<R> + Sync,
    {
        let slots: Vec<Mutex<Option<Vec<R>>>> = chunks.iter().map(|_| Mutex::new(None)).collect();
        let latch = Latch::new(chunks.len() - 1);
        let metrics = self.metrics.get();
        let sender = self
            .sender
            .as_ref()
            .expect("the pool is only shut down on drop");
        for (index, &chunk) in chunks.iter().enumerate().skip(1) {
            let slots = &slots;
            let latch = &latch;
            let submitted = Instant::now();
            let job = move || {
                if let Some(registry) = metrics {
                    registry.observe_duration(
                        "exec.queue_wait_us",
                        &QUEUE_WAIT_BOUNDS_US,
                        submitted.elapsed(),
                    );
                }
                let chunk_started = Instant::now();
                match panic::catch_unwind(AssertUnwindSafe(|| f(chunk))) {
                    Ok(values) => {
                        if let Some(registry) = metrics {
                            registry.observe_duration(
                                "exec.chunk_us",
                                &CHUNK_BOUNDS_US,
                                chunk_started.elapsed(),
                            );
                        }
                        *slots[index].lock().expect("result slot poisoned") = Some(values);
                        latch.complete(None);
                    }
                    Err(payload) => latch.complete(Some(payload)),
                }
            };
            let boxed: Box<dyn FnOnce() + Send + '_> = Box::new(job);
            // SAFETY: the job borrows `slots`, `latch`, `f` and `chunk`,
            // all of which live on this stack frame. The lifetime is erased
            // to ship the job through the pool's 'static channel, and the
            // erasure is sound because this function does not return (and
            // never unwinds past the borrows) until `latch.wait()` below has
            // observed every submitted job's completion — including the
            // panic path, which counts the latch down before unwinding is
            // contained by `catch_unwind`.
            let boxed: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(boxed) };
            self.gauges.queued.fetch_add(1, Ordering::Relaxed);
            if let Err(mpsc::SendError(job)) = sender.send(boxed) {
                // Unreachable while `self` is alive, but losing a job would
                // deadlock the latch — run it here instead.
                self.gauges.queued.fetch_sub(1, Ordering::Relaxed);
                job();
            }
        }
        // The calling thread is a worker too: it takes the first chunk
        // instead of idling until the pool drains.
        self.gauges.active.fetch_add(1, Ordering::Relaxed);
        let inline_started = Instant::now();
        let inline_panic = match panic::catch_unwind(AssertUnwindSafe(|| f(chunks[0]))) {
            Ok(values) => {
                if let Some(registry) = metrics {
                    registry.observe_duration(
                        "exec.chunk_us",
                        &CHUNK_BOUNDS_US,
                        inline_started.elapsed(),
                    );
                }
                *slots[0].lock().expect("result slot poisoned") = Some(values);
                None
            }
            Err(payload) => Some(payload),
        };
        if let Some(registry) = metrics {
            registry.add("exec.lane00.busy_us", duration_us(inline_started.elapsed()));
        }
        self.gauges.active.fetch_sub(1, Ordering::Relaxed);
        // Always reach the barrier before unwinding anything: the workers
        // still hold borrows into this frame until the latch drains.
        let pool_panic = latch.wait();
        if let Some(payload) = inline_panic {
            panic::resume_unwind(payload);
        }
        if let Some(payload) = pool_panic {
            panic::resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every completed chunk stored its result")
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Hang up the channel, then join: each worker exits its recv loop
        // once the queue drains.
        drop(self.sender.take());
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{BinhKorn, Schaffer};

    fn candidates(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![-5.0 + i as f64 * 0.37]).collect()
    }

    #[test]
    fn backend_construction_short_circuits_degenerate_pools() {
        assert!(!Executor::new(EvalBackend::Serial).is_pooled());
        assert!(!Executor::new(EvalBackend::Threads(0)).is_pooled());
        assert!(!Executor::new(EvalBackend::Threads(1)).is_pooled());
        let pool = Executor::new(EvalBackend::Threads(3));
        assert!(pool.is_pooled());
        assert_eq!(pool.workers(), 3);
        assert_eq!(Executor::serial().workers(), 1);
    }

    #[test]
    fn pool_matches_serial_across_many_batches() {
        let pool = Executor::new(EvalBackend::Threads(4));
        let serial = Executor::serial();
        for batch_len in [0, 1, 2, 3, 7, 13, 50] {
            let xs = candidates(batch_len);
            assert_eq!(
                pool.evaluate_batch(&Schaffer, &xs),
                serial.evaluate_batch(&Schaffer, &xs),
                "batch of {batch_len} diverged"
            );
        }
    }

    #[test]
    fn constraint_violations_survive_the_pool() {
        let xs: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![i as f64 * 0.6, 3.0 - i as f64 * 0.3])
            .collect();
        let pool = Executor::new(EvalBackend::Threads(3));
        let pooled = pool.evaluate_batch(&BinhKorn, &xs);
        assert_eq!(pooled, Executor::serial().evaluate_batch(&BinhKorn, &xs));
        assert!(pooled.iter().any(|(_, v)| *v > 0.0));
    }

    #[test]
    fn map_chunks_preserves_order() {
        let pool = Executor::new(EvalBackend::Threads(3));
        let items: Vec<usize> = (0..100).collect();
        let doubled = pool.map_chunks(&items, |chunk| {
            chunk.iter().map(|v| v * 2).collect::<Vec<_>>()
        });
        assert_eq!(doubled, (0..100).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn evaluate_individuals_preserves_order_and_variables() {
        let xs = candidates(6);
        let pool = Executor::new(EvalBackend::Threads(2));
        let individuals = pool.evaluate_individuals(&Schaffer, xs.clone());
        assert_eq!(individuals.len(), xs.len());
        for (individual, x) in individuals.iter().zip(&xs) {
            assert_eq!(&individual.variables, x);
            assert_eq!(individual.objectives, Schaffer.evaluate(x));
        }
    }

    #[test]
    fn a_panicking_chunk_propagates_and_the_pool_survives() {
        let pool = Executor::new(EvalBackend::Threads(2));
        let items: Vec<usize> = (0..16).collect();
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_chunks(&items, |chunk| {
                if chunk.contains(&12) {
                    panic!("oracle exploded");
                }
                chunk.to_vec()
            })
        }));
        assert!(outcome.is_err(), "the chunk panic must reach the caller");
        // The pool is still serviceable afterwards.
        let squares = pool.map_chunks(&items, |chunk| {
            chunk.iter().map(|v| v * v).collect::<Vec<_>>()
        });
        assert_eq!(squares.len(), items.len());
    }

    #[test]
    fn stats_report_configuration_and_return_to_idle() {
        let serial = Executor::serial();
        assert_eq!(
            serial.stats(),
            ExecutorStats {
                workers: 1,
                queued_chunks: 0,
                active_workers: 0
            }
        );

        let pool = Executor::new(EvalBackend::Threads(3));
        assert_eq!(pool.stats().workers, 3);
        assert_eq!(pool.stats().queued_chunks, 0);
        assert_eq!(pool.stats().active_workers, 0);

        // While a batch is in flight, at least the caller lane is active
        // (the closure runs *inside* map_chunks).
        let items: Vec<usize> = (0..64).collect();
        let seen_active = AtomicUsize::new(0);
        pool.map_chunks(&items, |chunk| {
            seen_active.fetch_max(pool.stats().active_workers, Ordering::Relaxed);
            chunk.to_vec()
        });
        assert!(seen_active.load(Ordering::Relaxed) >= 1);

        // Idle again once the batch completed.
        let after = pool.stats();
        assert_eq!(after.queued_chunks, 0);
        assert_eq!(after.active_workers, 0);
    }

    #[test]
    fn scoped_baseline_matches_the_pool() {
        let xs = candidates(11);
        let pool = Executor::new(EvalBackend::Threads(3));
        assert_eq!(
            scoped_evaluate_batch(&Schaffer, &xs, 3),
            pool.evaluate_batch(&Schaffer, &xs)
        );
    }

    #[test]
    fn metrics_record_batches_without_changing_results() {
        let pool = Executor::new(EvalBackend::Threads(3));
        pool.set_metrics(MetricsRegistry::new());
        let xs = candidates(30);
        let pooled = pool.evaluate_batch(&Schaffer, &xs);
        assert_eq!(pooled, Executor::serial().evaluate_batch(&Schaffer, &xs));

        let snapshot = pool.metrics().expect("registry attached").snapshot();
        assert_eq!(snapshot.counter("exec.batches"), Some(1));
        assert_eq!(snapshot.counter("exec.candidates"), Some(30));
        assert_eq!(snapshot.counter("exec.inline_chunks"), Some(1));
        assert_eq!(snapshot.counter("exec.chunks"), Some(2));
        assert_eq!(snapshot.counter("phase.prepare_batch.calls"), Some(1));
        assert_eq!(snapshot.counter("phase.eval.calls"), Some(1));
        let waits = snapshot
            .histogram("exec.queue_wait_us")
            .expect("queued chunks record their wait");
        assert_eq!(waits.count, 2);
        let chunk_times = snapshot
            .histogram("exec.chunk_us")
            .expect("chunks record their execution time");
        assert_eq!(chunk_times.count, 3);
        assert!(snapshot.counter("exec.lane00.busy_us").is_some());

        // A second registry is ignored: the first attachment wins.
        pool.set_metrics(MetricsRegistry::new());
        pool.evaluate_batch(&Schaffer, &xs);
        let again = pool.metrics().expect("registry attached").snapshot();
        assert_eq!(again.counter("exec.batches"), Some(2));
    }

    #[test]
    fn debug_formats_name_the_mode() {
        assert_eq!(format!("{:?}", Executor::serial()), "Executor::Serial");
        let pool = Executor::new(EvalBackend::Threads(2));
        assert_eq!(format!("{pool:?}"), "Executor::Pool(2-way)");
    }
}
