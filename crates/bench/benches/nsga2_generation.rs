//! Cost of a single NSGA-II generation on the leaf-redesign problem as a
//! function of the population size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathway_core::prelude::*;

fn bench_nsga2_generation(c: &mut Criterion) {
    let problem = LeafRedesignProblem::new(Scenario::present_low_export());
    let mut group = c.benchmark_group("nsga2_generation");
    group.sample_size(10);
    for &population in &[25usize, 50, 100] {
        group.bench_with_input(
            BenchmarkId::from_parameter(population),
            &population,
            |b, &population| {
                b.iter(|| {
                    let mut solver = Nsga2::new(
                        Nsga2Config {
                            population_size: population,
                            generations: 0,
                            ..Default::default()
                        },
                        7,
                    );
                    solver.initialize(&problem);
                    solver.step(&problem);
                    solver.population().len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_nsga2_generation);
criterion_main!(benches);
