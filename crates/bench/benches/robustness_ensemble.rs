//! Cost of the robustness yield Γ versus Monte-Carlo ensemble size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathway_core::prelude::*;
use pathway_moo::robustness::{global_yield, RobustnessOptions};

fn bench_robustness(c: &mut Criterion) {
    let problem = LeafRedesignProblem::new(Scenario::present_low_export());
    let natural = EnzymePartition::natural();
    let mut group = c.benchmark_group("robustness_ensemble");
    group.sample_size(10);
    for &trials in &[500usize, 1_000, 5_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(trials),
            &trials,
            |b, &trials| {
                let options = RobustnessOptions {
                    global_trials: trials,
                    ..Default::default()
                };
                b.iter(|| {
                    global_yield(natural.capacities(), |x| problem.uptake(x), &options)
                        .yield_fraction
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_robustness);
criterion_main!(benches);
