//! Batched offspring evaluation: persistent pool vs per-batch scoped
//! threads vs serial, and whole-batch oracle kernels vs per-candidate maps.
//!
//! Two claims this bench exists to demonstrate:
//!
//! 1. **The persistent executor pool beats per-batch scoped spawning.**
//!    Evaluating one Geobacter candidate is a sparse steady-state residual —
//!    microseconds of work — so the ~10 µs/thread cost of re-spawning scoped
//!    threads every batch used to eat most of the parallel speedup (and all
//!    of it for small batches). The pool pays thread creation once per run:
//!    `executor_pool` should match or beat `scoped_threads` at every batch
//!    size, most visibly in the `small_batch` group.
//! 2. **The whole-batch residual beats per-candidate mapping.** The batched
//!    `GeobacterFluxProblem::evaluate_batch` scores an entire offspring
//!    batch with one sparse matrix × dense matrix product; `mapped_oracle`
//!    forces the per-candidate default path over the same problem. Both are
//!    bit-identical; only the traversal count differs.
//! 3. **Tail stealing beats fixed chunks on skewed batches.** A real ODE
//!    leaf batch where a run of candidates costs ~13x the rest (they never
//!    settle; the rest warm-start from a frozen parent library) starves
//!    fixed chunking — one lane grinds while the other idles. The
//!    executor's index-stealing splitter rebalances the tail and stays
//!    bit-identical to serial (`tests/determinism.rs` proves the slot
//!    commit), so `executor_pool_stealing` should clearly beat
//!    `scoped_fixed_chunks` in the `skewed_stealing` group.
//!
//! Set `PATHWAY_BENCH_PROFILE=quick` (CI does) for a reduced model and
//! sample count that still exercises every code path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathway_core::prelude::*;
use pathway_moo::exec::scoped_evaluate_batch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `(reactions, population, sample_size)` — paper scale by default, reduced
/// under `PATHWAY_BENCH_PROFILE=quick`.
fn profile() -> (usize, usize, usize) {
    match std::env::var("PATHWAY_BENCH_PROFILE").as_deref() {
        Ok("quick") => (96, 32, 5),
        _ => (608, 100, 10),
    }
}

fn candidates(problem: &GeobacterFluxProblem, count: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(42);
    let bounds = problem.bounds();
    (0..count)
        .map(|_| {
            bounds
                .iter()
                .map(|&(lower, upper)| {
                    if upper > lower {
                        rng.gen_range(lower..=upper)
                    } else {
                        lower
                    }
                })
                .collect()
        })
        .collect()
}

/// Forces the default per-candidate `evaluate_batch` over a problem that
/// overrides it: delegates everything *except* the batched entry point.
struct MappedOracle<'p>(&'p GeobacterFluxProblem);

impl MultiObjectiveProblem for MappedOracle<'_> {
    fn num_variables(&self) -> usize {
        self.0.num_variables()
    }
    fn num_objectives(&self) -> usize {
        self.0.num_objectives()
    }
    fn bounds(&self) -> Vec<(f64, f64)> {
        self.0.bounds()
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        self.0.evaluate(x)
    }
    fn constraint_violation(&self, x: &[f64]) -> f64 {
        self.0.constraint_violation(x)
    }
    fn name(&self) -> &str {
        "geobacter-flux-mapped"
    }
}

/// Pool vs scoped vs serial on a population-sized batch (the acceptance
/// case: the 608-reaction model at pop 100), and on a deliberately small
/// batch where per-batch thread spawning is pure overhead.
fn bench_executors(c: &mut Criterion) {
    let (reactions, population, samples) = profile();
    let model = GeobacterModel::builder().reactions(reactions).build();
    let problem = GeobacterFluxProblem::new(&model).expect("problem builds");

    for (group_name, batch_len) in [
        ("batch_eval", population),
        ("batch_eval_small", (population / 12).max(4)),
    ] {
        let batch = candidates(&problem, batch_len);
        let mut group = c.benchmark_group(group_name);
        group.sample_size(samples);
        let case = format!("geobacter_pop{batch_len}");
        group.bench_function(BenchmarkId::new(&case, "serial"), |b| {
            let serial = Executor::serial();
            b.iter(|| serial.evaluate_batch(&problem, &batch).len())
        });
        for workers in [2usize, 4] {
            group.bench_function(
                BenchmarkId::new(&case, format!("scoped_threads{workers}")),
                |b| b.iter(|| scoped_evaluate_batch(&problem, &batch, workers).len()),
            );
            group.bench_function(
                BenchmarkId::new(&case, format!("executor_pool{workers}")),
                |b| {
                    // Built once, fed every iteration — the whole point.
                    let pool = Executor::new(EvalBackend::Threads(workers));
                    b.iter(|| pool.evaluate_batch(&problem, &batch).len())
                },
            );
        }
        group.finish();
    }
}

/// Whole-batch sparse mat×mat residual vs the per-candidate map it
/// replaced, on identical candidates (results are bit-identical; this
/// measures the kernel only).
fn bench_oracle_amortization(c: &mut Criterion) {
    let (reactions, population, samples) = profile();
    let model = GeobacterModel::builder().reactions(reactions).build();
    let problem = GeobacterFluxProblem::new(&model).expect("problem builds");
    let batch = candidates(&problem, population);

    let mut group = c.benchmark_group("oracle");
    // One oracle call is ~100-300µs; more samples cost little and keep the
    // comparison stable on noisy shared machines.
    group.sample_size(samples * 4);
    let case = format!("geobacter_residual_pop{population}");
    group.bench_function(BenchmarkId::new(&case, "batched_matmat"), |b| {
        b.iter(|| problem.evaluate_batch(&batch).len())
    });
    group.bench_function(BenchmarkId::new(&case, "mapped_per_candidate"), |b| {
        let mapped = MappedOracle(&problem);
        b.iter(|| mapped.evaluate_batch(&batch).len())
    });
    group.finish();
}

/// A batch whose expensive candidates (a 0.7x-scaled pathway that relaxes
/// too slowly to settle within the fast integrator's 800 s horizon, ~29 ms)
/// sit in the middle of lane 0's fixed-chunk half, surrounded by cheap
/// designs that warm-start off the committed parent library (~2 ms). The
/// placement spans the later claim blocks of lane 0's range, which is
/// exactly the work a tail thief can take over.
fn skewed_leaf_batch(batch_len: usize) -> Vec<Vec<f64>> {
    let natural = EnzymePartition::natural();
    (0..batch_len)
        .map(|i| {
            if (batch_len / 8..3 * batch_len / 8).contains(&i) {
                natural.scaled(0.7).capacities().to_vec()
            } else {
                natural.scaled(1.0 + 0.02 * i as f64).capacities().to_vec()
            }
        })
        .collect()
}

/// Settles the batch once cold, commits the settling designs as the parent
/// library, then freezes it: every timed iteration sees the same
/// warm-vs-never-settling cost split, because the frozen library neither
/// absorbs the expensive designs nor drifts between samples.
fn warmed_leaf_problem(batch: &[Vec<f64>]) -> OdeLeafRedesignProblem {
    let problem = OdeLeafRedesignProblem::new(Scenario::present_low_export());
    problem.prepare_batch(batch);
    problem.evaluate_batch(batch);
    problem.prepare_batch(batch);
    problem.freeze_warm_start_pool();
    problem
}

/// Fixed chunks vs the index-stealing splitter on the skewed ODE batch,
/// both on two workers. Fixed chunking pins the expensive run to lane 0
/// (wall clock ≈ the loaded lane); the splitter lets lane 1 steal the
/// expensive tail once its own cheap half drains. Results are bit-identical
/// either way — this group measures scheduling only, so the gap needs two
/// physical cores to show (on one core both collapse to the serial total).
fn bench_skewed_stealing(c: &mut Criterion) {
    let (_, population, samples) = profile();
    let batch_len = if population <= 32 { 32 } else { 64 };
    let batch = skewed_leaf_batch(batch_len);

    let mut group = c.benchmark_group("skewed_stealing");
    group.sample_size(samples);
    let case = format!("ode_leaf_pop{batch_len}");
    group.bench_function(BenchmarkId::new(&case, "scoped_fixed_chunks2"), |b| {
        let problem = warmed_leaf_problem(&batch);
        b.iter(|| scoped_evaluate_batch(&problem, &batch, 2).len())
    });
    group.bench_function(BenchmarkId::new(&case, "executor_pool_stealing2"), |b| {
        let problem = warmed_leaf_problem(&batch);
        let pool = Executor::new(EvalBackend::Threads(2));
        b.iter(|| pool.evaluate_batch(&problem, &batch).len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_executors,
    bench_oracle_amortization,
    bench_skewed_stealing
);
criterion_main!(benches);
