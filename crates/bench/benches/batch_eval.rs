//! Serial vs threaded batched offspring evaluation on the paper-scale
//! Geobacter problem.
//!
//! Evaluating one candidate costs a sparse steady-state residual over the
//! 608-reaction stoichiometric matrix; a generation evaluates a full
//! population-sized batch of them, which is where the study's wall-clock
//! goes. On 4 hardware threads `Threads(4)` should finish the 100-candidate
//! batch at least 2× faster than `Serial`; on fewer cores it degrades
//! gracefully towards serial cost (the backends are bit-identical either
//! way, so the choice is purely about speed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathway_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn candidates(problem: &GeobacterFluxProblem, count: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(42);
    let bounds = problem.bounds();
    (0..count)
        .map(|_| {
            bounds
                .iter()
                .map(|&(lower, upper)| {
                    if upper > lower {
                        rng.gen_range(lower..=upper)
                    } else {
                        lower
                    }
                })
                .collect()
        })
        .collect()
}

fn bench_batch_eval(c: &mut Criterion) {
    let model = GeobacterModel::builder().reactions(608).build();
    let problem = GeobacterFluxProblem::new(&model).expect("paper-scale problem builds");
    let batch = candidates(&problem, 100);

    let mut group = c.benchmark_group("batch_eval");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("geobacter_pop100", "serial"), |b| {
        b.iter(|| EvalBackend::Serial.evaluate_batch(&problem, &batch).len())
    });
    for workers in [2usize, 4] {
        group.bench_function(
            BenchmarkId::new("geobacter_pop100", format!("threads{workers}")),
            |b| {
                b.iter(|| {
                    EvalBackend::Threads(workers)
                        .evaluate_batch(&problem, &batch)
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_eval);
criterion_main!(benches);
