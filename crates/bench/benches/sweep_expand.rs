//! Sweep grid expansion cost versus cell count.
//!
//! `SweepSpec::from_text` validates the *whole* grid up front (every cell
//! is substituted, re-parsed and re-validated), so its cost scales with
//! the product of the axis lengths. This bench pins that cost so the
//! up-front validation stays cheap next to even a single cell's run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathway_moo::engine::SweepSpec;

/// A kind x problem x seed grid with `seeds` seeds: 3 x 2 x seeds cells.
fn sweep_text(seeds: usize) -> String {
    let seed_axis = (1..=seeds)
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(" | ");
    format!(
        "pathway-sweep v1\n\n\
         [sweep]\n\
         optimizer.kind = nsga2 | moead | archipelago\n\
         problem.name = schaffer | zdt1\n\
         run.seed = {seed_axis}\n\n\
         [problem]\nname = schaffer\n\n\
         [optimizer]\nkind = nsga2\npopulation = 24\nbackend = serial\n\n\
         [run]\nseed = 1\ncheckpoint_every = 20\nreference_point = 25, 25\n\n\
         [stop]\nmax_generations = 60\n"
    )
}

fn bench_sweep_expand(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_expand");
    group.sample_size(20);
    for &seeds in &[2usize, 16, 64] {
        let text = sweep_text(seeds);
        let cells = 3 * 2 * seeds;
        // Parse + whole-grid validation, as `pathway sweep` pays it.
        group.bench_with_input(BenchmarkId::new("from_text", cells), &text, |b, text| {
            b.iter(|| SweepSpec::from_text(text).unwrap());
        });
        // Re-expansion of an already validated sweep (the runner's path).
        let sweep = SweepSpec::from_text(&text).unwrap();
        group.bench_with_input(BenchmarkId::new("expand", cells), &sweep, |b, sweep| {
            b.iter(|| sweep.expand().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_expand);
criterion_main!(benches);
