//! Migration ablation: quality (hypervolume) and cost of PMO2 with broadcast
//! migration, ring migration and no migration at all, at a fixed budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathway_core::prelude::*;
use pathway_moo::metrics::hypervolume;

fn run_with_topology(topology: MigrationTopology, problem: &LeafRedesignProblem) -> f64 {
    let config = ArchipelagoConfig {
        islands: 2,
        island_config: Nsga2Config {
            population_size: 24,
            generations: 30,
            ..Default::default()
        },
        migration_interval: 10,
        migration_probability: 0.5,
        topology,
    };
    let front = Archipelago::new(config, 5).run(problem);
    let matrix: Vec<Vec<f64>> = front.iter().map(|i| i.objectives.clone()).collect();
    let normalized: Vec<Vec<f64>> = matrix
        .iter()
        .map(|p| {
            vec![
                p[0] / 45.0 + 1.0,
                p[1] / (4.0 * EnzymePartition::NATURAL_NITROGEN),
            ]
        })
        .collect();
    hypervolume(&normalized, &[1.0, 1.0])
}

fn bench_migration_ablation(c: &mut Criterion) {
    let problem = LeafRedesignProblem::new(Scenario::present_low_export());
    let mut group = c.benchmark_group("migration_ablation");
    group.sample_size(10);
    for (name, topology) in [
        ("broadcast", MigrationTopology::Broadcast),
        ("ring", MigrationTopology::Ring),
        ("isolated", MigrationTopology::Isolated),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &topology,
            |b, &topology| {
                b.iter(|| run_with_topology(topology, &problem));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_migration_ablation);
criterion_main!(benches);
