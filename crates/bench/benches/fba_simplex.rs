//! Flux balance analysis solve time versus synthetic Geobacter model size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathway_fba::geobacter::GeobacterModel;

fn bench_fba(c: &mut Criterion) {
    let mut group = c.benchmark_group("fba_simplex");
    group.sample_size(10);
    for &reactions in &[152usize, 304, 608] {
        group.bench_with_input(
            BenchmarkId::from_parameter(reactions),
            &reactions,
            |b, &reactions| {
                let model = GeobacterModel::builder().reactions(reactions).build();
                b.iter(|| {
                    model
                        .max_biomass()
                        .expect("biomass FBA is feasible")
                        .objective_value
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fba);
criterion_main!(benches);
