//! Hypervolume indicator cost versus front size, in 2 and 3 dimensions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathway_moo::metrics::hypervolume;

fn synthetic_front_2d(size: usize) -> Vec<Vec<f64>> {
    (0..size)
        .map(|i| {
            let f1 = i as f64 / size as f64;
            vec![f1, 1.0 - f1.sqrt()]
        })
        .collect()
}

fn synthetic_front_3d(size: usize) -> Vec<Vec<f64>> {
    (0..size)
        .map(|i| {
            let t = i as f64 / size as f64;
            let phi = t * std::f64::consts::FRAC_PI_2;
            vec![phi.cos() * 0.9, phi.sin() * 0.9, t]
        })
        .collect()
}

fn bench_hypervolume(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypervolume");
    group.sample_size(20);
    for &size in &[100usize, 400, 800] {
        let front2 = synthetic_front_2d(size);
        group.bench_with_input(BenchmarkId::new("2d", size), &front2, |b, front| {
            b.iter(|| hypervolume(front, &[1.1, 1.1]));
        });
        let front3 = synthetic_front_3d(size);
        group.bench_with_input(BenchmarkId::new("3d", size), &front3, |b, front| {
            b.iter(|| hypervolume(front, &[1.1, 1.1, 1.1]));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hypervolume);
criterion_main!(benches);
