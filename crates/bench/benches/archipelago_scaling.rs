//! PMO2 wall time versus island count at a fixed per-island budget — the
//! coarse-grained parallelism ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathway_core::prelude::*;

fn bench_archipelago_scaling(c: &mut Criterion) {
    let problem = LeafRedesignProblem::new(Scenario::present_low_export());
    let mut group = c.benchmark_group("archipelago_scaling");
    group.sample_size(10);
    for &islands in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(islands),
            &islands,
            |b, &islands| {
                b.iter(|| {
                    let config = ArchipelagoConfig {
                        islands,
                        island_config: Nsga2Config {
                            population_size: 24,
                            generations: 20,
                            ..Default::default()
                        },
                        migration_interval: 10,
                        migration_probability: 0.5,
                        topology: MigrationTopology::Broadcast,
                    };
                    Archipelago::new(config, 3).run(&problem).len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_archipelago_scaling);
criterion_main!(benches);
