//! Fast non-dominated sort cost versus population size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathway_moo::{fast_nondominated_sort, Individual};

fn synthetic_population(size: usize) -> Vec<Individual> {
    (0..size)
        .map(|i| {
            let x = (i as f64 * 0.618_033_988_75).fract();
            let y = (i as f64 * 0.414_213_562_37).fract();
            Individual {
                variables: vec![x, y],
                objectives: vec![x, y],
                violation: 0.0,
                rank: usize::MAX,
                crowding: 0.0,
            }
        })
        .collect()
}

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("nondominated_sort");
    group.sample_size(20);
    for &size in &[100usize, 200, 400] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let population = synthetic_population(size);
            b.iter(|| {
                let mut copy = population.clone();
                fast_nondominated_sort(&mut copy).len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sort);
criterion_main!(benches);
