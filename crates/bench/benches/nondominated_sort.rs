//! Fast non-dominated sort and crowding-assignment cost versus population
//! size.
//!
//! `alloc` goes through the convenience wrappers (fresh scratch + copied-out
//! fronts each call, a fresh index buffer per crowding call); `scratch`
//! reuses a [`SortScratch`] across calls the way `Nsga2` does every
//! generation — including crowding assignment via
//! [`SortScratch::assign_crowding`] — performing no per-call allocations
//! once the buffers are warm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathway_moo::{
    assign_crowding_distance, fast_nondominated_sort, fast_nondominated_sort_with, Individual,
    SortScratch,
};

fn synthetic_population(size: usize) -> Vec<Individual> {
    (0..size)
        .map(|i| {
            let x = (i as f64 * 0.618_033_988_75).fract();
            let y = (i as f64 * 0.414_213_562_37).fract();
            Individual {
                variables: vec![x, y],
                objectives: vec![x, y],
                violation: 0.0,
                rank: usize::MAX,
                crowding: 0.0,
            }
        })
        .collect()
}

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("nondominated_sort");
    group.sample_size(20);
    for &size in &[100usize, 200, 400] {
        group.bench_with_input(BenchmarkId::new("alloc", size), &size, |b, &size| {
            let mut population = synthetic_population(size);
            b.iter(|| fast_nondominated_sort(&mut population).len());
        });
        group.bench_with_input(BenchmarkId::new("scratch", size), &size, |b, &size| {
            let mut population = synthetic_population(size);
            let mut scratch = SortScratch::new();
            b.iter(|| {
                fast_nondominated_sort_with(&mut population, &mut scratch);
                scratch.num_fronts()
            });
        });
    }
    group.finish();
}

fn bench_crowding(c: &mut Criterion) {
    let mut group = c.benchmark_group("crowding_assignment");
    group.sample_size(20);
    for &size in &[100usize, 200, 400] {
        group.bench_with_input(BenchmarkId::new("alloc", size), &size, |b, &size| {
            let mut population = synthetic_population(size);
            let fronts = fast_nondominated_sort(&mut population);
            b.iter(|| {
                for front in &fronts {
                    assign_crowding_distance(&mut population, front);
                }
                population.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("scratch", size), &size, |b, &size| {
            let mut population = synthetic_population(size);
            let mut scratch = SortScratch::new();
            fast_nondominated_sort_with(&mut population, &mut scratch);
            b.iter(|| {
                scratch.assign_crowding(&mut population);
                population.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sort, bench_crowding);
criterion_main!(benches);
