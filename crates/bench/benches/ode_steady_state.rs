//! Cost of one photosynthesis uptake evaluation: the fast analytic
//! steady-state model versus the full ODE integration (fast preset).

use criterion::{criterion_group, criterion_main, Criterion};
use pathway_photosynthesis::{EnzymePartition, OdeUptakeEvaluator, Scenario, UptakeModel};

fn bench_uptake_evaluation(c: &mut Criterion) {
    let natural = EnzymePartition::natural();
    let scenario = Scenario::present_low_export();

    let mut group = c.benchmark_group("uptake_evaluation");
    group.sample_size(20);
    group.bench_function("analytic_steady_state", |b| {
        let model = UptakeModel::new();
        b.iter(|| model.co2_uptake(&natural, &scenario));
    });
    group.bench_function("ode_steady_state_fast", |b| {
        let evaluator = OdeUptakeEvaluator::fast();
        b.iter(|| evaluator.co2_uptake(&natural, &scenario).expect("settles"));
    });
    group.finish();
}

criterion_group!(benches, bench_uptake_evaluation);
criterion_main!(benches);
