//! Shared helpers for the benchmark and experiment harness.
//!
//! The `pathway-bench` crate has two faces:
//!
//! * **experiment binaries** (`src/bin/`): one per table and figure of the
//!   paper, each printing the corresponding rows/series
//!   (`cargo run --release -p pathway-bench --bin table1`);
//! * **Criterion benches** (`benches/`): performance and ablation benchmarks
//!   for the building blocks (NSGA-II generations, migration topologies,
//!   hypervolume, ODE steady states, FBA, robustness ensembles).
//!
//! Experiment budgets scale with the `PATHWAY_BENCH_SCALE` environment
//! variable: `1` (default) is a laptop-friendly budget, larger values approach
//! the paper's original budgets.

/// Returns the experiment scale factor from `PATHWAY_BENCH_SCALE` (default 1).
pub fn scale() -> usize {
    std::env::var("PATHWAY_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(1)
}

/// Scales a base budget by the experiment scale factor, saturating at `max`.
pub fn scaled(base: usize, max: usize) -> usize {
    (base * scale()).min(max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_one() {
        // The environment variable is not set under `cargo test`.
        if std::env::var("PATHWAY_BENCH_SCALE").is_err() {
            assert_eq!(scale(), 1);
            assert_eq!(scaled(40, 1000), 40);
        }
    }

    #[test]
    fn scaled_saturates_at_the_cap() {
        assert_eq!(scaled(500, 200), 200);
    }
}
