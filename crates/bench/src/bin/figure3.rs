//! Figure 3: the photosynthetic Pareto surface — robustness yield versus CO₂
//! uptake and nitrogen consumption for 50 equally spaced Pareto points plus
//! the automatically selected trade-off designs.
//!
//! Run with: `cargo run --release -p pathway-bench --bin figure3`

use pathway_bench::scaled;
use pathway_core::prelude::*;

fn main() {
    let scenario = Scenario::present_high_export();
    let study = LeafDesignStudy::new(scenario)
        .with_budget(scaled(60, 200), scaled(200, 2000))
        .with_migration(scaled(100, 200), 0.5)
        .with_robustness_trials(scaled(1_000, 5_000));
    let outcome = study.run(3);

    println!("# Figure 3 — robustness vs CO2 uptake vs nitrogen (Pareto surface)");
    println!("co2_uptake_umol_m2_s\tnitrogen_mg_l\trobustness_percent");

    let spread = outcome.spread(50);
    for design in spread {
        let yield_percent = outcome.robustness_percent(design, study.robustness_trials());
        println!(
            "{:.4}\t{:.1}\t{:.1}",
            design.uptake, design.nitrogen, yield_percent
        );
    }

    // The extremes (Pareto relative minima) for reference: the paper observes
    // they are markedly less robust than interior trade-off points.
    for (label, design) in [
        ("max_co2_uptake", outcome.max_uptake().clone()),
        ("min_nitrogen", outcome.min_nitrogen().clone()),
        ("closest_to_ideal", outcome.closest_to_ideal().clone()),
    ] {
        let yield_percent = outcome.robustness_percent(&design, study.robustness_trials());
        println!(
            "# {label}: uptake {:.3}, nitrogen {:.0}, robustness {:.1}%",
            design.uptake, design.nitrogen, yield_percent
        );
    }
}
