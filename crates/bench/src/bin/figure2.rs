//! Figure 2: per-enzyme capacity of the re-engineering candidate B relative to
//! the natural leaf. Candidate B preserves the natural CO₂ uptake with roughly
//! half the natural protein nitrogen.
//!
//! Run with: `cargo run --release -p pathway-bench --bin figure2`

use pathway_bench::scaled;
use pathway_core::prelude::*;

fn main() {
    let scenario = Scenario::present_low_export();
    let outcome = LeafDesignStudy::new(scenario)
        .with_budget(scaled(80, 200), scaled(300, 2000))
        .with_migration(scaled(100, 200), 0.5)
        .run(2024);

    let candidate_b = outcome
        .candidate_b(1.0)
        .or_else(|| outcome.candidate_b(0.95))
        .expect("a candidate preserving (most of) the natural uptake exists on the front");

    println!("# Figure 2 — candidate B vs natural leaf");
    println!(
        "# candidate B: uptake {:.3} µmol/m²/s, nitrogen {:.0} mg/l ({:.0}% of the natural {:.0})",
        candidate_b.uptake,
        candidate_b.nitrogen,
        100.0 * candidate_b.nitrogen / EnzymePartition::NATURAL_NITROGEN,
        EnzymePartition::NATURAL_NITROGEN
    );
    println!("enzyme\tcapacity_ratio_engineered_over_natural");
    let ratios = candidate_b.partition.ratio_to_natural();
    for (kind, ratio) in EnzymeKind::ALL.iter().zip(ratios) {
        println!("{}\t{:.3}", kind.name(), ratio);
    }
}
