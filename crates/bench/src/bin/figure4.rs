//! Figure 4: the Pareto front of *Geobacter sulfurreducens* — biomass
//! production versus electron production, with the five labelled trade-off
//! points A–E and the steady-state-violation reduction achieved by the search.
//!
//! Run with: `cargo run --release -p pathway-bench --bin figure4`
//!
//! The default budget uses the full 608-reaction synthetic model; set
//! `PATHWAY_BENCH_SCALE` to raise the optimization budget.

use pathway_bench::scaled;
use pathway_core::prelude::*;

fn main() {
    let reactions = 608;
    let outcome = GeobacterStudy::new()
        .with_reactions(reactions)
        .with_budget(scaled(60, 200), scaled(120, 1000))
        .run(4)
        .expect("the Geobacter study must run");

    println!("# Figure 4 — Geobacter sulfurreducens: biomass vs electron production");
    println!(
        "# {} reactions; steady-state violation: initial guess {:.3e}, best evolved {:.3e} ({:.1}x reduction)",
        reactions,
        outcome.initial_violation,
        outcome.best_violation,
        outcome.initial_violation / outcome.best_violation.max(1e-12)
    );
    println!("label\telectron_production_mmol_gdw_h\tbiomass_production_mmol_gdw_h");
    let labels = ["A", "B", "C", "D", "E"];
    for (label, point) in labels.iter().zip(outcome.labelled_points(5)) {
        println!(
            "{label}\t{:.2}\t{:.3}",
            point.electron_production, point.biomass_production
        );
    }
    println!();
    println!("# full front ({} points)", outcome.front.len());
    println!("electron_production\tbiomass_production\tviolation");
    let mut front = outcome.front.clone();
    front.sort_by(|a, b| {
        a.electron_production
            .partial_cmp(&b.electron_production)
            .expect("fluxes are finite")
    });
    for point in front {
        println!(
            "{:.2}\t{:.3}\t{:.2e}",
            point.electron_production, point.biomass_production, point.violation
        );
    }
}
