//! Figure 1: Pareto fronts of CO₂ uptake vs protein nitrogen for the six
//! environmental scenarios (three CO₂ eras × two triose-phosphate export
//! rates), plus the natural operating point.
//!
//! Run with: `cargo run --release -p pathway-bench --bin figure1`

use pathway_bench::scaled;
use pathway_core::prelude::*;

fn main() {
    println!("# Figure 1 — multi-objective optimization of CO2 uptake vs nitrogen");
    println!(
        "# natural operating point: uptake {:.3} ± 10% µmol/m²/s, nitrogen {:.0} ± 10% mg/l",
        Scenario::NATURAL_UPTAKE,
        EnzymePartition::NATURAL_NITROGEN
    );
    let population = scaled(60, 200);
    let generations = scaled(200, 2000);

    for (index, scenario) in Scenario::all().into_iter().enumerate() {
        let outcome = LeafDesignStudy::new(scenario)
            .with_budget(population, generations)
            .with_migration(scaled(100, 200), 0.5)
            .run(1000 + index as u64);
        let mut designs = outcome.front.clone();
        designs.sort_by(|a, b| a.uptake.partial_cmp(&b.uptake).expect("uptake is finite"));

        println!();
        println!(
            "## series: {scenario} — {} Pareto-optimal points ({} evaluations)",
            designs.len(),
            outcome.evaluations
        );
        println!("co2_uptake_umol_m2_s\tnitrogen_mg_l");
        for design in designs {
            println!("{:.4}\t{:.1}", design.uptake, design.nitrogen);
        }
    }
}
