//! Table 1: Pareto-front quality comparison between PMO2 and MOEA/D on the
//! leaf-redesign problem (Ci = 270 µmol/mol, triose-phosphate export
//! 3 mmol/l/s): number of non-dominated points, relative coverage R_p, global
//! coverage G_p and hypervolume V_p.
//!
//! Run with: `cargo run --release -p pathway-bench --bin table1`

use pathway_bench::scaled;
use pathway_core::prelude::*;
use pathway_core::{render_table, CoverageRow};
use pathway_moo::metrics::{global_coverage, hypervolume, relative_coverage, union_front};

fn objective_matrix(front: &[Individual]) -> Vec<Vec<f64>> {
    front.iter().map(|i| i.objectives.clone()).collect()
}

fn main() {
    let problem = LeafRedesignProblem::new(Scenario::present_high_export());
    let population = scaled(80, 200);
    let generations = scaled(250, 2000);

    let pmo2_front = Archipelago::new(
        ArchipelagoConfig {
            islands: 2,
            island_config: Nsga2Config {
                population_size: population,
                generations,
                ..Default::default()
            },
            migration_interval: scaled(100, 200),
            migration_probability: 0.5,
            topology: MigrationTopology::Broadcast,
        },
        11,
    )
    .run(&problem);
    let moead_front = Moead::new(
        MoeadConfig {
            population_size: population,
            generations,
            ..Default::default()
        },
        11,
    )
    .run(&problem);

    let pmo2 = objective_matrix(&pmo2_front);
    let moead = objective_matrix(&moead_front);
    let global = union_front(&[pmo2.clone(), moead.clone()]);
    // Reference point: zero uptake (i.e. -uptake = 0) and 4x the natural
    // nitrogen, normalized into the hypervolume computation directly.
    let reference = [1.0, 4.0 * EnzymePartition::NATURAL_NITROGEN];
    let normalize = |fronts: &Vec<Vec<f64>>| {
        fronts
            .iter()
            .map(|p| vec![p[0] / 45.0 + 1.0, p[1] / reference[1]])
            .collect::<Vec<_>>()
    };
    let unit_reference = [1.0, 1.0];

    let rows: Vec<CoverageRow> = [("PMO2", &pmo2), ("MOEA-D", &moead)]
        .into_iter()
        .map(|(name, front)| CoverageRow {
            algorithm: name.to_string(),
            points: front.len(),
            relative_coverage: relative_coverage(front, &global),
            global_coverage: global_coverage(front, &global),
            hypervolume: hypervolume(&normalize(front), &unit_reference),
        })
        .collect();

    println!("# Table 1 — Pareto-front analysis (PMO2 vs MOEA/D)");
    println!(
        "# leaf-redesign problem, Ci = 270 µmol/mol, triose-P export 3 mmol/l/s, {} global Pareto points",
        global.len()
    );
    let cells: Vec<Vec<String>> = rows.iter().map(CoverageRow::cells).collect();
    println!(
        "{}",
        render_table(&["Algorithm", "Points", "Rp", "Gp", "Vp"], &cells)
    );
}
