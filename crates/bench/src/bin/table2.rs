//! Table 2: the automatically selected trade-off designs (closest-to-ideal,
//! maximum CO₂ uptake, minimum nitrogen, maximum yield) with their CO₂ uptake,
//! nitrogen and robustness yield.
//!
//! Run with: `cargo run --release -p pathway-bench --bin table2`

use pathway_bench::scaled;
use pathway_core::prelude::*;
use pathway_core::{render_table, SelectionRow};

fn main() {
    let study = LeafDesignStudy::new(Scenario::present_high_export())
        .with_budget(scaled(80, 200), scaled(250, 2000))
        .with_migration(scaled(100, 200), 0.5)
        .with_robustness_trials(scaled(2_000, 5_000));
    let outcome = study.run(22);
    let selected = outcome.selected_designs(study.robustness_trials(), 50);

    let rows = [
        ("Closest-to-ideal", &selected.closest_to_ideal),
        ("Max CO2 Uptake", &selected.max_uptake),
        ("Min Nitrogen", &selected.min_nitrogen),
        ("Max Yield", &selected.max_yield),
    ];
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, (design, yield_percent))| {
            SelectionRow {
                selection: name.to_string(),
                co2_uptake: design.uptake,
                nitrogen: design.nitrogen,
                yield_percent: *yield_percent,
            }
            .cells()
        })
        .collect();

    println!("# Table 2 — selected Pareto-optimal leaf designs and their robustness yield");
    println!(
        "# front of {} Pareto-optimal designs ({} evaluations, {:.2}% of evaluated partitions)",
        outcome.front.len(),
        outcome.evaluations,
        100.0 * outcome.front.len() as f64 / outcome.evaluations as f64
    );
    println!(
        "{}",
        render_table(&["Selection", "CO2 Uptake", "Nitrogen", "Yield %"], &cells)
    );
}
