//! Black-box tests for the `pathway-linalg` hot paths: the simplex LP solver
//! against small programs with known optima, the LU round-trip
//! `P·A = L·U`, and dense/sparse mat-vec agreement.

use pathway_linalg::{
    simplex, Bound, CsrMatrix, LinalgError, LinearProgram, LpStatus, LuDecomposition, Matrix,
    Objective, Vector,
};
use proptest::prelude::*;

/// Deterministic stream of f64 in [-1, 1) for a named seed, reusing the
/// vendored proptest generator rather than hand-rolling another PRNG.
fn pseudo_stream(seed: u64, tag: &str) -> proptest::TestRng {
    proptest::TestRng::deterministic(&format!("hot_paths/{tag}/{seed}"))
}

fn next_signed(rng: &mut proptest::TestRng) -> f64 {
    rng.next_f64() * 2.0 - 1.0
}

/// A diagonally dominant (hence nonsingular) n-by-n matrix from a seed.
fn well_conditioned_matrix(n: usize, seed: u64) -> Matrix {
    let mut rng = pseudo_stream(seed, "matrix");
    let mut data = Vec::with_capacity(n * n);
    for r in 0..n {
        for c in 0..n {
            let base = next_signed(&mut rng);
            data.push(if r == c { base + 4.0 } else { base });
        }
    }
    Matrix::from_flat(n, n, data).expect("shape matches data length")
}

// ---------------------------------------------------------------- simplex --

#[test]
fn simplex_solves_the_classic_production_lp() {
    // max 3x + 5y  s.t.  x <= 4, 2y <= 12, 3x + 2y <= 18, x, y >= 0.
    // Known optimum: 36 at (2, 6).
    let mut lp = LinearProgram::new(2, Objective::Maximize);
    lp.set_objective_coefficient(0, 3.0).unwrap();
    lp.set_objective_coefficient(1, 5.0).unwrap();
    lp.add_less_eq(&[(0, 1.0)], 4.0).unwrap();
    lp.add_less_eq(&[(1, 2.0)], 12.0).unwrap();
    lp.add_less_eq(&[(0, 3.0), (1, 2.0)], 18.0).unwrap();

    let solution = simplex::solve(&lp).expect("program is feasible and bounded");
    assert_eq!(solution.status, LpStatus::Optimal);
    assert!((solution.objective_value - 36.0).abs() < 1e-9);
    assert!((solution.variables[0] - 2.0).abs() < 1e-9);
    assert!((solution.variables[1] - 6.0).abs() < 1e-9);
}

#[test]
fn simplex_solves_a_minimization_with_upper_bounds() {
    // min 2x + 3y  s.t.  x + y >= 10, 0 <= x <= 8, y >= 0.
    // Cheapest to saturate x: optimum 22 at (8, 2).
    let mut lp = LinearProgram::new(2, Objective::Minimize);
    lp.set_objective_coefficient(0, 2.0).unwrap();
    lp.set_objective_coefficient(1, 3.0).unwrap();
    lp.set_bound(0, Bound::interval(0.0, 8.0)).unwrap();
    lp.add_greater_eq(&[(0, 1.0), (1, 1.0)], 10.0).unwrap();

    let solution = simplex::solve(&lp).expect("program is feasible and bounded");
    assert!((solution.objective_value - 22.0).abs() < 1e-9);
    assert!((solution.variables[0] - 8.0).abs() < 1e-9);
    assert!((solution.variables[1] - 2.0).abs() < 1e-9);
}

#[test]
fn simplex_handles_equality_constraints_and_free_variables() {
    // min x - z  s.t.  x + y + z = 4, z <= 1, x >= 0, y >= 0, z free.
    // Optimum: x = 0, z = 1 (its upper bound), objective -1.
    let mut lp = LinearProgram::new(3, Objective::Minimize);
    lp.set_objective_coefficient(0, 1.0).unwrap();
    lp.set_objective_coefficient(2, -1.0).unwrap();
    lp.set_bound(2, Bound::interval(f64::NEG_INFINITY, 1.0))
        .unwrap();
    lp.add_equal(&[(0, 1.0), (1, 1.0), (2, 1.0)], 4.0).unwrap();

    let solution = simplex::solve(&lp).expect("program is feasible and bounded");
    assert!((solution.objective_value - (-1.0)).abs() < 1e-9);
    assert!(solution.variables[0].abs() < 1e-9);
    assert!((solution.variables[2] - 1.0).abs() < 1e-9);
    // The equality constraint holds at the optimum.
    let total: f64 = solution.variables.iter().sum();
    assert!((total - 4.0).abs() < 1e-9);
}

#[test]
fn simplex_reports_infeasible_and_unbounded_programs() {
    // x >= 0 and x <= -1 cannot both hold.
    let mut infeasible = LinearProgram::new(1, Objective::Maximize);
    infeasible.set_objective_coefficient(0, 1.0).unwrap();
    infeasible.add_less_eq(&[(0, 1.0)], -1.0).unwrap();
    assert!(matches!(
        simplex::solve(&infeasible),
        Err(LinalgError::Infeasible)
    ));

    // max x with x unconstrained from above.
    let mut unbounded = LinearProgram::new(1, Objective::Maximize);
    unbounded.set_objective_coefficient(0, 1.0).unwrap();
    assert!(matches!(
        simplex::solve(&unbounded),
        Err(LinalgError::Unbounded)
    ));
}

#[test]
fn simplex_respects_fixed_variables() {
    // max x + y with y fixed at 2 and x <= 3: optimum 5 at (3, 2).
    let mut lp = LinearProgram::new(2, Objective::Maximize);
    lp.set_objective_coefficient(0, 1.0).unwrap();
    lp.set_objective_coefficient(1, 1.0).unwrap();
    lp.set_bound(0, Bound::interval(0.0, 3.0)).unwrap();
    lp.set_bound(1, Bound::fixed(2.0)).unwrap();

    let solution = simplex::solve(&lp).expect("program is feasible and bounded");
    assert!((solution.objective_value - 5.0).abs() < 1e-9);
    assert!((solution.variables[1] - 2.0).abs() < 1e-12);
}

// --------------------------------------------------------------------- LU --

/// Applies the row permutation of an LU factorization to `a`, forming `P·A`.
fn permute_rows(a: &Matrix, perm: &[usize]) -> Matrix {
    let rows: Vec<Vec<f64>> = perm.iter().map(|&src| a.row(src).to_vec()).collect();
    Matrix::from_rows(&rows).expect("permuted rows keep the original shape")
}

fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn lu_round_trip_on_a_known_matrix() {
    let a = Matrix::from_rows(&[
        vec![2.0, 1.0, 1.0],
        vec![4.0, -6.0, 0.0],
        vec![-2.0, 7.0, 2.0],
    ])
    .unwrap();
    let lu = LuDecomposition::new(&a).expect("matrix is nonsingular");

    let pa = permute_rows(&a, lu.permutation());
    let reconstructed = lu.l().mat_mul(&lu.u()).unwrap();
    assert!(max_abs_diff(&pa, &reconstructed) < 1e-12);

    // The factors have the advertised triangular structure.
    let (l, u) = (lu.l(), lu.u());
    for r in 0..3 {
        assert!((l[(r, r)] - 1.0).abs() < 1e-15, "L has a unit diagonal");
        for c in (r + 1)..3 {
            assert_eq!(l[(r, c)], 0.0, "L is lower triangular");
        }
        for c in 0..r {
            assert_eq!(u[(r, c)], 0.0, "U is upper triangular");
        }
    }
}

#[test]
fn lu_rejects_singular_and_non_square_inputs() {
    let singular = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
    assert!(matches!(
        LuDecomposition::new(&singular),
        Err(LinalgError::SingularMatrix { .. })
    ));
    let rect = Matrix::zeros(2, 3);
    assert!(matches!(
        LuDecomposition::new(&rect),
        Err(LinalgError::DimensionMismatch { .. })
    ));
}

proptest! {
    #[test]
    fn prop_lu_round_trip_reconstructs_pa(n in 1usize..8, seed in 0u64..300) {
        let a = well_conditioned_matrix(n, seed);
        let lu = LuDecomposition::new(&a).expect("diagonally dominant matrices are nonsingular");
        let pa = permute_rows(&a, lu.permutation());
        let reconstructed = lu.l().mat_mul(&lu.u()).unwrap();
        prop_assert!(max_abs_diff(&pa, &reconstructed) < 1e-10);
    }

    #[test]
    fn prop_lu_solve_then_multiply_recovers_rhs(n in 1usize..8, seed in 0u64..300) {
        let a = well_conditioned_matrix(n, seed);
        let mut rng = pseudo_stream(seed, "rhs");
        let b: Vector = (0..n).map(|_| next_signed(&mut rng)).collect();
        let x = a.lu().unwrap().solve(&b).unwrap();
        let residual = (a.mat_vec(&x).unwrap() - b).norm2();
        prop_assert!(residual < 1e-9);
    }
}

// ------------------------------------------------------- dense vs. sparse --

proptest! {
    #[test]
    fn prop_dense_and_sparse_matvec_agree(
        rows in 1usize..10,
        cols in 1usize..10,
        seed in 0u64..500,
    ) {
        // Roughly half the entries are structural zeros.
        let mut rng = pseudo_stream(seed, "entries");
        let mut triplets = Vec::new();
        let mut dense = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let value = next_signed(&mut rng);
                if value > 0.0 {
                    triplets.push((r, c, value));
                    dense[(r, c)] = value;
                }
            }
        }
        let sparse = CsrMatrix::from_triplets(rows, cols, &triplets).unwrap();
        let mut vec_rng = pseudo_stream(seed, "vector");
        let v: Vector = (0..cols).map(|_| next_signed(&mut vec_rng)).collect();

        let from_dense = dense.mat_vec(&v).unwrap();
        let from_sparse = sparse.mat_vec(&v).unwrap();
        prop_assert!((from_dense - from_sparse).norm_inf() < 1e-12);

        // Round-tripping through to_dense preserves every entry.
        prop_assert!(max_abs_diff(&sparse.to_dense(), &dense) == 0.0);
    }
}
