use crate::{LinalgError, Matrix, Vector};

/// LU factorization with partial (row) pivoting: `P A = L U`.
///
/// The factorization is stored compactly: the strictly lower triangle of
/// `lu` holds the multipliers of `L` (whose diagonal is implicitly 1) and the
/// upper triangle holds `U`.
///
/// # Example
///
/// ```
/// use pathway_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), pathway_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]])?;
/// let lu = a.lu()?;
/// let x = lu.solve(&Vector::from(vec![3.0, 5.0]))?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    lu: Matrix,
    /// Row permutation: row `i` of the factored matrix came from row `perm[i]`
    /// of the original.
    perm: Vec<usize>,
    /// Sign of the permutation, used for the determinant.
    perm_sign: f64,
}

impl LuDecomposition {
    /// Pivot magnitudes below this threshold are treated as singular.
    const SINGULARITY_TOL: f64 = 1e-13;

    /// Factors the square matrix `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `a` is not square.
    /// * [`LinalgError::SingularMatrix`] if a pivot is (numerically) zero.
    pub fn new(a: &Matrix) -> crate::Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{0}x{0}", a.rows()),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Find the pivot row.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < Self::SINGULARITY_TOL {
                return Err(LinalgError::SingularMatrix { pivot: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            // Eliminate below the pivot.
            let pivot = lu[(k, k)];
            for r in (k + 1)..n {
                let factor = lu[(r, k)] / pivot;
                lu[(r, k)] = factor;
                for c in (k + 1)..n {
                    let val = lu[(k, c)];
                    lu[(r, c)] -= factor * val;
                }
            }
        }

        Ok(LuDecomposition {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// The unit lower-triangular factor `L` as a dense matrix.
    pub fn l(&self) -> Matrix {
        let n = self.dim();
        let mut l = Matrix::identity(n);
        for r in 1..n {
            for c in 0..r {
                l[(r, c)] = self.lu[(r, c)];
            }
        }
        l
    }

    /// The upper-triangular factor `U` as a dense matrix.
    pub fn u(&self) -> Matrix {
        let n = self.dim();
        let mut u = Matrix::zeros(n, n);
        for r in 0..n {
            for c in r..n {
                u[(r, c)] = self.lu[(r, c)];
            }
        }
        u
    }

    /// The row permutation of `P A = L U`: row `i` of `L U` corresponds to
    /// row `permutation()[i]` of the original matrix.
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Solves `A x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &Vector) -> crate::Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("len {n}"),
                found: format!("len {}", b.len()),
            });
        }
        // Forward substitution with permuted b (L y = P b).
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for j in 0..i {
                acc -= self.lu[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution (U x = y).
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Inverse of the original matrix, built column by column.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LuDecomposition::solve`].
    pub fn inverse(&self) -> crate::Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        for col in 0..n {
            let mut e = Vector::zeros(n);
            e[col] = 1.0;
            let x = self.solve(&e)?;
            for row in 0..n {
                inv[(row, col)] = x[row];
            }
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_a_well_conditioned_system() {
        let a = Matrix::from_rows(&[
            vec![4.0, -2.0, 1.0],
            vec![-2.0, 4.0, -2.0],
            vec![1.0, -2.0, 4.0],
        ])
        .unwrap();
        let b = Vector::from(vec![1.0, 2.0, 3.0]);
        let x = a.lu().unwrap().solve(&b).unwrap();
        let r = &a.mat_vec(&x).unwrap() - &b;
        assert!(r.norm2() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a
            .lu()
            .unwrap()
            .solve(&Vector::from(vec![2.0, 3.0]))
            .unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(a.lu(), Err(LinalgError::SingularMatrix { .. })));
    }

    #[test]
    fn non_square_matrix_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn determinant_of_diagonal_matrix() {
        let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 5.0]]).unwrap();
        assert!((a.lu().unwrap().determinant() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_tracks_permutation() {
        // Swapping two rows of the identity gives determinant -1.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert!((a.lu().unwrap().determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[
            vec![3.0, 0.5, -1.0],
            vec![0.5, 2.0, 0.25],
            vec![-1.0, 0.25, 4.0],
        ])
        .unwrap();
        let inv = a.lu().unwrap().inverse().unwrap();
        let prod = a.mat_mul(&inv).unwrap();
        let diff = &prod - &Matrix::identity(3);
        assert!(diff.frobenius_norm() < 1e-10);
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = Matrix::identity(3);
        let lu = a.lu().unwrap();
        assert!(lu.solve(&Vector::zeros(2)).is_err());
    }

    proptest! {
        #[test]
        fn prop_solve_recovers_known_solution(n in 1usize..7, seed in 0u64..500) {
            // Build a diagonally dominant (hence nonsingular) matrix.
            let mut a = Matrix::zeros(n, n);
            for r in 0..n {
                let mut row_sum = 0.0;
                for c in 0..n {
                    if r != c {
                        let v = (((r * 31 + c * 17) as u64 + seed) % 19) as f64 / 10.0 - 0.9;
                        a[(r, c)] = v;
                        row_sum += v.abs();
                    }
                }
                a[(r, r)] = row_sum + 1.0 + (seed % 5) as f64;
            }
            let x_true: Vector = (0..n).map(|i| (i as f64) - 1.5).collect();
            let b = a.mat_vec(&x_true).unwrap();
            let x = a.lu().unwrap().solve(&b).unwrap();
            for i in 0..n {
                prop_assert!((x[i] - x_true[i]).abs() < 1e-8);
            }
        }
    }
}
