use crate::{LinalgError, Matrix, Vector};

/// LU factorization with partial (row) pivoting: `P A = L U`.
///
/// The factorization is stored compactly: the strictly lower triangle of
/// `lu` holds the multipliers of `L` (whose diagonal is implicitly 1) and the
/// upper triangle holds `U`.
///
/// # Example
///
/// ```
/// use pathway_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), pathway_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]])?;
/// let lu = a.lu()?;
/// let x = lu.solve(&Vector::from(vec![3.0, 5.0]))?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    lu: Matrix,
    /// Row permutation: row `i` of the factored matrix came from row `perm[i]`
    /// of the original.
    perm: Vec<usize>,
    /// Sign of the permutation, used for the determinant.
    perm_sign: f64,
}

impl LuDecomposition {
    /// Pivot magnitudes below this threshold are treated as singular.
    const SINGULARITY_TOL: f64 = 1e-13;

    /// Factors the square matrix `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `a` is not square.
    /// * [`LinalgError::SingularMatrix`] if a pivot is (numerically) zero.
    pub fn new(a: &Matrix) -> crate::Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{0}x{0}", a.rows()),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        factor_in_place(&mut lu, &mut perm, &mut perm_sign)?;
        Ok(LuDecomposition {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Re-factors `a` into this decomposition's storage without allocating:
    /// the same full partial-pivoting factorization as
    /// [`LuDecomposition::new`], reusing the `lu` buffer and permutation
    /// vector. This is the hot-loop entry point for callers that solve a
    /// sequence of same-shaped systems (one Newton iteration after another,
    /// one batch member after another).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `a`'s shape differs from
    ///   [`LuDecomposition::dim`].
    /// * [`LinalgError::SingularMatrix`] if a pivot is (numerically) zero —
    ///   the decomposition is then partially overwritten and must not be
    ///   used for solves until a later `refactor` succeeds.
    pub fn refactor(&mut self, a: &Matrix) -> crate::Result<()> {
        self.lu.copy_from(a)?;
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i;
        }
        self.perm_sign = 1.0;
        factor_in_place(&mut self.lu, &mut self.perm, &mut self.perm_sign)
    }

    /// Re-factors `a` reusing the *stored pivot sequence*: rows are loaded
    /// already permuted and eliminated straight down, skipping the pivot
    /// search and row swaps entirely. For slowly changing matrices — the
    /// Newton matrices of consecutive iterations within one implicit ODE
    /// step, or the per-batch FBA systems sharing one sparsity structure —
    /// the previous pivot order stays numerically valid, and this path
    /// reuses it the way a sparse solver reuses its symbolic factorization.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `a`'s shape differs from
    ///   [`LuDecomposition::dim`].
    /// * [`LinalgError::SingularMatrix`] if a reused pivot falls under the
    ///   singularity tolerance — the matrix has drifted too far for the old
    ///   pivot order, and the caller should fall back to
    ///   [`LuDecomposition::refactor`]. The decomposition is then partially
    ///   overwritten and must not be used for solves until a refactor
    ///   succeeds.
    pub fn refactor_reusing_pivots(&mut self, a: &Matrix) -> crate::Result<()> {
        let n = self.dim();
        if a.rows() != n || a.cols() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{n}x{n}"),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        // Load rows pre-permuted: working row i is row perm[i] of `a`.
        for i in 0..n {
            let src = self.perm[i];
            self.lu.row_mut(i).copy_from_slice(a.row(src));
        }
        let data = self.lu.as_mut_slice();
        for k in 0..n {
            let pivot = data[k * n + k];
            if pivot.abs() < Self::SINGULARITY_TOL {
                return Err(LinalgError::SingularMatrix { pivot: k });
            }
            let (upper, lower) = data.split_at_mut((k + 1) * n);
            let pivot_row = &upper[k * n + k + 1..];
            for row in lower.chunks_exact_mut(n) {
                let factor = row[k] / pivot;
                row[k] = factor;
                for (dst, &src) in row[k + 1..].iter_mut().zip(pivot_row) {
                    *dst -= factor * src;
                }
            }
        }
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// The unit lower-triangular factor `L` as a dense matrix.
    pub fn l(&self) -> Matrix {
        let n = self.dim();
        let mut l = Matrix::identity(n);
        for r in 1..n {
            for c in 0..r {
                l[(r, c)] = self.lu[(r, c)];
            }
        }
        l
    }

    /// The upper-triangular factor `U` as a dense matrix.
    pub fn u(&self) -> Matrix {
        let n = self.dim();
        let mut u = Matrix::zeros(n, n);
        for r in 0..n {
            for c in r..n {
                u[(r, c)] = self.lu[(r, c)];
            }
        }
        u
    }

    /// The row permutation of `P A = L U`: row `i` of `L U` corresponds to
    /// row `permutation()[i]` of the original matrix.
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Solves `A x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &Vector) -> crate::Result<Vector> {
        let mut x = Vector::zeros(self.dim());
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` into a caller-provided buffer, allocating nothing.
    ///
    /// The forward pass writes the intermediate `y` of `L y = P b` into `x`
    /// and the backward pass overwrites it bottom-up (each `x[i]` only reads
    /// already-finalized entries below it), so a single buffer suffices and
    /// the arithmetic — hence the result, bit for bit — is identical to
    /// [`LuDecomposition::solve`]. This is the per-iteration entry point for
    /// the implicit ODE Newton loop and the batch FBA path.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b` or `x` is not of
    /// length [`LuDecomposition::dim`].
    pub fn solve_into(&self, b: &Vector, x: &mut Vector) -> crate::Result<()> {
        let n = self.dim();
        if b.len() != n || x.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("len {n}"),
                found: format!("len {} / len {}", b.len(), x.len()),
            });
        }
        // Forward substitution with permuted b (L y = P b), y into x.
        for i in 0..n {
            let row = self.lu.row(i);
            let mut acc = b[self.perm[i]];
            for j in 0..i {
                acc -= row[j] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution (U x = y), in place.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= row[j] * x[j];
            }
            x[i] = acc / row[i];
        }
        Ok(())
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Inverse of the original matrix, built column by column.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LuDecomposition::solve`].
    pub fn inverse(&self) -> crate::Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        for col in 0..n {
            let mut e = Vector::zeros(n);
            e[col] = 1.0;
            let x = self.solve(&e)?;
            for row in 0..n {
                inv[(row, col)] = x[row];
            }
        }
        Ok(inv)
    }
}

/// The partial-pivoting elimination shared by [`LuDecomposition::new`] and
/// [`LuDecomposition::refactor`]: factors `lu` in place, recording the row
/// permutation and its sign. Row slices (instead of per-element indexing)
/// keep the update loop autovectorizable without changing the accumulation
/// order, so results are bit-identical to the textbook element loop.
fn factor_in_place(lu: &mut Matrix, perm: &mut [usize], perm_sign: &mut f64) -> crate::Result<()> {
    let n = lu.rows();
    let data = lu.as_mut_slice();
    for k in 0..n {
        // Find the pivot row.
        let mut pivot_row = k;
        let mut pivot_val = data[k * n + k].abs();
        for r in (k + 1)..n {
            let v = data[r * n + k].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < LuDecomposition::SINGULARITY_TOL {
            return Err(LinalgError::SingularMatrix { pivot: k });
        }
        if pivot_row != k {
            for c in 0..n {
                data.swap(k * n + c, pivot_row * n + c);
            }
            perm.swap(k, pivot_row);
            *perm_sign = -*perm_sign;
        }
        // Eliminate below the pivot.
        let pivot = data[k * n + k];
        let (upper, lower) = data.split_at_mut((k + 1) * n);
        let pivot_tail = &upper[k * n + k + 1..];
        for row in lower.chunks_exact_mut(n) {
            let factor = row[k] / pivot;
            row[k] = factor;
            for (dst, &src) in row[k + 1..].iter_mut().zip(pivot_tail) {
                *dst -= factor * src;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_a_well_conditioned_system() {
        let a = Matrix::from_rows(&[
            vec![4.0, -2.0, 1.0],
            vec![-2.0, 4.0, -2.0],
            vec![1.0, -2.0, 4.0],
        ])
        .unwrap();
        let b = Vector::from(vec![1.0, 2.0, 3.0]);
        let x = a.lu().unwrap().solve(&b).unwrap();
        let r = &a.mat_vec(&x).unwrap() - &b;
        assert!(r.norm2() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a
            .lu()
            .unwrap()
            .solve(&Vector::from(vec![2.0, 3.0]))
            .unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(a.lu(), Err(LinalgError::SingularMatrix { .. })));
    }

    #[test]
    fn non_square_matrix_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn determinant_of_diagonal_matrix() {
        let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 5.0]]).unwrap();
        assert!((a.lu().unwrap().determinant() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_tracks_permutation() {
        // Swapping two rows of the identity gives determinant -1.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert!((a.lu().unwrap().determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[
            vec![3.0, 0.5, -1.0],
            vec![0.5, 2.0, 0.25],
            vec![-1.0, 0.25, 4.0],
        ])
        .unwrap();
        let inv = a.lu().unwrap().inverse().unwrap();
        let prod = a.mat_mul(&inv).unwrap();
        let diff = &prod - &Matrix::identity(3);
        assert!(diff.frobenius_norm() < 1e-10);
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = Matrix::identity(3);
        let lu = a.lu().unwrap();
        assert!(lu.solve(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn solve_into_round_trips_against_solve_bit_for_bit() {
        let a = Matrix::from_rows(&[
            vec![4.0, -2.0, 1.0],
            vec![-2.0, 4.0, -2.0],
            vec![1.0, -2.0, 4.0],
        ])
        .unwrap();
        let lu = a.lu().unwrap();
        let mut x = Vector::zeros(3);
        for b in [
            Vector::from(vec![1.0, 2.0, 3.0]),
            Vector::from(vec![-0.5, 1e6, 1e-9]),
            Vector::zeros(3),
        ] {
            let allocated = lu.solve(&b).unwrap();
            lu.solve_into(&b, &mut x).unwrap();
            assert_eq!(x.as_slice(), allocated.as_slice());
        }
        assert!(lu.solve_into(&Vector::zeros(2), &mut x).is_err());
        let mut short = Vector::zeros(2);
        assert!(lu.solve_into(&Vector::zeros(3), &mut short).is_err());
    }

    #[test]
    fn refactor_matches_a_fresh_factorization() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let mut lu = a.lu().unwrap();
        lu.refactor(&b).unwrap();
        let fresh = b.lu().unwrap();
        assert_eq!(lu.permutation(), fresh.permutation());
        assert_eq!(lu.determinant(), fresh.determinant());
        let rhs = Vector::from(vec![5.0, 4.0]);
        assert_eq!(
            lu.solve(&rhs).unwrap().as_slice(),
            fresh.solve(&rhs).unwrap().as_slice()
        );
        // Shape mismatches are rejected before touching the storage.
        assert!(lu.refactor(&Matrix::identity(3)).is_err());
    }

    #[test]
    fn pivot_reuse_solves_a_perturbed_system_accurately() {
        // A needs a row swap (zero leading entry); a small perturbation
        // keeps the same pivot order valid.
        let a = Matrix::from_rows(&[
            vec![0.0, 2.0, 1.0],
            vec![3.0, 1.0, -1.0],
            vec![1.0, -1.0, 2.0],
        ])
        .unwrap();
        let mut perturbed = a.clone();
        for v in perturbed.as_mut_slice() {
            *v += 1e-4;
        }
        let mut lu = a.lu().unwrap();
        lu.refactor_reusing_pivots(&perturbed).unwrap();
        let b = Vector::from(vec![1.0, -2.0, 0.5]);
        let x = lu.solve(&b).unwrap();
        let r = &perturbed.mat_vec(&x).unwrap() - &b;
        assert!(r.norm2() < 1e-10, "residual {}", r.norm2());
        assert!(lu.refactor_reusing_pivots(&Matrix::identity(2)).is_err());
    }

    #[test]
    fn pivot_reuse_reports_singularity_for_incompatible_pivots() {
        // Fresh pivoting on B would swap rows, but A's pivot order leaves a
        // zero on the diagonal — the reuse path must refuse, and a full
        // refactor must recover.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let singular_under_old_order =
            Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let mut lu = a.lu().unwrap();
        assert!(matches!(
            lu.refactor_reusing_pivots(&singular_under_old_order),
            Err(LinalgError::SingularMatrix { .. })
        ));
        lu.refactor(&singular_under_old_order).unwrap();
        let x = lu.solve(&Vector::from(vec![2.0, 3.0])).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    proptest! {
        #[test]
        fn prop_refactor_is_bitwise_equal_to_new(n in 1usize..7, seed in 0u64..200) {
            let mut a = Matrix::zeros(n, n);
            for r in 0..n {
                let mut row_sum = 0.0;
                for c in 0..n {
                    if r != c {
                        let v = (((r * 13 + c * 29) as u64 + seed * 3) % 17) as f64 / 8.0 - 1.0;
                        a[(r, c)] = v;
                        row_sum += v.abs();
                    }
                }
                a[(r, r)] = row_sum + 1.0 + (seed % 3) as f64;
            }
            let fresh = a.lu().unwrap();
            // Seed the workspace with a *different* factorization, then
            // refactor: storage reuse must not leak into the result.
            let mut ws = Matrix::identity(n).lu().unwrap();
            ws.refactor(&a).unwrap();
            prop_assert_eq!(ws.permutation(), fresh.permutation());
            let b: Vector = (0..n).map(|i| (i as f64) * 0.7 - 1.0).collect();
            let mut x = Vector::zeros(n);
            ws.solve_into(&b, &mut x).unwrap();
            prop_assert_eq!(x.as_slice(), fresh.solve(&b).unwrap().as_slice());
        }

        #[test]
        fn prop_solve_recovers_known_solution(n in 1usize..7, seed in 0u64..500) {
            // Build a diagonally dominant (hence nonsingular) matrix.
            let mut a = Matrix::zeros(n, n);
            for r in 0..n {
                let mut row_sum = 0.0;
                for c in 0..n {
                    if r != c {
                        let v = (((r * 31 + c * 17) as u64 + seed) % 19) as f64 / 10.0 - 0.9;
                        a[(r, c)] = v;
                        row_sum += v.abs();
                    }
                }
                a[(r, r)] = row_sum + 1.0 + (seed % 5) as f64;
            }
            let x_true: Vector = (0..n).map(|i| (i as f64) - 1.5).collect();
            let b = a.mat_vec(&x_true).unwrap();
            let x = a.lu().unwrap().solve(&b).unwrap();
            for i in 0..n {
                prop_assert!((x[i] - x_true[i]).abs() < 1e-8);
            }
        }
    }
}
