use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use crate::LinalgError;

/// A dense, heap-allocated vector of `f64` values.
///
/// `Vector` is the common currency between the ODE solvers, the kinetic
/// models and the optimizers. It supports element-wise arithmetic, dot
/// products and the norms used by convergence tests.
///
/// # Example
///
/// ```
/// use pathway_linalg::Vector;
///
/// let a = Vector::from(vec![1.0, 2.0, 3.0]);
/// let b = Vector::from(vec![4.0, 5.0, 6.0]);
/// assert_eq!(a.dot(&b).unwrap(), 32.0);
/// assert_eq!((&a + &b)[0], 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Vector {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector of `len` copies of `value`.
    pub fn filled(len: usize, value: f64) -> Self {
        Vector {
            data: vec![value; len],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying `Vec<f64>`.
    pub fn into_inner(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Mutable iterator over the elements.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.data.iter_mut()
    }

    /// Dot product with another vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn dot(&self, other: &Vector) -> crate::Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("len {}", self.len()),
                found: format!("len {}", other.len()),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Euclidean (L2) norm.
    pub fn norm2(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute value (L-infinity norm). Returns `0.0` for an empty
    /// vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()))
    }

    /// Sum of absolute values (L1 norm).
    pub fn norm1(&self) -> f64 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Element-wise scaling in place.
    pub fn scale_mut(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Returns a new vector scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Vector {
        let mut out = self.clone();
        out.scale_mut(factor);
        out
    }

    /// `self + factor * other`, the fused update used by Runge-Kutta stages.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn axpy(&self, factor: f64, other: &Vector) -> crate::Result<Vector> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("len {}", self.len()),
                found: format!("len {}", other.len()),
            });
        }
        Ok(Vector::from(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a + factor * b)
                .collect::<Vec<_>>(),
        ))
    }

    /// In-place `self += factor * other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn axpy_mut(&mut self, factor: f64, other: &Vector) -> crate::Result<()> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("len {}", self.len()),
                found: format!("len {}", other.len()),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += factor * b;
        }
        Ok(())
    }

    /// Element-wise clamp to `[min, max]`, in place. Useful for keeping
    /// concentrations non-negative during integration.
    pub fn clamp_mut(&mut self, min: f64, max: f64) {
        for v in &mut self.data {
            *v = v.clamp(min, max);
        }
    }

    /// Returns `true` if every element is finite (not NaN and not infinite).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Largest element, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.data.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(m) => Some(m.max(v)),
        })
    }

    /// Smallest element, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.data.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(m) => Some(m.min(v)),
        })
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Vector {
            data: data.to_vec(),
        }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl AsRef<[f64]> for Vector {
    fn as_ref(&self) -> &[f64] {
        &self.data
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.data[index]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.data[index]
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.6}")?;
        }
        write!(f, "]")
    }
}

macro_rules! impl_elementwise_op {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<&Vector> for &Vector {
            type Output = Vector;

            fn $method(self, rhs: &Vector) -> Vector {
                assert_eq!(
                    self.len(),
                    rhs.len(),
                    "vector length mismatch: {} vs {}",
                    self.len(),
                    rhs.len()
                );
                Vector::from(
                    self.data
                        .iter()
                        .zip(rhs.data.iter())
                        .map(|(a, b)| a $op b)
                        .collect::<Vec<_>>(),
                )
            }
        }

        impl $trait<Vector> for Vector {
            type Output = Vector;

            fn $method(self, rhs: Vector) -> Vector {
                (&self).$method(&rhs)
            }
        }

        impl $trait<&Vector> for Vector {
            type Output = Vector;

            fn $method(self, rhs: &Vector) -> Vector {
                (&self).$method(rhs)
            }
        }
    };
}

impl_elementwise_op!(Add, add, +);
impl_elementwise_op!(Sub, sub, -);

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;

    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;

    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl Neg for Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_filled() {
        let z = Vector::zeros(4);
        assert_eq!(z.len(), 4);
        assert!(z.iter().all(|&v| v == 0.0));
        let f = Vector::filled(3, 2.5);
        assert_eq!(f.as_slice(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    fn dot_product_matches_hand_computation() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn dot_product_length_mismatch_errors() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(matches!(
            a.dot(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn norms() {
        let v = Vector::from(vec![3.0, -4.0]);
        assert!((v.norm2() - 5.0).abs() < 1e-15);
        assert_eq!(v.norm_inf(), 4.0);
        assert_eq!(v.norm1(), 7.0);
    }

    #[test]
    fn axpy_and_axpy_mut_agree() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![10.0, 20.0]);
        let c = a.axpy(0.5, &b).unwrap();
        assert_eq!(c.as_slice(), &[6.0, 12.0]);
        let mut d = a.clone();
        d.axpy_mut(0.5, &b).unwrap();
        assert_eq!(d, c);
    }

    #[test]
    fn elementwise_add_sub_and_scale() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
    }

    #[test]
    fn clamp_keeps_values_in_range() {
        let mut v = Vector::from(vec![-1.0, 0.5, 9.0]);
        v.clamp_mut(0.0, 1.0);
        assert_eq!(v.as_slice(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn min_max_and_empty() {
        let v = Vector::from(vec![2.0, -3.0, 7.0]);
        assert_eq!(v.max(), Some(7.0));
        assert_eq!(v.min(), Some(-3.0));
        let e = Vector::zeros(0);
        assert!(e.is_empty());
        assert_eq!(e.max(), None);
        assert_eq!(e.min(), None);
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Vector::from(vec![1.0, 2.0]).is_finite());
        assert!(!Vector::from(vec![1.0, f64::NAN]).is_finite());
        assert!(!Vector::from(vec![f64::INFINITY]).is_finite());
    }

    #[test]
    fn display_is_nonempty() {
        let v = Vector::from(vec![1.0, 2.0]);
        let s = format!("{v}");
        assert!(s.starts_with('[') && s.ends_with(']'));
        assert!(s.contains("1.0"));
    }

    #[test]
    fn from_iterator_collects() {
        let v: Vector = (0..4).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    proptest! {
        #[test]
        fn prop_dot_is_commutative(xs in proptest::collection::vec(-1e3_f64..1e3, 1..32)) {
            let a = Vector::from(xs.clone());
            let b: Vector = xs.iter().map(|v| v * 0.5 + 1.0).collect();
            let ab = a.dot(&b).unwrap();
            let ba = b.dot(&a).unwrap();
            prop_assert!((ab - ba).abs() <= 1e-9 * ab.abs().max(1.0));
        }

        #[test]
        fn prop_triangle_inequality(xs in proptest::collection::vec(-1e3_f64..1e3, 1..32)) {
            let a = Vector::from(xs.clone());
            let b: Vector = xs.iter().map(|v| v - 2.0).collect();
            let lhs = (&a + &b).norm2();
            prop_assert!(lhs <= a.norm2() + b.norm2() + 1e-9);
        }

        #[test]
        fn prop_scaling_scales_norm(xs in proptest::collection::vec(-1e3_f64..1e3, 1..32), k in -10.0_f64..10.0) {
            let a = Vector::from(xs);
            let scaled = a.scaled(k);
            prop_assert!((scaled.norm2() - k.abs() * a.norm2()).abs() <= 1e-6 * (1.0 + a.norm2()));
        }
    }
}
