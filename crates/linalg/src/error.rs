use std::fmt;

/// Error type for all fallible operations in `pathway-linalg`.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands have incompatible shapes.
    DimensionMismatch {
        /// Shape expected by the operation, e.g. `"3x4"` or `"len 5"`.
        expected: String,
        /// Shape actually provided.
        found: String,
    },
    /// The matrix is singular (or numerically singular) and cannot be factored
    /// or solved against.
    SingularMatrix {
        /// Pivot column at which the factorization broke down.
        pivot: usize,
    },
    /// A matrix constructor was handed rows of unequal length.
    RaggedRows {
        /// Index of the first offending row.
        row: usize,
    },
    /// An empty matrix or vector was supplied where a non-empty one is needed.
    Empty,
    /// An index was out of range.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The length or dimension it was checked against.
        len: usize,
    },
    /// The linear program is infeasible: no point satisfies all constraints.
    Infeasible,
    /// The linear program is unbounded in the direction of optimization.
    Unbounded,
    /// The simplex iteration limit was exceeded before reaching optimality.
    IterationLimit {
        /// Number of pivots performed before giving up.
        iterations: usize,
    },
    /// A numerical argument was invalid (NaN bound, negative tolerance, ...).
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            LinalgError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            LinalgError::RaggedRows { row } => {
                write!(f, "row {row} has a different length from row 0")
            }
            LinalgError::Empty => write!(f, "matrix or vector must not be empty"),
            LinalgError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            LinalgError::Infeasible => write!(f, "linear program is infeasible"),
            LinalgError::Unbounded => write!(f, "linear program is unbounded"),
            LinalgError::IterationLimit { iterations } => {
                write!(f, "simplex did not converge within {iterations} pivots")
            }
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LinalgError::DimensionMismatch {
            expected: "3x3".into(),
            found: "2x3".into(),
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 3x3, found 2x3");
        assert_eq!(
            LinalgError::SingularMatrix { pivot: 2 }.to_string(),
            "matrix is singular at pivot column 2"
        );
        assert_eq!(
            LinalgError::Infeasible.to_string(),
            "linear program is infeasible"
        );
        assert_eq!(
            LinalgError::Unbounded.to_string(),
            "linear program is unbounded"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }

    #[test]
    fn error_implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(LinalgError::Empty);
        assert!(e.source().is_none());
    }
}
