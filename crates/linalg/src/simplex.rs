//! A two-phase primal simplex solver for [`LinearProgram`]s with bounded
//! variables.
//!
//! The solver densifies the constraint matrix, converts general bounds to
//! shifted non-negative variables (splitting free variables into a positive
//! and a negative part), adds slack/surplus/artificial columns, and runs a
//! textbook two-phase tableau simplex with Dantzig pricing and a Bland
//! fallback that guarantees termination.
//!
//! Flux balance analysis in `pathway-fba` calls [`solve`] on models with a few
//! hundred reactions, which the dense tableau handles comfortably.

use crate::lp::{Constraint, Relation};
use crate::{LinalgError, LinearProgram, LpSolution, LpStatus, Objective};

/// Tuning options for the simplex solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexOptions {
    /// Hard cap on the total number of pivots across both phases.
    pub max_iterations: usize,
    /// Numerical tolerance used for pricing, ratio tests and feasibility.
    pub tolerance: f64,
    /// Number of Dantzig pivots after which the solver switches to Bland's
    /// rule to guarantee termination in the presence of degeneracy.
    pub bland_threshold: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iterations: 50_000,
            tolerance: 1e-9,
            bland_threshold: 5_000,
        }
    }
}

/// How each original variable maps onto the non-negative solver variables.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = offset + y[col]`
    Shifted { col: usize, offset: f64 },
    /// `x = offset - y[col]` (used when only an upper bound is finite)
    Mirrored { col: usize, offset: f64 },
    /// `x = y[pos] - y[neg]` (free variable)
    Split { pos: usize, neg: usize },
    /// `x = value` (fixed variable, eliminated from the tableau)
    Fixed { value: f64 },
}

struct Tableau {
    /// Constraint rows, canonical with respect to the current basis.
    rows: Vec<Vec<f64>>,
    /// Right-hand side of each row (always kept non-negative at start).
    rhs: Vec<f64>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Total number of columns.
    ncols: usize,
    /// Columns that are artificial variables (banned in phase 2).
    artificial: Vec<bool>,
}

/// Solves a [`LinearProgram`] with default [`SimplexOptions`].
///
/// # Errors
///
/// * [`LinalgError::Infeasible`] if no feasible point exists.
/// * [`LinalgError::Unbounded`] if the objective is unbounded.
/// * [`LinalgError::IterationLimit`] if the pivot cap is exceeded.
pub fn solve(lp: &LinearProgram) -> crate::Result<LpSolution> {
    solve_with_options(lp, &SimplexOptions::default())
}

/// Solves a [`LinearProgram`] with explicit [`SimplexOptions`].
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_with_options(
    lp: &LinearProgram,
    options: &SimplexOptions,
) -> crate::Result<LpSolution> {
    let tol = options.tolerance;
    if tol <= 0.0 || tol.is_nan() {
        return Err(LinalgError::InvalidArgument(
            "tolerance must be positive".into(),
        ));
    }

    // ---- 1. Map original variables to non-negative solver variables. ----
    let mut var_map = Vec::with_capacity(lp.num_vars());
    let mut num_y = 0usize;
    // (column, width) pairs that need an explicit upper-bound row `y <= width`.
    let mut upper_rows: Vec<(usize, f64)> = Vec::new();
    for bound in lp.bounds() {
        let l = bound.lower;
        let u = bound.upper;
        if l.is_finite() && u.is_finite() && (u - l).abs() <= tol {
            var_map.push(VarMap::Fixed { value: l });
        } else if l.is_finite() {
            let col = num_y;
            num_y += 1;
            if u.is_finite() {
                upper_rows.push((col, u - l));
            }
            var_map.push(VarMap::Shifted { col, offset: l });
        } else if u.is_finite() {
            let col = num_y;
            num_y += 1;
            var_map.push(VarMap::Mirrored { col, offset: u });
        } else {
            let pos = num_y;
            let neg = num_y + 1;
            num_y += 2;
            var_map.push(VarMap::Split { pos, neg });
        }
    }

    // ---- 2. Transform constraints into rows over the y variables. ----
    // Each row: (dense coefficients over y, relation, rhs)
    let mut raw_rows: Vec<(Vec<f64>, Relation, f64)> = Vec::new();
    for Constraint {
        coefficients,
        relation,
        rhs,
    } in lp.constraints()
    {
        let mut row = vec![0.0; num_y];
        let mut b = *rhs;
        for &(var, coeff) in coefficients {
            match var_map[var] {
                VarMap::Shifted { col, offset } => {
                    row[col] += coeff;
                    b -= coeff * offset;
                }
                VarMap::Mirrored { col, offset } => {
                    row[col] -= coeff;
                    b -= coeff * offset;
                }
                VarMap::Split { pos, neg } => {
                    row[pos] += coeff;
                    row[neg] -= coeff;
                }
                VarMap::Fixed { value } => {
                    b -= coeff * value;
                }
            }
        }
        raw_rows.push((row, *relation, b));
    }
    for (col, width) in upper_rows {
        let mut row = vec![0.0; num_y];
        row[col] = 1.0;
        raw_rows.push((row, Relation::LessEq, width));
    }

    // ---- 3. Transform the objective. ----
    let sense = match lp.objective() {
        Objective::Minimize => 1.0,
        Objective::Maximize => -1.0,
    };
    let mut cost = vec![0.0; num_y];
    let mut cost_constant = 0.0;
    for (var, &c) in lp.objective_coefficients().iter().enumerate() {
        if c == 0.0 {
            continue;
        }
        let c = c * sense;
        match var_map[var] {
            VarMap::Shifted { col, offset } => {
                cost[col] += c;
                cost_constant += c * offset;
            }
            VarMap::Mirrored { col, offset } => {
                cost[col] -= c;
                cost_constant += c * offset;
            }
            VarMap::Split { pos, neg } => {
                cost[pos] += c;
                cost[neg] -= c;
            }
            VarMap::Fixed { value } => {
                cost_constant += c * value;
            }
        }
    }

    // ---- 4. Build the standard-form tableau with slack/artificial columns. ----
    let m = raw_rows.len();
    // Count extra columns: one slack/surplus per inequality, one artificial per
    // >= or = row (after sign normalization).
    let mut tableau = build_tableau(&raw_rows, num_y, tol);
    let ncols = tableau.ncols;

    // ---- 5. Phase 1: minimize the sum of artificial variables. ----
    let mut iterations = 0usize;
    let any_artificial = tableau.artificial.iter().any(|&a| a);
    if any_artificial {
        let phase1_cost: Vec<f64> = (0..ncols)
            .map(|j| if tableau.artificial[j] { 1.0 } else { 0.0 })
            .collect();
        let no_ban = vec![false; ncols];
        let phase1_value = run_phase(
            &mut tableau,
            &phase1_cost,
            &no_ban,
            options,
            &mut iterations,
        )?;
        if phase1_value > 1e-6 {
            return Err(LinalgError::Infeasible);
        }
        drive_out_artificials(&mut tableau, tol);
    }

    // ---- 6. Phase 2: minimize the real objective. ----
    let mut phase2_cost = vec![0.0; ncols];
    phase2_cost[..num_y].copy_from_slice(&cost[..num_y]);
    // Artificial columns must never re-enter the basis.
    for (coefficient, &is_artificial) in phase2_cost.iter_mut().zip(&tableau.artificial) {
        if is_artificial {
            *coefficient = 0.0;
        }
    }
    let banned = tableau.artificial.clone();
    run_phase(
        &mut tableau,
        &phase2_cost,
        &banned,
        options,
        &mut iterations,
    )?;

    // ---- 7. Read the solution back in the original variable space. ----
    let mut y = vec![0.0; ncols];
    for (i, &b) in tableau.basis.iter().enumerate() {
        y[b] = tableau.rhs[i];
    }
    let mut x = vec![0.0; lp.num_vars()];
    for (var, map) in var_map.iter().enumerate() {
        x[var] = match *map {
            VarMap::Shifted { col, offset } => offset + y[col],
            VarMap::Mirrored { col, offset } => offset - y[col],
            VarMap::Split { pos, neg } => y[pos] - y[neg],
            VarMap::Fixed { value } => value,
        };
    }
    let objective_value: f64 = lp
        .objective_coefficients()
        .iter()
        .zip(x.iter())
        .map(|(c, v)| c * v)
        .sum();
    let _ = cost_constant; // objective recomputed directly from x
    let _ = m;

    Ok(LpSolution {
        status: LpStatus::Optimal,
        objective_value,
        variables: x,
        iterations,
    })
}

fn build_tableau(raw_rows: &[(Vec<f64>, Relation, f64)], num_y: usize, tol: f64) -> Tableau {
    let m = raw_rows.len();
    // First pass: figure out how many slack and artificial columns are needed.
    let mut num_slack = 0usize;
    let mut num_art = 0usize;
    let mut normalized: Vec<(Vec<f64>, Relation, f64)> = Vec::with_capacity(m);
    for (row, rel, b) in raw_rows {
        let (row, rel, b) = if *b < 0.0 {
            let flipped: Vec<f64> = row.iter().map(|v| -v).collect();
            let rel = match rel {
                Relation::LessEq => Relation::GreaterEq,
                Relation::GreaterEq => Relation::LessEq,
                Relation::Equal => Relation::Equal,
            };
            (flipped, rel, -b)
        } else {
            (row.clone(), *rel, *b)
        };
        match rel {
            Relation::LessEq => num_slack += 1,
            Relation::GreaterEq => {
                num_slack += 1;
                num_art += 1;
            }
            Relation::Equal => num_art += 1,
        }
        normalized.push((row, rel, b));
    }

    let ncols = num_y + num_slack + num_art;
    let mut rows = vec![vec![0.0; ncols]; m];
    let mut rhs = vec![0.0; m];
    let mut basis = vec![0usize; m];
    let mut artificial = vec![false; ncols];

    let mut slack_cursor = num_y;
    let mut art_cursor = num_y + num_slack;
    for (i, (row, rel, b)) in normalized.into_iter().enumerate() {
        rows[i][..num_y].copy_from_slice(&row[..num_y]);
        rhs[i] = b;
        match rel {
            Relation::LessEq => {
                rows[i][slack_cursor] = 1.0;
                basis[i] = slack_cursor;
                slack_cursor += 1;
            }
            Relation::GreaterEq => {
                rows[i][slack_cursor] = -1.0;
                slack_cursor += 1;
                rows[i][art_cursor] = 1.0;
                artificial[art_cursor] = true;
                basis[i] = art_cursor;
                art_cursor += 1;
            }
            Relation::Equal => {
                rows[i][art_cursor] = 1.0;
                artificial[art_cursor] = true;
                basis[i] = art_cursor;
                art_cursor += 1;
            }
        }
        // Guard against rows that are numerically zero but have tiny rhs noise.
        if rhs[i] < tol {
            rhs[i] = rhs[i].max(0.0);
        }
    }

    Tableau {
        rows,
        rhs,
        basis,
        ncols,
        artificial,
    }
}

/// Runs simplex iterations minimizing `cost` over the current tableau, and
/// returns the achieved objective value (in the minimized sense).
fn run_phase(
    tableau: &mut Tableau,
    cost: &[f64],
    banned: &[bool],
    options: &SimplexOptions,
    iterations: &mut usize,
) -> crate::Result<f64> {
    let tol = options.tolerance;
    let m = tableau.rows.len();

    // Reduced cost row: z_j = cost_j - sum_i cost[basis_i] * T[i][j]
    let mut reduced = cost.to_vec();
    let mut objective = 0.0;
    for i in 0..m {
        let cb = cost[tableau.basis[i]];
        if cb != 0.0 {
            for (r, &t_ij) in reduced.iter_mut().zip(&tableau.rows[i]) {
                *r -= cb * t_ij;
            }
            objective += cb * tableau.rhs[i];
        }
    }

    let mut local_iter = 0usize;
    loop {
        if *iterations >= options.max_iterations {
            return Err(LinalgError::IterationLimit {
                iterations: *iterations,
            });
        }
        // --- entering variable ---
        let use_bland = local_iter > options.bland_threshold;
        let mut entering: Option<usize> = None;
        if use_bland {
            for (j, &rc) in reduced.iter().enumerate() {
                if !banned[j] && rc < -tol {
                    entering = Some(j);
                    break;
                }
            }
        } else {
            let mut best = -tol;
            for (j, &rc) in reduced.iter().enumerate() {
                if !banned[j] && rc < best {
                    best = rc;
                    entering = Some(j);
                }
            }
        }
        let Some(enter) = entering else {
            return Ok(objective);
        };

        // --- ratio test (leaving variable) ---
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let a = tableau.rows[i][enter];
            if a > tol {
                let ratio = tableau.rhs[i] / a;
                let better = ratio < best_ratio - tol
                    || ((ratio - best_ratio).abs() <= tol
                        && leave
                            .map(|l| tableau.basis[i] < tableau.basis[l])
                            .unwrap_or(true));
                if better {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            return Err(LinalgError::Unbounded);
        };

        // --- pivot ---
        pivot(tableau, &mut reduced, &mut objective, leave, enter);
        *iterations += 1;
        local_iter += 1;
    }
}

fn pivot(
    tableau: &mut Tableau,
    reduced: &mut [f64],
    objective: &mut f64,
    pivot_row: usize,
    pivot_col: usize,
) {
    let ncols = tableau.ncols;
    let pivot_val = tableau.rows[pivot_row][pivot_col];
    // Normalize the pivot row.
    for j in 0..ncols {
        tableau.rows[pivot_row][j] /= pivot_val;
    }
    tableau.rhs[pivot_row] /= pivot_val;

    // Eliminate the pivot column from every other row.
    for i in 0..tableau.rows.len() {
        if i == pivot_row {
            continue;
        }
        let factor = tableau.rows[i][pivot_col];
        if factor != 0.0 {
            for j in 0..ncols {
                tableau.rows[i][j] -= factor * tableau.rows[pivot_row][j];
            }
            tableau.rhs[i] -= factor * tableau.rhs[pivot_row];
            if tableau.rhs[i].abs() < 1e-12 {
                tableau.rhs[i] = 0.0;
            }
        }
    }
    // ... and from the reduced-cost row.
    let factor = reduced[pivot_col];
    if factor != 0.0 {
        for (r, &t_pj) in reduced.iter_mut().zip(&tableau.rows[pivot_row]) {
            *r -= factor * t_pj;
        }
        // The phase objective changes by (reduced cost of the entering column)
        // times the step length, which is the normalized pivot-row rhs.
        *objective += factor * tableau.rhs[pivot_row];
    }
    tableau.basis[pivot_row] = pivot_col;
}

/// After phase 1, pivot any artificial variable that is still basic (at value
/// zero) out of the basis if possible. Rows where that is impossible are
/// redundant and are left in place with the artificial pinned at zero.
fn drive_out_artificials(tableau: &mut Tableau, tol: f64) {
    let m = tableau.rows.len();
    for i in 0..m {
        let b = tableau.basis[i];
        if !tableau.artificial[b] {
            continue;
        }
        // Find a non-artificial column with a nonzero coefficient in this row.
        let mut target = None;
        for j in 0..tableau.ncols {
            if !tableau.artificial[j] && tableau.rows[i][j].abs() > tol {
                target = Some(j);
                break;
            }
        }
        if let Some(j) = target {
            let mut dummy_reduced = vec![0.0; tableau.ncols];
            let mut dummy_obj = 0.0;
            pivot(tableau, &mut dummy_reduced, &mut dummy_obj, i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bound;

    fn max_lp(obj: &[f64]) -> LinearProgram {
        let mut lp = LinearProgram::new(obj.len(), Objective::Maximize);
        for (i, &c) in obj.iter().enumerate() {
            lp.set_objective_coefficient(i, c).unwrap();
        }
        lp
    }

    #[test]
    fn textbook_maximization() {
        // maximize 3x + 2y  s.t.  x + y <= 4, x + 3y <= 6
        let mut lp = max_lp(&[3.0, 2.0]);
        lp.add_less_eq(&[(0, 1.0), (1, 1.0)], 4.0).unwrap();
        lp.add_less_eq(&[(0, 1.0), (1, 3.0)], 6.0).unwrap();
        let sol = solve(&lp).unwrap();
        assert!((sol.objective_value - 12.0).abs() < 1e-8);
        assert!((sol.variables[0] - 4.0).abs() < 1e-8);
        assert!(sol.variables[1].abs() < 1e-8);
    }

    #[test]
    fn minimization_with_greater_eq() {
        // minimize 2x + 3y  s.t.  x + y >= 10, x >= 2, y >= 3
        let mut lp = LinearProgram::new(2, Objective::Minimize);
        lp.set_objective_coefficient(0, 2.0).unwrap();
        lp.set_objective_coefficient(1, 3.0).unwrap();
        lp.add_greater_eq(&[(0, 1.0), (1, 1.0)], 10.0).unwrap();
        lp.set_bound(0, Bound::interval(2.0, f64::INFINITY))
            .unwrap();
        lp.set_bound(1, Bound::interval(3.0, f64::INFINITY))
            .unwrap();
        let sol = solve(&lp).unwrap();
        // Optimal: push the cheap variable x as high as needed: x = 7, y = 3.
        assert!((sol.objective_value - 23.0).abs() < 1e-8);
        assert!((sol.variables[0] - 7.0).abs() < 1e-8);
        assert!((sol.variables[1] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn equality_constraints() {
        // maximize x + y  s.t.  x + y = 5,  x - y = 1
        let mut lp = max_lp(&[1.0, 1.0]);
        lp.add_equal(&[(0, 1.0), (1, 1.0)], 5.0).unwrap();
        lp.add_equal(&[(0, 1.0), (1, -1.0)], 1.0).unwrap();
        let sol = solve(&lp).unwrap();
        assert!((sol.variables[0] - 3.0).abs() < 1e-8);
        assert!((sol.variables[1] - 2.0).abs() < 1e-8);
        assert!((sol.objective_value - 5.0).abs() < 1e-8);
    }

    #[test]
    fn infeasible_program_is_detected() {
        let mut lp = max_lp(&[1.0]);
        lp.add_less_eq(&[(0, 1.0)], 1.0).unwrap();
        lp.add_greater_eq(&[(0, 1.0)], 2.0).unwrap();
        assert!(matches!(solve(&lp), Err(LinalgError::Infeasible)));
    }

    #[test]
    fn unbounded_program_is_detected() {
        let mut lp = max_lp(&[1.0]);
        lp.add_greater_eq(&[(0, 1.0)], 1.0).unwrap();
        assert!(matches!(solve(&lp), Err(LinalgError::Unbounded)));
    }

    #[test]
    fn negative_lower_bounds_are_handled() {
        // minimize x subject to x >= -5 (bound), x <= 3
        let mut lp = LinearProgram::new(1, Objective::Minimize);
        lp.set_objective_coefficient(0, 1.0).unwrap();
        lp.set_bound(0, Bound::interval(-5.0, 3.0)).unwrap();
        let sol = solve(&lp).unwrap();
        assert!((sol.variables[0] + 5.0).abs() < 1e-8);
    }

    #[test]
    fn free_variables_are_split() {
        // minimize x + y with x free, y >= 0 and x + y >= 2, x >= -3 via constraint
        let mut lp = LinearProgram::new(2, Objective::Minimize);
        lp.set_objective_coefficient(0, 1.0).unwrap();
        lp.set_objective_coefficient(1, 1.0).unwrap();
        lp.set_bound(0, Bound::free()).unwrap();
        lp.add_greater_eq(&[(0, 1.0), (1, 1.0)], 2.0).unwrap();
        lp.add_greater_eq(&[(0, 1.0)], -3.0).unwrap();
        let sol = solve(&lp).unwrap();
        // The optimum is any point on x + y = 2 with x >= -3; the objective is 2.
        assert!((sol.objective_value - 2.0).abs() < 1e-7);
        assert!(sol.variables[0] + sol.variables[1] >= 2.0 - 1e-7);
        assert!(sol.variables[0] >= -3.0 - 1e-7);
        assert!(sol.variables[1] >= -1e-9);
    }

    #[test]
    fn fixed_variables_are_respected() {
        // ATP-maintenance style pinned flux.
        let mut lp = LinearProgram::new(2, Objective::Maximize);
        lp.set_objective_coefficient(1, 1.0).unwrap();
        lp.set_bound(0, Bound::fixed(0.45)).unwrap();
        lp.set_bound(1, Bound::interval(0.0, 10.0)).unwrap();
        lp.add_less_eq(&[(0, 1.0), (1, 1.0)], 5.0).unwrap();
        let sol = solve(&lp).unwrap();
        assert!((sol.variables[0] - 0.45).abs() < 1e-9);
        assert!((sol.variables[1] - 4.55).abs() < 1e-7);
    }

    #[test]
    fn upper_bounds_limit_the_solution() {
        let mut lp = max_lp(&[1.0, 1.0]);
        lp.set_bound(0, Bound::interval(0.0, 2.0)).unwrap();
        lp.set_bound(1, Bound::interval(0.0, 3.0)).unwrap();
        lp.add_less_eq(&[(0, 1.0), (1, 1.0)], 100.0).unwrap();
        let sol = solve(&lp).unwrap();
        assert!((sol.objective_value - 5.0).abs() < 1e-8);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut lp = max_lp(&[1.0, 1.0]);
        lp.add_less_eq(&[(0, 1.0)], 1.0).unwrap();
        lp.add_less_eq(&[(1, 1.0)], 1.0).unwrap();
        lp.add_less_eq(&[(0, 1.0), (1, 1.0)], 2.0).unwrap();
        lp.add_less_eq(&[(0, 2.0), (1, 2.0)], 4.0).unwrap();
        let sol = solve(&lp).unwrap();
        assert!((sol.objective_value - 2.0).abs() < 1e-8);
    }

    #[test]
    fn iteration_limit_is_enforced() {
        let mut lp = max_lp(&[3.0, 2.0]);
        lp.add_less_eq(&[(0, 1.0), (1, 1.0)], 4.0).unwrap();
        let options = SimplexOptions {
            max_iterations: 0,
            ..Default::default()
        };
        assert!(matches!(
            solve_with_options(&lp, &options),
            Err(LinalgError::IterationLimit { .. })
        ));
    }

    #[test]
    fn invalid_tolerance_is_rejected() {
        let lp = max_lp(&[1.0]);
        let options = SimplexOptions {
            tolerance: -1.0,
            ..Default::default()
        };
        assert!(matches!(
            solve_with_options(&lp, &options),
            Err(LinalgError::InvalidArgument(_))
        ));
    }

    #[test]
    fn mirrored_variable_only_upper_bound() {
        // minimize -x with x <= 7 and no lower bound, but a constraint x >= 1.
        let mut lp = LinearProgram::new(1, Objective::Minimize);
        lp.set_objective_coefficient(0, -1.0).unwrap();
        lp.set_bound(
            0,
            Bound {
                lower: f64::NEG_INFINITY,
                upper: 7.0,
            },
        )
        .unwrap();
        lp.add_greater_eq(&[(0, 1.0)], 1.0).unwrap();
        let sol = solve(&lp).unwrap();
        assert!((sol.variables[0] - 7.0).abs() < 1e-8);
    }

    #[test]
    fn larger_random_feasible_problem_is_solved() {
        // A transportation-like LP with 12 variables; checks that the solver
        // copes with a few dozen rows without hitting the iteration cap.
        let supplies = [20.0, 30.0, 25.0];
        let demands = [15.0, 25.0, 20.0, 15.0];
        let costs = [
            4.0, 8.0, 8.0, 6.0, //
            6.0, 2.0, 4.0, 7.0, //
            5.0, 3.0, 6.0, 2.0,
        ];
        let n = supplies.len() * demands.len();
        let mut lp = LinearProgram::new(n, Objective::Minimize);
        for (k, &c) in costs.iter().enumerate() {
            lp.set_objective_coefficient(k, c).unwrap();
        }
        for (i, &s) in supplies.iter().enumerate() {
            let row: Vec<(usize, f64)> = (0..demands.len())
                .map(|j| (i * demands.len() + j, 1.0))
                .collect();
            lp.add_less_eq(&row, s).unwrap();
        }
        for (j, &d) in demands.iter().enumerate() {
            let col: Vec<(usize, f64)> = (0..supplies.len())
                .map(|i| (i * demands.len() + j, 1.0))
                .collect();
            lp.add_greater_eq(&col, d).unwrap();
        }
        let sol = solve(&lp).unwrap();
        // Feasibility of the reported plan.
        for (i, &s) in supplies.iter().enumerate() {
            let shipped: f64 = (0..demands.len())
                .map(|j| sol.variables[i * demands.len() + j])
                .sum();
            assert!(shipped <= s + 1e-6);
        }
        for (j, &d) in demands.iter().enumerate() {
            let received: f64 = (0..supplies.len())
                .map(|i| sol.variables[i * demands.len() + j])
                .sum();
            assert!(received >= d - 1e-6);
        }
        // Known optimum of this classic instance.
        assert!(sol.objective_value <= 275.0 + 1e-6);
    }
}
