use crate::LinalgError;

/// Direction of optimization for a [`LinearProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Minimize the objective function.
    #[default]
    Minimize,
    /// Maximize the objective function.
    Maximize,
}

/// Relation of a linear constraint to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `a · x <= b`
    LessEq,
    /// `a · x >= b`
    GreaterEq,
    /// `a · x = b`
    Equal,
}

/// Lower/upper bound pair for one decision variable.
///
/// Infinite bounds are expressed with `f64::NEG_INFINITY` / `f64::INFINITY`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bound {
    /// Lower bound (may be `-inf`).
    pub lower: f64,
    /// Upper bound (may be `+inf`).
    pub upper: f64,
}

impl Bound {
    /// A non-negative variable: `[0, +inf)`.
    pub fn non_negative() -> Self {
        Bound {
            lower: 0.0,
            upper: f64::INFINITY,
        }
    }

    /// A free variable: `(-inf, +inf)`.
    pub fn free() -> Self {
        Bound {
            lower: f64::NEG_INFINITY,
            upper: f64::INFINITY,
        }
    }

    /// A bounded interval `[lower, upper]`.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn interval(lower: f64, upper: f64) -> Self {
        assert!(!lower.is_nan() && !upper.is_nan(), "bounds must not be NaN");
        assert!(lower <= upper, "lower bound must not exceed upper bound");
        Bound { lower, upper }
    }

    /// A variable fixed to a single value.
    pub fn fixed(value: f64) -> Self {
        Bound {
            lower: value,
            upper: value,
        }
    }

    /// Width of the interval (`upper - lower`).
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Returns `true` if `value` lies within the bound (inclusive), with a
    /// small tolerance.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower - 1e-9 && value <= self.upper + 1e-9
    }
}

impl Default for Bound {
    fn default() -> Self {
        Bound::non_negative()
    }
}

/// A single linear constraint `coefficients · x (rel) rhs`.
///
/// Coefficients are stored sparsely as `(variable index, coefficient)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Sparse coefficients of the constraint row.
    pub coefficients: Vec<(usize, f64)>,
    /// Relation to the right-hand side.
    pub relation: Relation,
    /// Right-hand side value.
    pub rhs: f64,
}

/// A linear program over `n` bounded decision variables.
///
/// # Example
///
/// ```
/// use pathway_linalg::{Bound, LinearProgram, Objective, simplex};
///
/// # fn main() -> Result<(), pathway_linalg::LinalgError> {
/// // maximize 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6,  x,y >= 0
/// let mut lp = LinearProgram::new(2, Objective::Maximize);
/// lp.set_objective_coefficient(0, 3.0)?;
/// lp.set_objective_coefficient(1, 2.0)?;
/// lp.add_less_eq(&[(0, 1.0), (1, 1.0)], 4.0)?;
/// lp.add_less_eq(&[(0, 1.0), (1, 3.0)], 6.0)?;
/// let solution = simplex::solve(&lp)?;
/// assert!((solution.objective_value - 12.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearProgram {
    num_vars: usize,
    objective: Objective,
    objective_coefficients: Vec<f64>,
    bounds: Vec<Bound>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates a program with `num_vars` non-negative variables and an
    /// all-zero objective.
    pub fn new(num_vars: usize, objective: Objective) -> Self {
        LinearProgram {
            num_vars,
            objective,
            objective_coefficients: vec![0.0; num_vars],
            bounds: vec![Bound::non_negative(); num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Direction of optimization.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Objective coefficient vector.
    pub fn objective_coefficients(&self) -> &[f64] {
        &self.objective_coefficients
    }

    /// Per-variable bounds.
    pub fn bounds(&self) -> &[Bound] {
        &self.bounds
    }

    /// Constraint rows.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Sets the objective coefficient of variable `var`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] if `var >= num_vars`.
    pub fn set_objective_coefficient(&mut self, var: usize, coefficient: f64) -> crate::Result<()> {
        self.check_var(var)?;
        self.objective_coefficients[var] = coefficient;
        Ok(())
    }

    /// Sets the bound of variable `var`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] if `var >= num_vars` and
    /// [`LinalgError::InvalidArgument`] if the bound is inverted or NaN.
    pub fn set_bound(&mut self, var: usize, bound: Bound) -> crate::Result<()> {
        self.check_var(var)?;
        if bound.lower.is_nan() || bound.upper.is_nan() {
            return Err(LinalgError::InvalidArgument("bound is NaN".into()));
        }
        if bound.lower > bound.upper {
            return Err(LinalgError::InvalidArgument(format!(
                "lower bound {} exceeds upper bound {}",
                bound.lower, bound.upper
            )));
        }
        self.bounds[var] = bound;
        Ok(())
    }

    /// Adds a `<=` constraint.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] if a coefficient references a
    /// variable outside the program.
    pub fn add_less_eq(&mut self, coefficients: &[(usize, f64)], rhs: f64) -> crate::Result<()> {
        self.add_constraint(coefficients, Relation::LessEq, rhs)
    }

    /// Adds a `>=` constraint.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] if a coefficient references a
    /// variable outside the program.
    pub fn add_greater_eq(&mut self, coefficients: &[(usize, f64)], rhs: f64) -> crate::Result<()> {
        self.add_constraint(coefficients, Relation::GreaterEq, rhs)
    }

    /// Adds an `=` constraint.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] if a coefficient references a
    /// variable outside the program.
    pub fn add_equal(&mut self, coefficients: &[(usize, f64)], rhs: f64) -> crate::Result<()> {
        self.add_constraint(coefficients, Relation::Equal, rhs)
    }

    /// Adds a constraint with an explicit [`Relation`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] if a coefficient references a
    /// variable outside the program.
    pub fn add_constraint(
        &mut self,
        coefficients: &[(usize, f64)],
        relation: Relation,
        rhs: f64,
    ) -> crate::Result<()> {
        for &(var, _) in coefficients {
            self.check_var(var)?;
        }
        self.constraints.push(Constraint {
            coefficients: coefficients.to_vec(),
            relation,
            rhs,
        });
        Ok(())
    }

    fn check_var(&self, var: usize) -> crate::Result<()> {
        if var >= self.num_vars {
            Err(LinalgError::IndexOutOfBounds {
                index: var,
                len: self.num_vars,
            })
        } else {
            Ok(())
        }
    }
}

/// Termination status of a simplex solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

/// Result of solving a [`LinearProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Termination status. [`crate::simplex::solve`] only returns
    /// `LpStatus::Optimal` solutions; the other statuses are mapped to errors.
    pub status: LpStatus,
    /// Optimal objective value in the original (min or max) sense.
    pub objective_value: f64,
    /// Optimal values of the decision variables.
    pub variables: Vec<f64>,
    /// Number of simplex pivots performed.
    pub iterations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_constructors() {
        assert_eq!(Bound::non_negative().lower, 0.0);
        assert!(Bound::non_negative().upper.is_infinite());
        assert!(Bound::free().lower.is_infinite());
        let b = Bound::interval(-1.0, 2.0);
        assert_eq!(b.width(), 3.0);
        assert!(b.contains(0.0));
        assert!(!b.contains(3.0));
        let f = Bound::fixed(0.45);
        assert_eq!(f.lower, f.upper);
    }

    #[test]
    #[should_panic(expected = "lower bound must not exceed upper bound")]
    fn inverted_interval_panics() {
        let _ = Bound::interval(2.0, 1.0);
    }

    #[test]
    fn program_builder_validates_indices() {
        let mut lp = LinearProgram::new(2, Objective::Minimize);
        assert!(lp.set_objective_coefficient(5, 1.0).is_err());
        assert!(lp.set_bound(3, Bound::free()).is_err());
        assert!(lp.add_less_eq(&[(7, 1.0)], 1.0).is_err());
        assert!(lp.add_less_eq(&[(0, 1.0)], 1.0).is_ok());
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.num_vars(), 2);
    }

    #[test]
    fn set_bound_rejects_nan_and_inverted() {
        let mut lp = LinearProgram::new(1, Objective::Minimize);
        assert!(lp
            .set_bound(
                0,
                Bound {
                    lower: f64::NAN,
                    upper: 1.0
                }
            )
            .is_err());
        assert!(lp
            .set_bound(
                0,
                Bound {
                    lower: 2.0,
                    upper: 1.0
                }
            )
            .is_err());
    }

    #[test]
    fn default_objective_is_minimize() {
        assert_eq!(Objective::default(), Objective::Minimize);
    }
}
