//! Dense and sparse linear algebra plus a two-phase simplex linear-programming
//! solver.
//!
//! This crate is the numerical substrate of the robust metabolic pathway
//! design workspace. It is intentionally dependency-free (besides optional
//! `serde`) because the workspace reproduces a published system from scratch:
//!
//! * [`Matrix`] / [`Vector`] — dense row-major matrices and vectors with the
//!   arithmetic needed by the ODE solvers and the stoichiometric models.
//! * [`LuDecomposition`] — LU factorization with partial pivoting, used by the
//!   implicit ODE stepper and for solving small dense systems.
//! * [`CsrMatrix`] — compressed sparse row matrices for genome-scale
//!   stoichiometric matrices (hundreds of reactions).
//! * [`LinearProgram`] / [`simplex::solve`] — a bounded-variable two-phase
//!   primal simplex solver used by flux balance analysis.
//!
//! # Example
//!
//! ```
//! use pathway_linalg::{Matrix, Vector};
//!
//! # fn main() -> Result<(), pathway_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]])?;
//! let b = Vector::from(vec![1.0, 2.0]);
//! let x = a.lu()?.solve(&b)?;
//! assert!((a.mat_vec(&x)? - b).norm2() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod error;
mod lp;
mod lu;
mod matrix;
mod sparse;
mod vector;

pub mod simplex;

pub use error::LinalgError;
pub use lp::{Bound, Constraint, LinearProgram, LpSolution, LpStatus, Objective, Relation};
pub use lu::LuDecomposition;
pub use matrix::Matrix;
pub use sparse::CsrMatrix;
pub use vector::Vector;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
