use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::{LinalgError, LuDecomposition, Vector};

/// A dense, row-major matrix of `f64` values.
///
/// # Example
///
/// ```
/// use pathway_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), pathway_linalg::LinalgError> {
/// let m = Matrix::identity(3);
/// let v = Vector::from(vec![1.0, 2.0, 3.0]);
/// assert_eq!(m.mat_vec(&v)?, v);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if there are no rows or no columns, and
    /// [`LinalgError::RaggedRows`] if rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> crate::Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(LinalgError::RaggedRows { row: i });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> crate::Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{} elements", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer. This is what lets
    /// hot callers (the LU refactorization path, the Newton workspace)
    /// rewrite a matrix in place instead of allocating a fresh one.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Overwrites this matrix with the contents of `other`, reusing the
    /// existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn copy_from(&mut self, other: &Matrix) -> crate::Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                found: format!("{}x{}", other.rows, other.cols),
            });
        }
        self.data.copy_from_slice(&other.data);
        Ok(())
    }

    /// Borrow of a single row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable borrow of a single row as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies a column into a new [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.cols()`.
    pub fn column(&self, col: usize) -> Vector {
        assert!(col < self.cols, "col {col} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self[(r, col)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix-vector product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != self.cols()`.
    pub fn mat_vec(&self, v: &Vector) -> crate::Result<Vector> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("len {}", self.cols),
                found: format!("len {}", v.len()),
            });
        }
        let mut out = Vector::zeros(self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v.iter()) {
                acc += a * b;
            }
            out[r] = acc;
        }
        Ok(out)
    }

    /// Matrix-matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the inner dimensions differ.
    pub fn mat_mul(&self, other: &Matrix) -> crate::Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{} rows", self.cols),
                found: format!("{} rows", other.rows),
            });
        }
        // Row-slice inner loops (instead of per-element `Index` calls) keep
        // the accumulation order identical while letting the compiler
        // autovectorize the fused multiply-adds.
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let out_row = out.row_mut(r);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (acc, &b) in out_row.iter_mut().zip(b_row) {
                    *acc += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Scales every element by `factor`, in place.
    pub fn scale_mut(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Frobenius norm (square root of the sum of squared elements).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::SingularMatrix`] if the matrix is singular and
    /// [`LinalgError::DimensionMismatch`] if it is not square.
    pub fn lu(&self) -> crate::Result<LuDecomposition> {
        LuDecomposition::new(self)
    }

    /// Convenience: solves `A x = b` through the LU factorization.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Matrix::lu`] and from the triangular solve.
    pub fn solve(&self, b: &Vector) -> crate::Result<Vector> {
        self.lu()?.solve(b)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_mut(rhs);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn identity_times_vector_is_vector() {
        let m = Matrix::identity(4);
        let v = Vector::from(vec![1.0, -2.0, 3.0, 0.5]);
        assert_eq!(m.mat_vec(&v).unwrap(), v);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::RaggedRows { row: 1 }));
        assert!(matches!(Matrix::from_rows(&[]), Err(LinalgError::Empty)));
    }

    #[test]
    fn from_flat_checks_length() {
        assert!(Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn mat_mul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.mat_mul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn mat_mul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.mat_mul(&b).is_err());
    }

    #[test]
    fn column_and_row_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.column(0).as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn solve_small_system() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let b = Vector::from(vec![1.0, 2.0]);
        let x = a.solve(&b).unwrap();
        let residual = &a.mat_vec(&x).unwrap() - &b;
        assert!(residual.norm2() < 1e-12);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!(approx_eq(Matrix::identity(9).frobenius_norm(), 3.0, 1e-12));
    }

    #[test]
    fn elementwise_add_sub() {
        let a = Matrix::identity(2);
        let b = &a * 2.0;
        let c = &b - &a;
        assert_eq!(c, a);
        let d = &a + &a;
        assert_eq!(d, b);
    }

    #[test]
    fn display_contains_all_entries() {
        let m = Matrix::from_rows(&[vec![1.5, 2.5]]).unwrap();
        let s = format!("{m}");
        assert!(s.contains("1.5"));
        assert!(s.contains("2.5"));
    }

    proptest! {
        #[test]
        fn prop_transpose_involution(
            rows in 1usize..6,
            cols in 1usize..6,
            seed in 0u64..1000,
        ) {
            let data: Vec<f64> = (0..rows * cols)
                .map(|i| ((i as u64 * 2654435761 + seed) % 1000) as f64 / 100.0 - 5.0)
                .collect();
            let m = Matrix::from_flat(rows, cols, data).unwrap();
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn prop_identity_is_matmul_neutral(n in 1usize..6, seed in 0u64..1000) {
            let data: Vec<f64> = (0..n * n)
                .map(|i| ((i as u64 * 97 + seed * 13) % 2000) as f64 / 100.0 - 10.0)
                .collect();
            let m = Matrix::from_flat(n, n, data).unwrap();
            let i = Matrix::identity(n);
            prop_assert_eq!(m.mat_mul(&i).unwrap(), m.clone());
            prop_assert_eq!(i.mat_mul(&m).unwrap(), m);
        }

        #[test]
        fn prop_matvec_linear(n in 1usize..6, k in -5.0_f64..5.0, seed in 0u64..1000) {
            let data: Vec<f64> = (0..n * n)
                .map(|i| ((i as u64 * 31 + seed * 7) % 500) as f64 / 50.0 - 5.0)
                .collect();
            let m = Matrix::from_flat(n, n, data).unwrap();
            let v: Vector = (0..n).map(|i| i as f64 + 1.0).collect();
            let lhs = m.mat_vec(&v.scaled(k)).unwrap();
            let rhs = m.mat_vec(&v).unwrap().scaled(k);
            for i in 0..n {
                prop_assert!((lhs[i] - rhs[i]).abs() < 1e-9 * (1.0 + rhs[i].abs()));
            }
        }
    }
}
