use crate::{LinalgError, Matrix, Vector};

/// A compressed sparse row (CSR) matrix.
///
/// Stoichiometric matrices of genome-scale metabolic models are very sparse
/// (a reaction touches a handful of metabolites out of hundreds), so the FBA
/// machinery stores them in CSR form and only densifies the small submatrices
/// the simplex solver needs.
///
/// # Example
///
/// ```
/// use pathway_linalg::{CsrMatrix, Vector};
///
/// # fn main() -> Result<(), pathway_linalg::LinalgError> {
/// // [ 1 0 2 ]
/// // [ 0 3 0 ]
/// let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])?;
/// let y = m.mat_vec(&Vector::from(vec![1.0, 1.0, 1.0]))?;
/// assert_eq!(y.as_slice(), &[3.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes the entries of row `r`.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate entries for the same `(row, col)` pair are summed. Explicit
    /// zeros are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] if any triplet lies outside
    /// the declared shape.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> crate::Result<Self> {
        for &(r, c, _) in triplets {
            if r >= rows {
                return Err(LinalgError::IndexOutOfBounds {
                    index: r,
                    len: rows,
                });
            }
            if c >= cols {
                return Err(LinalgError::IndexOutOfBounds {
                    index: c,
                    len: cols,
                });
            }
        }
        // Accumulate into per-row maps to merge duplicates deterministically.
        let mut per_row: Vec<std::collections::BTreeMap<usize, f64>> =
            vec![std::collections::BTreeMap::new(); rows];
        for &(r, c, v) in triplets {
            *per_row[r].entry(c).or_insert(0.0) += v;
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in &per_row {
            for (&c, &v) in row {
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fill fraction: `nnz / (rows * cols)`. Returns `0.0` for an empty shape.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Value at `(row, col)`, or `0.0` if the entry is not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        for k in start..end {
            if self.col_idx[k] == col {
                return self.values[k];
            }
        }
        0.0
    }

    /// Iterates over the stored entries of one row as `(col, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(row < self.rows, "row out of bounds");
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        (start..end).map(move |k| (self.col_idx[k], self.values[k]))
    }

    /// Sparse matrix-vector product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != self.cols()`.
    pub fn mat_vec(&self, v: &Vector) -> crate::Result<Vector> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("len {}", self.cols),
                found: format!("len {}", v.len()),
            });
        }
        let mut out = Vector::zeros(self.rows);
        for r in 0..self.rows {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * v[self.col_idx[k]];
            }
            out[r] = acc;
        }
        Ok(out)
    }

    /// Sparse matrix × dense matrix product `self · rhs` — the multi-RHS
    /// form of [`CsrMatrix::mat_vec`]: column `j` of the result equals
    /// `self.mat_vec(column j of rhs)` **bit for bit**, because the inner
    /// loop adds the stored entries of each sparse row in exactly the order
    /// `mat_vec` does.
    ///
    /// One call amortizes the sparse-structure traversal (row pointers,
    /// column indices) over all right-hand sides and walks `rhs` in
    /// contiguous row-major slices, which is what makes whole-batch oracle
    /// kernels (e.g. the Geobacter steady-state residual over a full
    /// offspring batch) several times faster than mapping `mat_vec` per
    /// candidate.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `rhs.rows() != self.cols()`.
    ///
    /// # Example
    ///
    /// ```
    /// use pathway_linalg::{CsrMatrix, Matrix, Vector};
    ///
    /// # fn main() -> Result<(), pathway_linalg::LinalgError> {
    /// let s = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])?;
    /// // Two right-hand sides as the columns of a 3 x 2 dense matrix.
    /// let rhs = Matrix::from_rows(&[vec![1.0, 0.5], vec![1.0, -1.0], vec![1.0, 2.0]])?;
    /// let product = s.mat_mul_dense(&rhs)?;
    /// assert_eq!(product.column(0), s.mat_vec(&Vector::from(vec![1.0, 1.0, 1.0]))?);
    /// # Ok(())
    /// # }
    /// ```
    pub fn mat_mul_dense(&self, rhs: &Matrix) -> crate::Result<Matrix> {
        let mut out = Matrix::zeros(self.rows, rhs.cols());
        self.mat_mul_dense_into(rhs, &mut out)?;
        Ok(out)
    }

    /// [`CsrMatrix::mat_mul_dense`] into a caller-provided output matrix
    /// (cleared and overwritten), allocating nothing. Batch kernels that run
    /// once per generation — the FBA steady-state violation tiles — reuse
    /// one output buffer across all tiles through this entry point.
    ///
    /// The inner loop is register-tiled: output columns are processed in
    /// blocks of 8 accumulated in a local array, so the compiler keeps the
    /// partial sums in SIMD registers instead of re-walking the output row
    /// per stored entry. Per output column the additions still happen in
    /// stored-entry order, so every column remains bit-identical to
    /// `mat_vec` (and to the untiled loop this replaced).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `rhs.rows() != self.cols()` or `out` is not
    /// `self.rows() × rhs.cols()`.
    pub fn mat_mul_dense_into(&self, rhs: &Matrix, out: &mut Matrix) -> crate::Result<()> {
        if rhs.rows() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{} rows", self.cols),
                found: format!("{} rows", rhs.rows()),
            });
        }
        if out.rows() != self.rows || out.cols() != rhs.cols() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{}x{}", self.rows, rhs.cols()),
                found: format!("{}x{}", out.rows(), out.cols()),
            });
        }
        const COL_TILE: usize = 8;
        let width = rhs.cols();
        for r in 0..self.rows {
            let entries = self.row_ptr[r]..self.row_ptr[r + 1];
            let out_row = out.row_mut(r);
            out_row.fill(0.0);
            let mut c0 = 0;
            while c0 + COL_TILE <= width {
                let mut acc = [0.0f64; COL_TILE];
                for k in entries.clone() {
                    let value = self.values[k];
                    let rhs_tile = &rhs.row(self.col_idx[k])[c0..c0 + COL_TILE];
                    for (a, &b) in acc.iter_mut().zip(rhs_tile) {
                        *a += value * b;
                    }
                }
                out_row[c0..c0 + COL_TILE].copy_from_slice(&acc);
                c0 += COL_TILE;
            }
            // Remainder columns (< COL_TILE): same per-column add order.
            if c0 < width {
                for k in entries.clone() {
                    let value = self.values[k];
                    let rhs_tail = &rhs.row(self.col_idx[k])[c0..];
                    for (acc, &b) in out_row[c0..].iter_mut().zip(rhs_tail) {
                        *acc += value * b;
                    }
                }
            }
        }
        Ok(())
    }

    /// Converts to a dense [`Matrix`]. Intended for small matrices and tests.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                m[(r, self.col_idx[k])] = self.values[k];
            }
        }
        m
    }
}

impl From<&Matrix> for CsrMatrix {
    fn from(dense: &Matrix) -> Self {
        let mut triplets = Vec::new();
        for r in 0..dense.rows() {
            for c in 0..dense.cols() {
                let v = dense[(r, c)];
                if v != 0.0 {
                    triplets.push((r, c, v));
                }
            }
        }
        CsrMatrix::from_triplets(dense.rows(), dense.cols(), &triplets)
            .expect("triplets derived from a dense matrix are always in bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_triplets_and_get() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 3.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn duplicates_are_summed_and_zeros_dropped() {
        let m = CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0), (0, 0, 2.0), (0, 1, 0.0)]).unwrap();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn out_of_bounds_triplet_is_rejected() {
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn mat_vec_matches_dense() {
        let dense = Matrix::from_rows(&[
            vec![1.0, 0.0, 2.0],
            vec![0.0, 0.0, 0.0],
            vec![-1.0, 4.0, 0.5],
        ])
        .unwrap();
        let sparse = CsrMatrix::from(&dense);
        let v = Vector::from(vec![1.0, 2.0, 3.0]);
        assert_eq!(sparse.mat_vec(&v).unwrap(), dense.mat_vec(&v).unwrap());
    }

    #[test]
    fn mat_vec_dimension_check() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        assert!(m.mat_vec(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn mat_mul_dense_columns_match_mat_vec_bit_for_bit() {
        // An awkward matrix: duplicate-summed entries, empty row, negatives.
        let sparse = CsrMatrix::from_triplets(
            4,
            3,
            &[
                (0, 0, 1.5),
                (0, 2, -2.25),
                (1, 1, 3.0),
                (1, 0, 0.125),
                (3, 2, 7.5),
                (3, 0, -0.625),
            ],
        )
        .unwrap();
        let columns = [
            vec![1.0, 2.0, 3.0],
            vec![-0.5, 0.25, 8.0],
            vec![1e-3, -1e3, 0.3],
        ];
        let mut rhs = Matrix::zeros(3, columns.len());
        for (j, column) in columns.iter().enumerate() {
            for (i, &v) in column.iter().enumerate() {
                rhs[(i, j)] = v;
            }
        }
        let product = sparse.mat_mul_dense(&rhs).unwrap();
        for (j, column) in columns.iter().enumerate() {
            let expected = sparse.mat_vec(&Vector::from(column.clone())).unwrap();
            for i in 0..sparse.rows() {
                // Exact equality: the batched kernel adds in mat_vec order.
                assert_eq!(product[(i, j)], expected[i], "entry ({i}, {j})");
            }
        }
    }

    #[test]
    fn mat_mul_dense_dimension_check() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        assert!(m.mat_mul_dense(&Matrix::zeros(3, 4)).is_err());
        assert_eq!(m.mat_mul_dense(&Matrix::zeros(2, 0)).unwrap().cols(), 0);
        let mut wrong = Matrix::zeros(3, 4);
        assert!(m
            .mat_mul_dense_into(&Matrix::zeros(2, 4), &mut wrong)
            .is_err());
    }

    #[test]
    fn wide_mat_mul_dense_stays_bit_identical_across_the_tile_boundary() {
        // 19 columns: two full 8-wide register tiles plus a 3-wide
        // remainder; every column must still match mat_vec bit for bit.
        let sparse = CsrMatrix::from_triplets(
            3,
            4,
            &[
                (0, 0, 0.3),
                (0, 3, -1.75),
                (1, 2, 11.0),
                (2, 1, 1e-4),
                (2, 2, -3.5),
                (2, 3, 0.875),
            ],
        )
        .unwrap();
        let width = 19;
        let mut rhs = Matrix::zeros(4, width);
        for i in 0..4 {
            for j in 0..width {
                rhs[(i, j)] = ((i * 131 + j * 37) % 101) as f64 / 9.0 - 5.0;
            }
        }
        let product = sparse.mat_mul_dense(&rhs).unwrap();
        for j in 0..width {
            let expected = sparse.mat_vec(&rhs.column(j)).unwrap();
            for i in 0..sparse.rows() {
                assert_eq!(product[(i, j)], expected[i], "entry ({i}, {j})");
            }
        }
        // The in-place variant overwrites a dirty buffer with the same
        // values.
        let mut out = Matrix::zeros(3, width);
        out.as_mut_slice().fill(f64::NAN);
        sparse.mat_mul_dense_into(&rhs, &mut out).unwrap();
        assert_eq!(out, product);
    }

    #[test]
    fn to_dense_round_trip() {
        let dense = Matrix::from_rows(&[vec![0.0, 5.0], vec![7.0, 0.0]]).unwrap();
        let sparse = CsrMatrix::from(&dense);
        assert_eq!(sparse.to_dense(), dense);
    }

    #[test]
    fn density_and_row_entries() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
        assert!((m.density() - 0.5).abs() < 1e-15);
        let entries: Vec<_> = m.row_entries(0).collect();
        assert_eq!(entries, vec![(0, 1.0)]);
    }

    proptest! {
        #[test]
        fn prop_sparse_matvec_agrees_with_dense(
            rows in 1usize..8,
            cols in 1usize..8,
            seed in 0u64..200,
        ) {
            let mut dense = Matrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    // Roughly 40% fill with deterministic pseudo-random values.
                    let h = (r * 131 + c * 37) as u64 + seed * 101;
                    if h % 5 < 2 {
                        dense[(r, c)] = (h % 100) as f64 / 10.0 - 5.0;
                    }
                }
            }
            let sparse = CsrMatrix::from(&dense);
            let v: Vector = (0..cols).map(|i| i as f64 * 0.5 - 1.0).collect();
            let ds = dense.mat_vec(&v).unwrap();
            let ss = sparse.mat_vec(&v).unwrap();
            for i in 0..rows {
                prop_assert!((ds[i] - ss[i]).abs() < 1e-10);
            }
        }
    }
}
