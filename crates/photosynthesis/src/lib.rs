//! C3 photosynthetic carbon metabolism model with 23 tunable enzymes.
//!
//! This crate is the first evaluation substrate of *Design of Robust Metabolic
//! Pathways* (Umeton et al., DAC 2011). The paper optimizes the partitioning
//! of protein nitrogen among the 23 enzymes of the Zhu/de Sturler/Long (2007)
//! carbon-metabolism model, trading CO₂ uptake against total protein-nitrogen
//! investment, at three atmospheric CO₂ levels and two triose-phosphate export
//! rates.
//!
//! Because the original kinetic parameter tables are not redistributable, this
//! crate implements a calibrated surrogate with the same structure (see
//! `DESIGN.md`, "Substitutions"):
//!
//! * [`EnzymeKind`] — the 23 enzymes of the paper's Figure 2, each with a
//!   turnover number and molecular weight.
//! * [`EnzymePartition`] — a 23-dimensional vector of catalytic capacities
//!   (the decision variables of the optimization).
//! * [`Scenario`] — atmospheric CO₂ (past / present / end-of-century) and
//!   triose-phosphate export limits.
//! * [`UptakeModel`] — a fast analytic steady-state evaluator of leaf CO₂
//!   uptake, used inside optimization loops.
//! * [`CalvinCycleOde`] — the dynamic ODE model of the same pathway, driven to
//!   steady state with the solvers from `pathway-ode`.
//!
//! # Example
//!
//! ```
//! use pathway_photosynthesis::{EnzymePartition, Scenario, UptakeModel};
//!
//! let natural = EnzymePartition::natural();
//! let scenario = Scenario::present_low_export();
//! let model = UptakeModel::new();
//! let result = model.evaluate(&natural, &scenario);
//! // The natural leaf fixes roughly 15.5 µmol CO₂ per m² per second.
//! assert!(result.co2_uptake > 10.0 && result.co2_uptake < 20.0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod enzymes;
mod model;
mod partition;
mod scenario;
mod uptake;

pub use enzymes::{enzyme_table, EnzymeKind, ENZYME_COUNT};
pub use model::{CalvinCycleOde, MetabolitePool, OdeUptakeEvaluator, POOL_COUNT};
pub use partition::EnzymePartition;
pub use scenario::{CarbonDioxideEra, Scenario, TriosePhosphateExport};
pub use uptake::{LimitingFactor, UptakeModel, UptakeResult};
