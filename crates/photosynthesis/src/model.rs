use pathway_kinetics::rate_laws;
use pathway_linalg::Vector;
use pathway_ode::{
    BackwardEuler, Integrator, OdeError, OdeSystem, SteadyState, SteadyStateDriver,
    SteadyStateOptions,
};

use crate::enzymes::EnzymeKind;
use crate::partition::EnzymePartition;
use crate::scenario::Scenario;
use crate::uptake::UptakeModel;

/// Number of metabolite pools tracked by the dynamic model.
pub const POOL_COUNT: usize = 24;

/// Metabolite pools of the dynamic Calvin-cycle / photorespiration / sucrose
/// model, in state-vector order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // The variant names are the metabolite names themselves.
pub enum MetabolitePool {
    RuBP,
    Pga,
    Dpga,
    TrioseP,
    Fbp,
    F6p,
    E4p,
    Sbp,
    S7p,
    PentoseP,
    Pgca,
    Gca,
    Goa,
    Glycine,
    Serine,
    Hydroxypyruvate,
    Glycerate,
    CytosolicTrioseP,
    CytosolicFbp,
    CytosolicHexoseP,
    Udpg,
    SucroseP,
    Sucrose,
    F26bp,
}

impl MetabolitePool {
    /// All pools in state-vector order.
    pub const ALL: [MetabolitePool; POOL_COUNT] = [
        MetabolitePool::RuBP,
        MetabolitePool::Pga,
        MetabolitePool::Dpga,
        MetabolitePool::TrioseP,
        MetabolitePool::Fbp,
        MetabolitePool::F6p,
        MetabolitePool::E4p,
        MetabolitePool::Sbp,
        MetabolitePool::S7p,
        MetabolitePool::PentoseP,
        MetabolitePool::Pgca,
        MetabolitePool::Gca,
        MetabolitePool::Goa,
        MetabolitePool::Glycine,
        MetabolitePool::Serine,
        MetabolitePool::Hydroxypyruvate,
        MetabolitePool::Glycerate,
        MetabolitePool::CytosolicTrioseP,
        MetabolitePool::CytosolicFbp,
        MetabolitePool::CytosolicHexoseP,
        MetabolitePool::Udpg,
        MetabolitePool::SucroseP,
        MetabolitePool::Sucrose,
        MetabolitePool::F26bp,
    ];

    /// Index of the pool in the state vector.
    ///
    /// The enum variants are declared in `ALL` order, so the discriminant
    /// *is* the state-vector index (`pool_indices_round_trip` pins this).
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Number of phosphate groups carried by one molecule of the pool, used by
    /// the free-phosphate feedback.
    pub const fn phosphate_groups(self) -> f64 {
        match self {
            MetabolitePool::RuBP
            | MetabolitePool::Dpga
            | MetabolitePool::Fbp
            | MetabolitePool::Sbp
            | MetabolitePool::CytosolicFbp
            | MetabolitePool::F26bp => 2.0,
            MetabolitePool::Pga
            | MetabolitePool::TrioseP
            | MetabolitePool::F6p
            | MetabolitePool::E4p
            | MetabolitePool::S7p
            | MetabolitePool::PentoseP
            | MetabolitePool::Pgca
            | MetabolitePool::Glycerate
            | MetabolitePool::CytosolicTrioseP
            | MetabolitePool::CytosolicHexoseP
            | MetabolitePool::Udpg
            | MetabolitePool::SucroseP => 1.0,
            _ => 0.0,
        }
    }
}

/// Phosphate groups per pool in state-vector order, so the free-phosphate
/// feedback is a single slice zip over the state instead of 24 enum
/// dispatches per right-hand-side call.
const PHOSPHATE_GROUPS: [f64; POOL_COUNT] = {
    let mut table = [0.0; POOL_COUNT];
    let mut i = 0;
    while i < POOL_COUNT {
        table[i] = MetabolitePool::ALL[i].phosphate_groups();
        i += 1;
    }
    table
};

/// The fluxes of interest computed alongside the state derivative.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PathwayFluxes {
    /// Rubisco carboxylation flux (mmol l⁻¹ s⁻¹).
    pub carboxylation: f64,
    /// Rubisco oxygenation flux (mmol l⁻¹ s⁻¹).
    pub oxygenation: f64,
    /// Starch synthesis flux through ADPGPP.
    pub starch_synthesis: f64,
    /// Sucrose synthesis flux through SPP.
    pub sucrose_synthesis: f64,
}

/// Dynamic ODE model of the C3 carbon-metabolism pathway.
///
/// The model tracks 24 metabolite pools in the stroma and cytosol. All
/// non-equilibrium reactions obey Michaelis–Menten kinetics whose Vmax comes
/// from the [`EnzymePartition`]; fast interconversions (triose-phosphate and
/// pentose-phosphate pools) are lumped, following the structure of the Zhu et
/// al. model. A conserved phosphate budget provides the feedback that keeps
/// the system bounded: as phosphorylated intermediates accumulate, free
/// phosphate drops and carboxylation slows down.
///
/// The model implements [`OdeSystem`] so any solver from `pathway-ode` can
/// integrate it; [`OdeUptakeEvaluator`] wraps the steady-state evaluation.
#[derive(Debug, Clone)]
pub struct CalvinCycleOde {
    /// Per-enzyme Vmax in volumetric units (capacity / volume factor),
    /// precomputed once so the right-hand side never divides.
    vmax: Vec<f64>,
    ci: f64,
    export_rate: f64,
    /// Conversion between leaf-area capacities (µmol m⁻² s⁻¹) and volumetric
    /// rates (mmol l⁻¹ s⁻¹).
    volume_factor: f64,
    /// Total phosphate pool (mmol/l).
    total_phosphate: f64,
    /// Oxygenation/carboxylation ratio for the scenario.
    phi: f64,
    /// First-order dilution applied to every pool (1/s); keeps the system
    /// damped and guarantees a steady state exists.
    dilution: f64,
}

impl CalvinCycleOde {
    /// Builds the dynamic model for a partition and a scenario.
    pub fn new(partition: &EnzymePartition, scenario: &Scenario) -> Self {
        let uptake_model = UptakeModel::new();
        let volume_factor = 30.0;
        CalvinCycleOde {
            vmax: partition
                .capacities()
                .iter()
                .map(|&c| c / volume_factor)
                .collect(),
            ci: scenario.ci(),
            export_rate: scenario.export.rate(),
            volume_factor,
            total_phosphate: 30.0,
            phi: uptake_model.oxygenation_ratio(scenario.ci()),
            dilution: 0.005,
        }
    }

    fn vmax(&self, kind: EnzymeKind) -> f64 {
        self.vmax[kind.index()]
    }

    /// Free phosphate remaining after subtracting the phosphate bound in the
    /// tracked pools, clamped to a small positive floor.
    fn free_phosphate(&self, y: &Vector) -> f64 {
        let bound: f64 = PHOSPHATE_GROUPS
            .iter()
            .zip(y.as_slice())
            .map(|(&groups, &c)| groups * c.max(0.0))
            .sum();
        (self.total_phosphate - bound).max(1e-3)
    }

    /// Evaluates every reaction flux at the current state.
    pub fn fluxes(&self, y: &Vector) -> PathwayFluxes {
        self.fluxes_with_pi(y, self.free_phosphate(y))
    }

    /// [`CalvinCycleOde::fluxes`] with the free-phosphate pool already known,
    /// so the right-hand side evaluates the phosphate budget exactly once per
    /// call instead of once here and once for its own rate laws.
    fn fluxes_with_pi(&self, y: &Vector, pi: f64) -> PathwayFluxes {
        use MetabolitePool as P;
        let pi_factor = pi / (pi + 1.0);

        let rubp = y[P::RuBP.index()];
        let kc_eff = 160.0 * (1.0 + 210.0 / 250.0);
        let co2_saturation = self.ci / (self.ci + kc_eff);
        let carboxylation = rate_laws::michaelis_menten(
            self.vmax(EnzymeKind::Rubisco) * co2_saturation * pi_factor,
            0.3,
            rubp,
        );
        let oxygenation = carboxylation * self.phi;

        let starch_synthesis = rate_laws::michaelis_menten(
            self.vmax(EnzymeKind::Adpgpp) / 2.0,
            1.0,
            y[P::F6p.index()],
        );
        let sucrose_synthesis = rate_laws::michaelis_menten(
            self.vmax(EnzymeKind::Spp) / 1.6,
            0.1,
            y[P::SucroseP.index()],
        );

        PathwayFluxes {
            carboxylation,
            oxygenation,
            starch_synthesis,
            sucrose_synthesis,
        }
    }

    /// Net CO₂ uptake (µmol m⁻² s⁻¹) implied by the fluxes at state `y`:
    /// carboxylation minus the CO₂ released by glycine decarboxylation.
    pub fn net_uptake(&self, y: &Vector) -> f64 {
        let fluxes = self.fluxes(y);
        (fluxes.carboxylation - 0.5 * fluxes.oxygenation) * self.volume_factor
    }

    /// A reasonable initial condition: every pool at a small positive value,
    /// with the Calvin-cycle carriers primed so the autocatalytic cycle can
    /// spool up.
    pub fn initial_state(&self) -> Vector {
        let mut y = Vector::filled(POOL_COUNT, 0.5);
        y[MetabolitePool::RuBP.index()] = 2.0;
        y[MetabolitePool::Pga.index()] = 2.0;
        y[MetabolitePool::TrioseP.index()] = 1.0;
        y[MetabolitePool::F26bp.index()] = 0.05;
        y
    }
}

impl OdeSystem for CalvinCycleOde {
    fn dim(&self) -> usize {
        POOL_COUNT
    }

    fn rhs(&self, _t: f64, y: &Vector, dydt: &mut Vector) {
        use MetabolitePool as P;
        let idx = |p: P| p.index();
        let conc = |p: P| y[idx(p)].max(0.0);

        let pi = self.free_phosphate(y);
        let pi_factor = pi / (pi + 1.0);

        let fluxes = self.fluxes_with_pi(y, pi);
        let vc = fluxes.carboxylation;
        let vo = fluxes.oxygenation;

        // Calvin cycle.
        let v_pga_kinase = rate_laws::michaelis_menten(
            self.vmax(EnzymeKind::PgaKinase) * pi_factor,
            0.5,
            conc(P::Pga),
        );
        let v_gapdh = rate_laws::michaelis_menten(self.vmax(EnzymeKind::Gapdh), 0.3, conc(P::Dpga));
        let v_fbp_aldolase =
            rate_laws::michaelis_menten(self.vmax(EnzymeKind::FbpAldolase), 0.4, conc(P::TrioseP));
        let v_fbpase = rate_laws::competitive_inhibition(
            self.vmax(EnzymeKind::Fbpase),
            0.15,
            conc(P::Fbp),
            conc(P::F26bp),
            0.05,
        );
        let v_transketolase = rate_laws::michaelis_menten_two_substrates(
            self.vmax(EnzymeKind::Transketolase),
            0.3,
            conc(P::F6p),
            0.3,
            conc(P::TrioseP),
        );
        let v_sbp_aldolase = rate_laws::michaelis_menten_two_substrates(
            self.vmax(EnzymeKind::SbpAldolase),
            0.3,
            conc(P::E4p),
            0.3,
            conc(P::TrioseP),
        );
        let v_sbpase =
            rate_laws::michaelis_menten(self.vmax(EnzymeKind::Sbpase), 0.1, conc(P::Sbp));
        let v_transketolase2 = rate_laws::michaelis_menten_two_substrates(
            self.vmax(EnzymeKind::Transketolase),
            0.3,
            conc(P::S7p),
            0.3,
            conc(P::TrioseP),
        );
        let v_prk = rate_laws::michaelis_menten(
            self.vmax(EnzymeKind::Prk) * pi_factor,
            0.2,
            conc(P::PentoseP),
        );

        // Starch branch (sink).
        let v_adpgpp = fluxes.starch_synthesis;

        // Photorespiration.
        let v_pgcapase =
            rate_laws::michaelis_menten(self.vmax(EnzymeKind::Pgcapase), 0.1, conc(P::Pgca));
        let v_goa_oxidase =
            rate_laws::michaelis_menten(self.vmax(EnzymeKind::GoaOxidase), 0.1, conc(P::Gca));
        let v_ggat = rate_laws::michaelis_menten(self.vmax(EnzymeKind::Ggat), 0.2, conc(P::Goa));
        let v_gdc = rate_laws::michaelis_menten(self.vmax(EnzymeKind::Gdc), 0.5, conc(P::Glycine));
        let v_gsat = rate_laws::michaelis_menten(self.vmax(EnzymeKind::Gsat), 0.2, conc(P::Serine));
        let v_hpr = rate_laws::michaelis_menten(
            self.vmax(EnzymeKind::HprReductase),
            0.1,
            conc(P::Hydroxypyruvate),
        );
        let v_gcea_kinase = rate_laws::michaelis_menten(
            self.vmax(EnzymeKind::GceaKinase) * pi_factor,
            0.2,
            conc(P::Glycerate),
        );

        // Triose-phosphate export to the cytosol, saturating at the scenario's
        // transporter capacity. The high K_m keeps the exporter from draining
        // the cycle while it is still spooling up.
        let v_export = rate_laws::michaelis_menten(self.export_rate, 2.0, conc(P::TrioseP));

        // Cytosolic sucrose synthesis.
        let v_cyt_aldolase = rate_laws::michaelis_menten(
            self.vmax(EnzymeKind::CytosolicFbpAldolase),
            0.3,
            conc(P::CytosolicTrioseP),
        );
        let v_cyt_fbpase = rate_laws::competitive_inhibition(
            self.vmax(EnzymeKind::CytosolicFbpase),
            0.15,
            conc(P::CytosolicFbp),
            conc(P::F26bp),
            0.02,
        );
        let v_udpgp = rate_laws::michaelis_menten(
            self.vmax(EnzymeKind::Udpgp),
            0.2,
            conc(P::CytosolicHexoseP),
        );
        let v_sps = rate_laws::michaelis_menten_two_substrates(
            self.vmax(EnzymeKind::Sps),
            0.3,
            conc(P::Udpg),
            0.3,
            conc(P::CytosolicHexoseP),
        );
        let v_spp = fluxes.sucrose_synthesis;
        // Sucrose leaves the system (phloem loading), first order.
        let v_sucrose_sink = 0.2 * conc(P::Sucrose);

        // Basal pentose-phosphate supply from stored reserves (oxidative
        // pentose-phosphate pathway); keeps the autocatalytic cycle from
        // collapsing into the trivial washout steady state.
        let v_pentose_basal = 0.02;

        // F2,6BP regulatory pool: synthesized at a constant rate, degraded by
        // F26BPase.
        let v_f26_synthesis = 0.01;
        let v_f26bpase =
            rate_laws::michaelis_menten(self.vmax(EnzymeKind::F26Bpase), 0.02, conc(P::F26bp));

        // Assemble the derivative: dilution term over the whole state first
        // (a slice zip the compiler vectorizes), then the reaction terms.
        for (d, &c) in dydt.as_mut_slice().iter_mut().zip(y.as_slice()) {
            *d = -self.dilution * c;
        }
        let mut add = |pool: P, v: f64| {
            dydt[idx(pool)] += v;
        };

        // RuBP consumed by carboxylation and oxygenation, produced by PRK.
        add(P::RuBP, v_prk - vc - vo);
        // PGA: 2 per carboxylation, 1 per oxygenation, 1 from glycerate kinase.
        add(P::Pga, 2.0 * vc + vo + v_gcea_kinase - v_pga_kinase);
        add(P::Dpga, v_pga_kinase - v_gapdh);
        // Triose phosphate: produced by GAPDH, consumed by the aldolases,
        // transketolases and export.
        add(
            P::TrioseP,
            v_gapdh
                - 2.0 * v_fbp_aldolase
                - v_transketolase
                - v_sbp_aldolase
                - v_transketolase2
                - v_export,
        );
        add(P::Fbp, v_fbp_aldolase - v_fbpase);
        add(P::F6p, v_fbpase - v_transketolase - v_adpgpp);
        add(P::E4p, v_transketolase - v_sbp_aldolase);
        add(P::Sbp, v_sbp_aldolase - v_sbpase);
        add(P::S7p, v_sbpase - v_transketolase2);
        // Pentose phosphates: one from TK1, two from TK2, a basal supply from
        // reserves, consumed by PRK.
        add(
            P::PentoseP,
            v_transketolase + 2.0 * v_transketolase2 + v_pentose_basal - v_prk,
        );
        // Photorespiratory loop.
        add(P::Pgca, vo - v_pgcapase);
        add(P::Gca, v_pgcapase - v_goa_oxidase);
        add(P::Goa, v_goa_oxidase - v_ggat);
        add(P::Glycine, v_ggat - v_gdc);
        add(P::Serine, 0.5 * v_gdc - v_gsat);
        add(P::Hydroxypyruvate, v_gsat - v_hpr);
        add(P::Glycerate, v_hpr - v_gcea_kinase);
        // Cytosol.
        add(P::CytosolicTrioseP, v_export - 2.0 * v_cyt_aldolase);
        add(P::CytosolicFbp, v_cyt_aldolase - v_cyt_fbpase);
        add(P::CytosolicHexoseP, v_cyt_fbpase - v_udpgp - v_sps);
        add(P::Udpg, v_udpgp - v_sps);
        add(P::SucroseP, v_sps - v_spp);
        add(P::Sucrose, v_spp - v_sucrose_sink);
        add(P::F26bp, v_f26_synthesis - v_f26bpase);
    }

    fn project(&self, _t: f64, y: &mut Vector) {
        y.clamp_mut(0.0, 100.0);
    }
}

/// Evaluates leaf CO₂ uptake by integrating [`CalvinCycleOde`] to steady
/// state, the dynamic counterpart of the analytic [`UptakeModel`].
#[derive(Debug, Clone)]
pub struct OdeUptakeEvaluator {
    options: SteadyStateOptions,
    step: f64,
}

impl Default for OdeUptakeEvaluator {
    fn default() -> Self {
        OdeUptakeEvaluator {
            options: SteadyStateOptions {
                window: 25.0,
                derivative_tol: 5e-5,
                state_change_tol: 5e-6,
                max_time: 4000.0,
            },
            step: 0.05,
        }
    }
}

impl OdeUptakeEvaluator {
    /// Creates an evaluator with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// A faster, coarser evaluator (larger implicit step, looser convergence
    /// tolerances and a shorter horizon). Intended for tests and benchmarks
    /// where only qualitative behaviour matters.
    pub fn fast() -> Self {
        OdeUptakeEvaluator {
            options: SteadyStateOptions {
                window: 50.0,
                derivative_tol: 1e-3,
                state_change_tol: 1e-4,
                max_time: 800.0,
            },
            step: 0.1,
        }
    }

    /// Runs the dynamic model to steady state and returns the steady state
    /// together with the implied net CO₂ uptake (µmol m⁻² s⁻¹).
    ///
    /// # Errors
    ///
    /// Propagates integration failures, in particular
    /// [`OdeError::SteadyStateNotReached`] when the pathway does not settle
    /// within the configured horizon.
    pub fn steady_state(
        &self,
        partition: &EnzymePartition,
        scenario: &Scenario,
    ) -> Result<(SteadyState, f64), OdeError> {
        let model = CalvinCycleOde::new(partition, scenario);
        let y0 = model.initial_state();
        self.run_to_steady(model, y0)
    }

    /// Like [`OdeUptakeEvaluator::steady_state`], but integrates from an
    /// explicit initial state instead of the model's cold-start default.
    ///
    /// This is the warm-start entry point: seeding the integration with the
    /// steady state of a *similar* partition (a parent design in an
    /// optimization run) starts the trajectory near the attractor, so the
    /// convergence windows it has to pay for are the ones that track the
    /// difference between the designs, not the whole spool-up transient.
    /// Starting from a design's own steady state converges within the first
    /// window.
    ///
    /// # Errors
    ///
    /// Same as [`OdeUptakeEvaluator::steady_state`].
    pub fn steady_state_from(
        &self,
        partition: &EnzymePartition,
        scenario: &Scenario,
        y0: Vector,
    ) -> Result<(SteadyState, f64), OdeError> {
        self.run_to_steady(CalvinCycleOde::new(partition, scenario), y0)
    }

    fn run_to_steady(
        &self,
        model: CalvinCycleOde,
        y0: Vector,
    ) -> Result<(SteadyState, f64), OdeError> {
        let driver = SteadyStateDriver::new(BackwardEuler::new(self.step), self.options);
        let steady = driver.run(&model, y0)?;
        let uptake = model.net_uptake(&steady.state);
        Ok((steady, uptake))
    }

    /// Convenience: only the net uptake.
    ///
    /// # Errors
    ///
    /// Same as [`OdeUptakeEvaluator::steady_state`].
    pub fn co2_uptake(
        &self,
        partition: &EnzymePartition,
        scenario: &Scenario,
    ) -> Result<f64, OdeError> {
        Ok(self.steady_state(partition, scenario)?.1)
    }

    /// Integrates the model for a fixed horizon with an explicit solver and
    /// returns the trajectory endpoint; useful for inspecting transients.
    ///
    /// # Errors
    ///
    /// Propagates integration failures from the underlying solver.
    pub fn transient(
        &self,
        partition: &EnzymePartition,
        scenario: &Scenario,
        horizon: f64,
    ) -> Result<Vector, OdeError> {
        let model = CalvinCycleOde::new(partition, scenario);
        let result =
            BackwardEuler::new(self.step).integrate(&model, 0.0, model.initial_state(), horizon)?;
        Ok(result.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CarbonDioxideEra, TriosePhosphateExport};

    #[test]
    fn pool_indices_round_trip() {
        for (i, &pool) in MetabolitePool::ALL.iter().enumerate() {
            assert_eq!(pool.index(), i);
        }
        assert_eq!(MetabolitePool::ALL.len(), POOL_COUNT);
    }

    #[test]
    fn phosphate_groups_are_physically_sensible() {
        assert_eq!(MetabolitePool::RuBP.phosphate_groups(), 2.0);
        assert_eq!(MetabolitePool::Pga.phosphate_groups(), 1.0);
        assert_eq!(MetabolitePool::Sucrose.phosphate_groups(), 0.0);
    }

    #[test]
    fn rhs_is_finite_at_the_initial_state() {
        let model =
            CalvinCycleOde::new(&EnzymePartition::natural(), &Scenario::present_low_export());
        let y = model.initial_state();
        let mut dydt = Vector::zeros(POOL_COUNT);
        model.rhs(0.0, &y, &mut dydt);
        assert!(dydt.is_finite());
    }

    #[test]
    fn carboxylation_stops_without_rubp() {
        let model =
            CalvinCycleOde::new(&EnzymePartition::natural(), &Scenario::present_low_export());
        let mut y = model.initial_state();
        y[MetabolitePool::RuBP.index()] = 0.0;
        let fluxes = model.fluxes(&y);
        assert_eq!(fluxes.carboxylation, 0.0);
        assert_eq!(fluxes.oxygenation, 0.0);
    }

    #[test]
    fn natural_leaf_reaches_a_positive_steady_state() {
        let evaluator = OdeUptakeEvaluator::fast();
        let (steady, uptake) = evaluator
            .steady_state(&EnzymePartition::natural(), &Scenario::present_low_export())
            .expect("the natural leaf must settle");
        assert!(uptake > 0.0, "uptake {uptake} should be positive");
        assert!(steady.state.iter().all(|&c| c >= 0.0));
        assert!(steady.state.iter().all(|&c| c <= 100.0));
    }

    #[test]
    fn ode_uptake_increases_with_atmospheric_co2() {
        let evaluator = OdeUptakeEvaluator::fast();
        let natural = EnzymePartition::natural();
        let past = evaluator
            .co2_uptake(
                &natural,
                &Scenario::new(CarbonDioxideEra::Past, TriosePhosphateExport::Low),
            )
            .unwrap();
        let future = evaluator
            .co2_uptake(
                &natural,
                &Scenario::new(CarbonDioxideEra::Future, TriosePhosphateExport::Low),
            )
            .unwrap();
        assert!(
            future > past,
            "future uptake {future} should exceed past uptake {past}"
        );
    }

    #[test]
    fn warm_starting_from_the_own_steady_state_settles_immediately() {
        let evaluator = OdeUptakeEvaluator::fast();
        let natural = EnzymePartition::natural();
        let scenario = Scenario::present_low_export();
        let (cold, cold_uptake) = evaluator
            .steady_state(&natural, &scenario)
            .expect("cold start settles");
        let (warm, warm_uptake) = evaluator
            .steady_state_from(&natural, &scenario, cold.state.clone())
            .expect("warm start settles");
        // Re-starting from the attractor converges within the first
        // integration window, while the cold start pays the full transient.
        assert!(warm.simulated_time <= evaluator.options.window + 1e-9);
        assert!(warm.simulated_time < cold.simulated_time);
        assert!((warm_uptake - cold_uptake).abs() < 0.5);
    }

    #[test]
    fn transient_is_bounded() {
        let evaluator = OdeUptakeEvaluator::fast();
        let state = evaluator
            .transient(
                &EnzymePartition::natural(),
                &Scenario::present_low_export(),
                10.0,
            )
            .unwrap();
        assert!(state.iter().all(|&c| (0.0..=100.0).contains(&c)));
    }

    #[test]
    fn starving_the_calvin_cycle_reduces_ode_uptake() {
        let evaluator = OdeUptakeEvaluator::fast();
        let scenario = Scenario::present_low_export();
        let natural = EnzymePartition::natural();
        let crippled = natural
            .with_scaled(EnzymeKind::Sbpase, 0.05)
            .with_scaled(EnzymeKind::Prk, 0.05);
        let healthy = evaluator.co2_uptake(&natural, &scenario).unwrap();
        let impaired = evaluator.co2_uptake(&crippled, &scenario).unwrap();
        assert!(impaired < healthy);
    }
}
