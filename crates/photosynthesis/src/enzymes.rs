use pathway_kinetics::{Enzyme, KineticConstants};

/// Number of tunable enzymes in the model (the 23 bars of the paper's Figure 2).
pub const ENZYME_COUNT: usize = 23;

/// The 23 enzymes of the C3 carbon-metabolism model, in the order of the
/// paper's Figure 2.
///
/// The first ten are Calvin-cycle / starch enzymes, the next seven belong to
/// the photorespiratory pathway, and the remaining six to cytosolic sucrose
/// synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // The variant names are the enzyme names themselves.
pub enum EnzymeKind {
    Rubisco,
    PgaKinase,
    Gapdh,
    FbpAldolase,
    Fbpase,
    Transketolase,
    SbpAldolase,
    Sbpase,
    Prk,
    Adpgpp,
    Pgcapase,
    GceaKinase,
    GoaOxidase,
    Gsat,
    HprReductase,
    Ggat,
    Gdc,
    CytosolicFbpAldolase,
    CytosolicFbpase,
    Udpgp,
    Sps,
    Spp,
    F26Bpase,
}

impl EnzymeKind {
    /// All enzymes in Figure 2 order.
    pub const ALL: [EnzymeKind; ENZYME_COUNT] = [
        EnzymeKind::Rubisco,
        EnzymeKind::PgaKinase,
        EnzymeKind::Gapdh,
        EnzymeKind::FbpAldolase,
        EnzymeKind::Fbpase,
        EnzymeKind::Transketolase,
        EnzymeKind::SbpAldolase,
        EnzymeKind::Sbpase,
        EnzymeKind::Prk,
        EnzymeKind::Adpgpp,
        EnzymeKind::Pgcapase,
        EnzymeKind::GceaKinase,
        EnzymeKind::GoaOxidase,
        EnzymeKind::Gsat,
        EnzymeKind::HprReductase,
        EnzymeKind::Ggat,
        EnzymeKind::Gdc,
        EnzymeKind::CytosolicFbpAldolase,
        EnzymeKind::CytosolicFbpase,
        EnzymeKind::Udpgp,
        EnzymeKind::Sps,
        EnzymeKind::Spp,
        EnzymeKind::F26Bpase,
    ];

    /// Index of the enzyme in the Figure 2 ordering.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&e| e == self)
            .expect("every enzyme kind appears in ALL")
    }

    /// Enzyme at a given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= ENZYME_COUNT`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }

    /// Human-readable name matching the paper's Figure 2 labels.
    pub fn name(self) -> &'static str {
        match self {
            EnzymeKind::Rubisco => "Rubisco",
            EnzymeKind::PgaKinase => "PGA Kinase",
            EnzymeKind::Gapdh => "GAP DH",
            EnzymeKind::FbpAldolase => "FBP Aldolase",
            EnzymeKind::Fbpase => "FBPase",
            EnzymeKind::Transketolase => "Transketolase",
            EnzymeKind::SbpAldolase => "Aldolase",
            EnzymeKind::Sbpase => "SBPase",
            EnzymeKind::Prk => "PRK",
            EnzymeKind::Adpgpp => "ADPGPP",
            EnzymeKind::Pgcapase => "PGCAPase",
            EnzymeKind::GceaKinase => "GCEA Kinase",
            EnzymeKind::GoaOxidase => "GOA Oxidase",
            EnzymeKind::Gsat => "GSAT",
            EnzymeKind::HprReductase => "HPR reductase",
            EnzymeKind::Ggat => "GGAT",
            EnzymeKind::Gdc => "GDC",
            EnzymeKind::CytosolicFbpAldolase => "Cytosolic FBP aldolase",
            EnzymeKind::CytosolicFbpase => "Cytosolic FBPase",
            EnzymeKind::Udpgp => "UDPGP",
            EnzymeKind::Sps => "SPS",
            EnzymeKind::Spp => "SPP",
            EnzymeKind::F26Bpase => "F26BPase",
        }
    }

    /// `true` if the enzyme belongs to the photorespiratory pathway.
    pub fn is_photorespiratory(self) -> bool {
        matches!(
            self,
            EnzymeKind::Pgcapase
                | EnzymeKind::GceaKinase
                | EnzymeKind::GoaOxidase
                | EnzymeKind::Gsat
                | EnzymeKind::HprReductase
                | EnzymeKind::Ggat
                | EnzymeKind::Gdc
        )
    }

    /// `true` if the enzyme belongs to the cytosolic sucrose-synthesis branch.
    pub fn is_sucrose_branch(self) -> bool {
        matches!(
            self,
            EnzymeKind::CytosolicFbpAldolase
                | EnzymeKind::CytosolicFbpase
                | EnzymeKind::Udpgp
                | EnzymeKind::Sps
                | EnzymeKind::Spp
                | EnzymeKind::F26Bpase
        )
    }

    /// Turnover number k_cat in 1/s (plausible literature-scale values; see
    /// `DESIGN.md` on the parameter substitution).
    pub fn k_cat(self) -> f64 {
        match self {
            EnzymeKind::Rubisco => 3.5,
            EnzymeKind::PgaKinase => 200.0,
            EnzymeKind::Gapdh => 80.0,
            EnzymeKind::FbpAldolase => 20.0,
            EnzymeKind::Fbpase => 25.0,
            EnzymeKind::Transketolase => 50.0,
            EnzymeKind::SbpAldolase => 20.0,
            EnzymeKind::Sbpase => 22.0,
            EnzymeKind::Prk => 180.0,
            EnzymeKind::Adpgpp => 30.0,
            EnzymeKind::Pgcapase => 40.0,
            EnzymeKind::GceaKinase => 60.0,
            EnzymeKind::GoaOxidase => 25.0,
            EnzymeKind::Gsat => 35.0,
            EnzymeKind::HprReductase => 100.0,
            EnzymeKind::Ggat => 35.0,
            EnzymeKind::Gdc => 15.0,
            EnzymeKind::CytosolicFbpAldolase => 20.0,
            EnzymeKind::CytosolicFbpase => 25.0,
            EnzymeKind::Udpgp => 80.0,
            EnzymeKind::Sps => 12.0,
            EnzymeKind::Spp => 50.0,
            EnzymeKind::F26Bpase => 10.0,
        }
    }

    /// Molecular weight of the holoenzyme in kDa.
    pub fn molecular_weight_kda(self) -> f64 {
        match self {
            EnzymeKind::Rubisco => 550.0,
            EnzymeKind::PgaKinase => 45.0,
            EnzymeKind::Gapdh => 150.0,
            EnzymeKind::FbpAldolase => 160.0,
            EnzymeKind::Fbpase => 145.0,
            EnzymeKind::Transketolase => 150.0,
            EnzymeKind::SbpAldolase => 160.0,
            EnzymeKind::Sbpase => 90.0,
            EnzymeKind::Prk => 90.0,
            EnzymeKind::Adpgpp => 210.0,
            EnzymeKind::Pgcapase => 95.0,
            EnzymeKind::GceaKinase => 40.0,
            EnzymeKind::GoaOxidase => 150.0,
            EnzymeKind::Gsat => 90.0,
            EnzymeKind::HprReductase => 95.0,
            EnzymeKind::Ggat => 100.0,
            EnzymeKind::Gdc => 1000.0,
            EnzymeKind::CytosolicFbpAldolase => 160.0,
            EnzymeKind::CytosolicFbpase => 145.0,
            EnzymeKind::Udpgp => 105.0,
            EnzymeKind::Sps => 120.0,
            EnzymeKind::Spp => 55.0,
            EnzymeKind::F26Bpase => 90.0,
        }
    }

    /// Natural catalytic capacity (Vmax, µmol m⁻² s⁻¹) of the enzyme in an
    /// unengineered leaf. The natural partition is the paper's green
    /// "operating area" reference point.
    pub fn natural_capacity(self) -> f64 {
        match self {
            EnzymeKind::Rubisco => 40.0,
            EnzymeKind::PgaKinase => 300.0,
            EnzymeKind::Gapdh => 120.0,
            EnzymeKind::FbpAldolase => 40.0,
            EnzymeKind::Fbpase => 30.0,
            EnzymeKind::Transketolase => 60.0,
            EnzymeKind::SbpAldolase => 40.0,
            EnzymeKind::Sbpase => 25.0,
            EnzymeKind::Prk => 250.0,
            EnzymeKind::Adpgpp => 20.0,
            EnzymeKind::Pgcapase => 30.0,
            EnzymeKind::GceaKinase => 30.0,
            EnzymeKind::GoaOxidase => 25.0,
            EnzymeKind::Gsat => 30.0,
            EnzymeKind::HprReductase => 30.0,
            EnzymeKind::Ggat => 30.0,
            EnzymeKind::Gdc => 25.0,
            EnzymeKind::CytosolicFbpAldolase => 30.0,
            EnzymeKind::CytosolicFbpase => 25.0,
            EnzymeKind::Udpgp => 60.0,
            EnzymeKind::Sps => 20.0,
            EnzymeKind::Spp => 40.0,
            EnzymeKind::F26Bpase => 5.0,
        }
    }

    /// Builds the [`Enzyme`] record used by the nitrogen accounting in
    /// `pathway-kinetics`.
    pub fn to_enzyme(self) -> Enzyme {
        Enzyme::new(
            self.name(),
            KineticConstants::new(self.k_cat(), 0.5),
            self.molecular_weight_kda(),
        )
        // The paper's Figure 2 nitrogen formula uses MW/k_cat directly without
        // a protein-nitrogen mass fraction, so use 1.0 here.
        .with_nitrogen_fraction(1.0)
    }
}

impl std::fmt::Display for EnzymeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The full enzyme table in Figure 2 order.
pub fn enzyme_table() -> Vec<Enzyme> {
    EnzymeKind::ALL
        .iter()
        .map(|kind| kind.to_enzyme())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn there_are_exactly_23_enzymes() {
        assert_eq!(EnzymeKind::ALL.len(), ENZYME_COUNT);
        assert_eq!(enzyme_table().len(), ENZYME_COUNT);
    }

    #[test]
    fn index_round_trips() {
        for (i, &kind) in EnzymeKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
            assert_eq!(EnzymeKind::from_index(i), kind);
        }
    }

    #[test]
    fn names_are_unique_and_match_figure_2_labels() {
        let names: HashSet<&str> = EnzymeKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), ENZYME_COUNT);
        assert!(names.contains("Rubisco"));
        assert!(names.contains("SBPase"));
        assert!(names.contains("ADPGPP"));
        assert!(names.contains("F26BPase"));
        assert!(names.contains("Cytosolic FBP aldolase"));
    }

    #[test]
    fn pathway_classification_is_disjoint() {
        let photoresp: Vec<_> = EnzymeKind::ALL
            .iter()
            .filter(|k| k.is_photorespiratory())
            .collect();
        let sucrose: Vec<_> = EnzymeKind::ALL
            .iter()
            .filter(|k| k.is_sucrose_branch())
            .collect();
        assert_eq!(photoresp.len(), 7);
        assert_eq!(sucrose.len(), 6);
        for k in &photoresp {
            assert!(!k.is_sucrose_branch());
        }
    }

    #[test]
    fn all_kinetic_parameters_are_positive() {
        for kind in EnzymeKind::ALL {
            assert!(kind.k_cat() > 0.0, "{kind} has non-positive k_cat");
            assert!(kind.molecular_weight_kda() > 0.0);
            assert!(kind.natural_capacity() > 0.0);
        }
    }

    #[test]
    fn rubisco_is_the_most_nitrogen_expensive_per_unit_capacity() {
        let rubisco_cost = EnzymeKind::Rubisco.molecular_weight_kda() / EnzymeKind::Rubisco.k_cat();
        for kind in EnzymeKind::ALL {
            if kind != EnzymeKind::Rubisco {
                let cost = kind.molecular_weight_kda() / kind.k_cat();
                assert!(
                    rubisco_cost > cost,
                    "{kind} should be cheaper per catalytic unit than Rubisco"
                );
            }
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(format!("{}", EnzymeKind::Sbpase), "SBPase");
    }
}
