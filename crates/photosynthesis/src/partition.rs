use std::fmt;
use std::ops::Index;

use pathway_kinetics::nitrogen;

use crate::enzymes::{enzyme_table, EnzymeKind, ENZYME_COUNT};

/// Calibration factor that maps the surrogate's raw `Σ capacity·MW/k_cat`
/// nitrogen sum onto the paper's reported total of 208 330 mg/l for the
/// natural leaf (see `DESIGN.md`, "Substitutions").
fn nitrogen_scale() -> f64 {
    let enzymes = enzyme_table();
    let natural: Vec<f64> = EnzymeKind::ALL
        .iter()
        .map(|k| k.natural_capacity())
        .collect();
    let raw = nitrogen::total_nitrogen(&enzymes, &natural);
    EnzymePartition::NATURAL_NITROGEN / raw
}

/// A 23-dimensional enzyme partition: the catalytic capacity (Vmax, µmol m⁻²
/// s⁻¹) assigned to each enzyme of the C3 carbon-metabolism model.
///
/// This is the decision vector of the paper's leaf-redesign problem. The
/// natural leaf is [`EnzymePartition::natural`]; candidate re-engineered
/// leaves are obtained by scaling individual enzymes (the paper's Figure 2
/// reports exactly those per-enzyme ratios).
///
/// # Example
///
/// ```
/// use pathway_photosynthesis::{EnzymeKind, EnzymePartition};
///
/// let natural = EnzymePartition::natural();
/// let engineered = natural.with_scaled(EnzymeKind::Rubisco, 0.5);
/// assert!(engineered.total_nitrogen() < natural.total_nitrogen());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnzymePartition {
    capacities: Vec<f64>,
}

impl EnzymePartition {
    /// Total protein nitrogen of the natural leaf in mg/l, as reported in the
    /// paper (Figure 1: "Oper. Nitrogen Conc.: 208330 ± 10% mg l⁻¹").
    pub const NATURAL_NITROGEN: f64 = 208_330.0;

    /// Creates a partition from explicit capacities.
    ///
    /// # Panics
    ///
    /// Panics if `capacities.len() != ENZYME_COUNT` or any value is negative
    /// or non-finite.
    pub fn new(capacities: Vec<f64>) -> Self {
        assert_eq!(
            capacities.len(),
            ENZYME_COUNT,
            "an enzyme partition has exactly {ENZYME_COUNT} entries"
        );
        assert!(
            capacities.iter().all(|c| c.is_finite() && *c >= 0.0),
            "capacities must be finite and non-negative"
        );
        EnzymePartition { capacities }
    }

    /// The natural (unengineered) leaf partition.
    pub fn natural() -> Self {
        EnzymePartition::new(
            EnzymeKind::ALL
                .iter()
                .map(|kind| kind.natural_capacity())
                .collect(),
        )
    }

    /// Capacity of one enzyme.
    pub fn capacity(&self, kind: EnzymeKind) -> f64 {
        self.capacities[kind.index()]
    }

    /// All capacities in Figure 2 order.
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Returns a copy with one enzyme's capacity replaced.
    #[must_use]
    pub fn with_capacity(&self, kind: EnzymeKind, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity >= 0.0,
            "capacity must be finite and non-negative"
        );
        let mut capacities = self.capacities.clone();
        capacities[kind.index()] = capacity;
        EnzymePartition { capacities }
    }

    /// Returns a copy with one enzyme's capacity multiplied by `factor`.
    #[must_use]
    pub fn with_scaled(&self, kind: EnzymeKind, factor: f64) -> Self {
        self.with_capacity(kind, self.capacity(kind) * factor)
    }

    /// Returns a copy with every capacity multiplied by `factor`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be non-negative"
        );
        EnzymePartition::new(self.capacities.iter().map(|c| c * factor).collect())
    }

    /// Total protein nitrogen of the partition in mg/l, following the paper's
    /// `Σ xᵢ·MWᵢ/k_catᵢ` accounting calibrated so that the natural leaf sums
    /// to [`EnzymePartition::NATURAL_NITROGEN`].
    pub fn total_nitrogen(&self) -> f64 {
        let enzymes = enzyme_table();
        nitrogen::total_nitrogen(&enzymes, &self.capacities) * nitrogen_scale()
    }

    /// Per-enzyme nitrogen breakdown in mg/l (same calibration as
    /// [`EnzymePartition::total_nitrogen`]).
    pub fn nitrogen_breakdown(&self) -> Vec<f64> {
        let enzymes = enzyme_table();
        let scale = nitrogen_scale();
        nitrogen::nitrogen_breakdown(&enzymes, &self.capacities)
            .into_iter()
            .map(|n| n * scale)
            .collect()
    }

    /// Per-enzyme ratio of this partition to the natural one, i.e. the bars of
    /// the paper's Figure 2.
    pub fn ratio_to_natural(&self) -> Vec<f64> {
        EnzymeKind::ALL
            .iter()
            .map(|kind| self.capacity(*kind) / kind.natural_capacity())
            .collect()
    }

    /// Search-space bounds used by the optimizers: each capacity may range
    /// from `lower_factor` to `upper_factor` times its natural value.
    ///
    /// The paper observes re-engineered candidates staying roughly within
    /// 0.05×–2× of the natural concentration; the optimizers search a wider
    /// 0.01×–8× box so that those candidates are interior points.
    pub fn bounds(lower_factor: f64, upper_factor: f64) -> Vec<(f64, f64)> {
        assert!(lower_factor >= 0.0 && upper_factor > lower_factor);
        EnzymeKind::ALL
            .iter()
            .map(|kind| {
                let natural = kind.natural_capacity();
                (natural * lower_factor, natural * upper_factor)
            })
            .collect()
    }

    /// Default optimizer bounds (0.01× to 8× the natural capacity).
    pub fn default_bounds() -> Vec<(f64, f64)> {
        Self::bounds(0.01, 8.0)
    }
}

impl Index<EnzymeKind> for EnzymePartition {
    type Output = f64;

    fn index(&self, kind: EnzymeKind) -> &f64 {
        &self.capacities[kind.index()]
    }
}

impl From<EnzymePartition> for Vec<f64> {
    fn from(partition: EnzymePartition) -> Self {
        partition.capacities
    }
}

impl fmt::Display for EnzymePartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "enzyme partition (total N {:.0} mg/l):",
            self.total_nitrogen()
        )?;
        for kind in EnzymeKind::ALL {
            writeln!(f, "  {:<24} {:>10.3}", kind.name(), self.capacity(kind))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn natural_partition_matches_the_papers_nitrogen_budget() {
        let natural = EnzymePartition::natural();
        assert!((natural.total_nitrogen() - EnzymePartition::NATURAL_NITROGEN).abs() < 1.0);
    }

    #[test]
    fn nitrogen_breakdown_sums_to_total() {
        let natural = EnzymePartition::natural();
        let sum: f64 = natural.nitrogen_breakdown().iter().sum();
        assert!((sum - natural.total_nitrogen()).abs() < 1e-6);
    }

    #[test]
    fn rubisco_dominates_the_natural_nitrogen_budget() {
        let natural = EnzymePartition::natural();
        let breakdown = natural.nitrogen_breakdown();
        let rubisco = breakdown[EnzymeKind::Rubisco.index()];
        assert!(rubisco > 0.5 * natural.total_nitrogen());
    }

    #[test]
    fn ratio_to_natural_is_one_for_the_natural_leaf() {
        let natural = EnzymePartition::natural();
        for ratio in natural.ratio_to_natural() {
            assert!((ratio - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn with_scaled_changes_only_one_enzyme() {
        let natural = EnzymePartition::natural();
        let engineered = natural.with_scaled(EnzymeKind::Sbpase, 2.0);
        for kind in EnzymeKind::ALL {
            let expected = if kind == EnzymeKind::Sbpase { 2.0 } else { 1.0 };
            let ratio = engineered.capacity(kind) / natural.capacity(kind);
            assert!((ratio - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn halving_rubisco_frees_a_large_share_of_nitrogen() {
        let natural = EnzymePartition::natural();
        let engineered = natural.with_scaled(EnzymeKind::Rubisco, 0.5);
        let saved = natural.total_nitrogen() - engineered.total_nitrogen();
        assert!(saved / natural.total_nitrogen() > 0.25);
    }

    #[test]
    fn scaled_partition_scales_nitrogen_linearly() {
        let natural = EnzymePartition::natural();
        let doubled = natural.scaled(2.0);
        assert!((doubled.total_nitrogen() - 2.0 * natural.total_nitrogen()).abs() < 1e-6);
    }

    #[test]
    fn bounds_contain_the_natural_partition() {
        let natural = EnzymePartition::natural();
        let bounds = EnzymePartition::default_bounds();
        assert_eq!(bounds.len(), ENZYME_COUNT);
        for (capacity, (lower, upper)) in natural.capacities().iter().zip(bounds.iter()) {
            assert!(capacity >= lower && capacity <= upper);
        }
    }

    #[test]
    #[should_panic(expected = "exactly 23 entries")]
    fn wrong_length_panics() {
        let _ = EnzymePartition::new(vec![1.0; 5]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_capacity_panics() {
        let mut caps = vec![1.0; ENZYME_COUNT];
        caps[0] = -1.0;
        let _ = EnzymePartition::new(caps);
    }

    #[test]
    fn indexing_and_conversion() {
        let natural = EnzymePartition::natural();
        assert_eq!(natural[EnzymeKind::Rubisco], 40.0);
        let raw: Vec<f64> = natural.clone().into();
        assert_eq!(raw.len(), ENZYME_COUNT);
        let display = format!("{natural}");
        assert!(display.contains("Rubisco"));
    }

    proptest! {
        #[test]
        fn prop_nitrogen_is_monotone_in_every_enzyme(
            index in 0usize..ENZYME_COUNT,
            factor in 1.0f64..5.0,
        ) {
            let natural = EnzymePartition::natural();
            let kind = EnzymeKind::from_index(index);
            let increased = natural.with_scaled(kind, factor);
            prop_assert!(increased.total_nitrogen() >= natural.total_nitrogen());
        }
    }
}
