use std::fmt;

use crate::enzymes::EnzymeKind;
use crate::partition::EnzymePartition;
use crate::scenario::Scenario;

/// Which process limits the steady-state CO₂ uptake of a leaf design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitingFactor {
    /// Rubisco carboxylation capacity.
    Carboxylation,
    /// RuBP regeneration through the Calvin cycle enzymes.
    Regeneration,
    /// End-product (starch + sucrose) synthesis or triose-phosphate export.
    ProductSynthesis,
    /// Photorespiratory recycling capacity.
    Photorespiration,
    /// The light-driven electron-transport ceiling.
    ElectronTransport,
}

impl fmt::Display for LimitingFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            LimitingFactor::Carboxylation => "carboxylation",
            LimitingFactor::Regeneration => "RuBP regeneration",
            LimitingFactor::ProductSynthesis => "product synthesis / export",
            LimitingFactor::Photorespiration => "photorespiratory recycling",
            LimitingFactor::ElectronTransport => "electron transport",
        };
        f.write_str(label)
    }
}

/// Result of evaluating a leaf design under a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct UptakeResult {
    /// Net CO₂ uptake in µmol m⁻² s⁻¹.
    pub co2_uptake: f64,
    /// Total protein nitrogen of the partition in mg/l.
    pub nitrogen: f64,
    /// Oxygenation-to-carboxylation ratio Φ under the scenario.
    pub oxygenation_ratio: f64,
    /// The process closest to being limiting.
    pub limiting_factor: LimitingFactor,
    /// The five candidate limitation rates (carboxylation, regeneration,
    /// product synthesis, photorespiration, electron transport), in µmol m⁻²
    /// s⁻¹ of net uptake.
    pub candidate_rates: [f64; 5],
}

/// Analytic steady-state model of leaf CO₂ uptake as a function of the enzyme
/// partition and the environmental scenario.
///
/// The model mirrors the structure of the Zhu et al. (2007) ODE model the
/// paper uses — Rubisco-limited carboxylation, co-limitation by the
/// Calvin-cycle regeneration enzymes, end-product synthesis (starch plus
/// cytosolic sucrose, modulated by F26BPase), a photorespiratory recycling
/// requirement and a light-driven ceiling — but solves the steady state
/// algebraically instead of integrating the ODEs, which makes it fast enough
/// to sit inside a multi-objective optimization loop. The dynamic counterpart
/// is [`crate::CalvinCycleOde`].
///
/// # Example
///
/// ```
/// use pathway_photosynthesis::{EnzymePartition, Scenario, UptakeModel};
///
/// let model = UptakeModel::new();
/// let natural = model.evaluate(&EnzymePartition::natural(), &Scenario::present_low_export());
/// let future = model.evaluate(&EnzymePartition::natural(), &Scenario::new(
///     pathway_photosynthesis::CarbonDioxideEra::Future,
///     pathway_photosynthesis::TriosePhosphateExport::Low,
/// ));
/// assert!(future.co2_uptake > natural.co2_uptake); // CO₂ fertilisation
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UptakeModel {
    /// Michaelis constant of Rubisco for CO₂ (µmol/mol).
    pub kc: f64,
    /// Michaelis constant of Rubisco for O₂ (mmol/mol).
    pub ko: f64,
    /// Oxygenation/carboxylation specificity ratio at the present-day Ci.
    pub phi_reference: f64,
    /// Light-driven (electron transport) ceiling on net uptake, µmol m⁻² s⁻¹.
    pub electron_transport_ceiling: f64,
    /// Exponent of the smooth-minimum co-limitation (higher = sharper).
    pub colimitation_sharpness: f64,
}

impl Default for UptakeModel {
    fn default() -> Self {
        UptakeModel {
            kc: 160.0,
            ko: 250.0,
            phi_reference: 0.25,
            electron_transport_ceiling: 42.0,
            colimitation_sharpness: 10.0,
        }
    }
}

impl UptakeModel {
    /// Creates the model with its default calibration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Oxygenation-to-carboxylation ratio Φ at a given intercellular CO₂.
    pub fn oxygenation_ratio(&self, ci: f64) -> f64 {
        self.phi_reference * 270.0 / ci.max(1.0)
    }

    /// Smooth minimum of positive rates: `(Σ rᵢ⁻ᵖ)^(-1/p)`. The expression is
    /// differentiable everywhere, never exceeds the hard minimum (so ceilings
    /// are respected exactly), and approaches the hard minimum as the
    /// sharpness grows or the rates separate.
    fn soft_min(&self, rates: &[f64]) -> f64 {
        let p = self.colimitation_sharpness;
        let sum: f64 = rates.iter().map(|&r| r.max(1e-9).powf(-p)).sum();
        sum.powf(-1.0 / p)
    }

    /// Effective capacity of a chain of enzymes, each with a stoichiometric
    /// load factor (flux through the enzyme per unit of net CO₂ uptake).
    fn chain_capacity(&self, partition: &EnzymePartition, chain: &[(EnzymeKind, f64)]) -> f64 {
        let rates: Vec<f64> = chain
            .iter()
            .map(|&(kind, load)| partition.capacity(kind) / load)
            .collect();
        self.soft_min(&rates)
    }

    /// Evaluates the steady-state CO₂ uptake of a leaf design.
    pub fn evaluate(&self, partition: &EnzymePartition, scenario: &Scenario) -> UptakeResult {
        let ci = scenario.ci();
        let o2 = scenario.o2();
        let phi = self.oxygenation_ratio(ci);
        let net_factor = 1.0 - 0.5 * phi;

        // 1. Rubisco-limited carboxylation.
        let kc_effective = self.kc * (1.0 + o2 / self.ko);
        let carboxylation_capacity =
            partition.capacity(EnzymeKind::Rubisco) * ci / (ci + kc_effective);
        let rubisco_limited = carboxylation_capacity * net_factor;

        // 2. RuBP regeneration through the Calvin cycle. Each enzyme carries a
        //    load of (flux per net CO₂); the loads grow with Φ because the
        //    photorespiratory PGA also has to be re-reduced.
        let photorespiratory_load = 1.0 + phi;
        let regeneration_chain = [
            (EnzymeKind::PgaKinase, 2.0 * photorespiratory_load),
            (EnzymeKind::Gapdh, 2.0 * photorespiratory_load),
            (EnzymeKind::FbpAldolase, 0.5),
            (EnzymeKind::Fbpase, 0.4),
            (EnzymeKind::Transketolase, 0.7),
            (EnzymeKind::SbpAldolase, 0.35),
            (EnzymeKind::Sbpase, 0.35),
            (EnzymeKind::Prk, 1.0 * photorespiratory_load),
        ];
        let regeneration_limited = self.chain_capacity(partition, &regeneration_chain) * net_factor;

        // 3. End-product synthesis: starch (ADPGPP) plus cytosolic sucrose,
        //    the latter modulated by F26BPase relief of F2,6BP inhibition, all
        //    capped by the scenario's triose-phosphate export ceiling.
        let starch_capacity = partition.capacity(EnzymeKind::Adpgpp) / 2.0;
        let sucrose_chain = [
            (EnzymeKind::CytosolicFbpAldolase, 1.2),
            (EnzymeKind::CytosolicFbpase, 1.0),
            (EnzymeKind::Udpgp, 2.4),
            (EnzymeKind::Sps, 0.8),
            (EnzymeKind::Spp, 1.6),
        ];
        let f26bpase = partition.capacity(EnzymeKind::F26Bpase);
        let f26_relief = f26bpase / (f26bpase + 0.5 * EnzymeKind::F26Bpase.natural_capacity());
        let sucrose_capacity = self.chain_capacity(partition, &sucrose_chain) * f26_relief;
        let product_limited =
            (starch_capacity + sucrose_capacity).min(scenario.export.uptake_ceiling());

        // 4. Photorespiratory recycling: the pathway has to process Φ
        //    oxygenations per carboxylation; if it cannot, carboxylation backs up.
        let photorespiration_chain = [
            (EnzymeKind::Pgcapase, 1.0),
            (EnzymeKind::GoaOxidase, 1.0),
            (EnzymeKind::Ggat, 1.0),
            (EnzymeKind::Gdc, 0.5),
            (EnzymeKind::Gsat, 0.5),
            (EnzymeKind::HprReductase, 0.5),
            (EnzymeKind::GceaKinase, 0.5),
        ];
        let photorespiratory_capacity = self.chain_capacity(partition, &photorespiration_chain);
        let photorespiration_limited = if phi > 1e-9 {
            photorespiratory_capacity / phi * net_factor
        } else {
            f64::INFINITY
        };

        // 5. Electron-transport ceiling (independent of the enzyme partition).
        let electron_limited = self.electron_transport_ceiling;

        let candidates = [
            rubisco_limited,
            regeneration_limited,
            product_limited,
            photorespiration_limited.min(1e6),
            electron_limited,
        ];
        let co2_uptake = self.soft_min(&candidates);

        let limiting_index = candidates
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("rates are finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let limiting_factor = match limiting_index {
            0 => LimitingFactor::Carboxylation,
            1 => LimitingFactor::Regeneration,
            2 => LimitingFactor::ProductSynthesis,
            3 => LimitingFactor::Photorespiration,
            _ => LimitingFactor::ElectronTransport,
        };

        UptakeResult {
            co2_uptake,
            nitrogen: partition.total_nitrogen(),
            oxygenation_ratio: phi,
            limiting_factor,
            candidate_rates: candidates,
        }
    }

    /// Convenience: evaluates only the uptake value.
    pub fn co2_uptake(&self, partition: &EnzymePartition, scenario: &Scenario) -> f64 {
        self.evaluate(partition, scenario).co2_uptake
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CarbonDioxideEra, TriosePhosphateExport};
    use proptest::prelude::*;

    fn model() -> UptakeModel {
        UptakeModel::new()
    }

    #[test]
    fn natural_leaf_uptake_is_near_the_papers_operating_point() {
        let result = model().evaluate(&EnzymePartition::natural(), &Scenario::present_low_export());
        // Paper: 15.486 µmol m⁻² s⁻¹ (±10% band shown in Figure 1).
        assert!(
            result.co2_uptake > 13.0 && result.co2_uptake < 18.0,
            "natural uptake {} outside the paper's operating band",
            result.co2_uptake
        );
        assert!((result.nitrogen - EnzymePartition::NATURAL_NITROGEN).abs() < 1.0);
    }

    #[test]
    fn uptake_increases_with_atmospheric_co2() {
        let natural = EnzymePartition::natural();
        let m = model();
        let past = m.co2_uptake(
            &natural,
            &Scenario::new(CarbonDioxideEra::Past, TriosePhosphateExport::Low),
        );
        let present = m.co2_uptake(
            &natural,
            &Scenario::new(CarbonDioxideEra::Present, TriosePhosphateExport::Low),
        );
        let future = m.co2_uptake(
            &natural,
            &Scenario::new(CarbonDioxideEra::Future, TriosePhosphateExport::Low),
        );
        assert!(past < present && present < future);
    }

    #[test]
    fn oxygenation_ratio_decreases_with_co2() {
        let m = model();
        assert!(m.oxygenation_ratio(165.0) > m.oxygenation_ratio(270.0));
        assert!(m.oxygenation_ratio(270.0) > m.oxygenation_ratio(490.0));
        assert!((m.oxygenation_ratio(270.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn more_rubisco_raises_uptake_until_another_limit_binds() {
        let m = model();
        let scenario = Scenario::present_high_export();
        let natural = EnzymePartition::natural();
        let more = natural.with_scaled(EnzymeKind::Rubisco, 2.0);
        let much_more = natural.with_scaled(EnzymeKind::Rubisco, 6.0);
        let a0 = m.co2_uptake(&natural, &scenario);
        let a1 = m.co2_uptake(&more, &scenario);
        let a2 = m.co2_uptake(&much_more, &scenario);
        assert!(a1 > a0);
        // Saturation: the second doubling buys less than the first.
        assert!(a2 - a1 < a1 - a0);
    }

    #[test]
    fn uptake_never_exceeds_the_electron_transport_ceiling() {
        let m = model();
        let generous = EnzymePartition::natural().scaled(8.0);
        for scenario in Scenario::all() {
            let uptake = m.co2_uptake(&generous, &scenario);
            assert!(uptake <= m.electron_transport_ceiling + 1e-9);
        }
    }

    #[test]
    fn an_oversized_partition_approaches_the_papers_maximum_uptake() {
        let m = model();
        let generous = EnzymePartition::natural().scaled(8.0);
        let uptake = m.co2_uptake(&generous, &Scenario::present_high_export());
        // Paper's maximum-uptake Pareto point: 39.97; robust maximum 36.38.
        assert!(uptake > 33.0, "generous partition only reaches {uptake}");
    }

    #[test]
    fn low_export_caps_uptake_below_high_export() {
        let m = model();
        let generous = EnzymePartition::natural().scaled(8.0);
        let low = m.co2_uptake(
            &generous,
            &Scenario::new(CarbonDioxideEra::Present, TriosePhosphateExport::Low),
        );
        let high = m.co2_uptake(
            &generous,
            &Scenario::new(CarbonDioxideEra::Present, TriosePhosphateExport::High),
        );
        assert!(low < high);
    }

    #[test]
    fn starving_the_photorespiratory_pathway_hurts_at_low_co2() {
        let m = model();
        let scenario = Scenario::new(CarbonDioxideEra::Past, TriosePhosphateExport::Low);
        let natural = EnzymePartition::natural();
        let mut starved = natural.clone();
        for kind in EnzymeKind::ALL {
            if kind.is_photorespiratory() {
                starved = starved.with_scaled(kind, 0.02);
            }
        }
        let healthy = m.co2_uptake(&natural, &scenario);
        let impaired = m.co2_uptake(&starved, &scenario);
        assert!(impaired < 0.8 * healthy);
    }

    #[test]
    fn zeroing_sucrose_and_starch_blocks_product_export() {
        let m = model();
        let scenario = Scenario::present_low_export();
        let natural = EnzymePartition::natural();
        let mut blocked = natural.with_scaled(EnzymeKind::Adpgpp, 0.01);
        for kind in EnzymeKind::ALL {
            if kind.is_sucrose_branch() {
                blocked = blocked.with_scaled(kind, 0.01);
            }
        }
        let result = m.evaluate(&blocked, &scenario);
        assert!(result.co2_uptake < 3.0);
        assert_eq!(result.limiting_factor, LimitingFactor::ProductSynthesis);
    }

    #[test]
    fn candidate_rates_are_reported_and_ordered_with_limiting_factor() {
        let m = model();
        let result = m.evaluate(&EnzymePartition::natural(), &Scenario::present_low_export());
        let min = result
            .candidate_rates
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(result.co2_uptake <= min + 1.0);
        assert!(result.candidate_rates.iter().all(|r| *r > 0.0));
    }

    #[test]
    fn limiting_factor_display_is_human_readable() {
        assert_eq!(
            format!("{}", LimitingFactor::Regeneration),
            "RuBP regeneration"
        );
    }

    proptest! {
        #[test]
        fn prop_uptake_is_monotone_in_any_single_enzyme(
            index in 0usize..crate::enzymes::ENZYME_COUNT,
            factor in 1.0f64..4.0,
        ) {
            let m = model();
            let scenario = Scenario::present_low_export();
            let natural = EnzymePartition::natural();
            let kind = EnzymeKind::from_index(index);
            let increased = natural.with_scaled(kind, factor);
            let base = m.co2_uptake(&natural, &scenario);
            let more = m.co2_uptake(&increased, &scenario);
            // Adding enzyme never hurts (weak monotonicity).
            prop_assert!(more >= base - 1e-9);
        }

        #[test]
        fn prop_uptake_is_positive_and_bounded(
            scale in 0.05f64..8.0,
        ) {
            let m = model();
            let partition = EnzymePartition::natural().scaled(scale);
            for scenario in Scenario::all() {
                let uptake = m.co2_uptake(&partition, &scenario);
                prop_assert!(uptake > 0.0);
                prop_assert!(uptake <= m.electron_transport_ceiling + 1e-9);
            }
        }
    }
}
