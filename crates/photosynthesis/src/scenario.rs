use std::fmt;

/// Atmospheric / stromal CO₂ concentration eras studied by the paper.
///
/// The paper inspects the problem at three Ci values: 165 µmol/mol (the
/// atmosphere of 25 million years ago), 270 µmol/mol (the present-day
/// operating point) and 490 µmol/mol (the level predicted for the end of the
/// century).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CarbonDioxideEra {
    /// 25 M years ago: Ci = 165 µmol/mol.
    Past,
    /// Present day: Ci = 270 µmol/mol.
    Present,
    /// Predicted for 2100 AD: Ci = 490 µmol/mol.
    Future,
}

impl CarbonDioxideEra {
    /// All eras in chronological order.
    pub const ALL: [CarbonDioxideEra; 3] = [
        CarbonDioxideEra::Past,
        CarbonDioxideEra::Present,
        CarbonDioxideEra::Future,
    ];

    /// Intercellular CO₂ concentration in µmol/mol.
    pub fn ci(self) -> f64 {
        match self {
            CarbonDioxideEra::Past => 165.0,
            CarbonDioxideEra::Present => 270.0,
            CarbonDioxideEra::Future => 490.0,
        }
    }

    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            CarbonDioxideEra::Past => "Past, 25M years ago",
            CarbonDioxideEra::Present => "Present",
            CarbonDioxideEra::Future => "Future, 2100 A.C.",
        }
    }
}

impl fmt::Display for CarbonDioxideEra {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (Ci = {} µmol/mol)", self.label(), self.ci())
    }
}

/// Maximum triose-phosphate (PGA, GAP, DHAP) export rate from the stroma.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriosePhosphateExport {
    /// Low export capacity: 1 mmol l⁻¹ s⁻¹ (the paper's solid lines).
    Low,
    /// High export capacity: 3 mmol l⁻¹ s⁻¹ (the paper's dashed lines).
    High,
}

impl TriosePhosphateExport {
    /// Both export regimes.
    pub const ALL: [TriosePhosphateExport; 2] =
        [TriosePhosphateExport::Low, TriosePhosphateExport::High];

    /// Export limit in mmol l⁻¹ s⁻¹.
    pub fn rate(self) -> f64 {
        match self {
            TriosePhosphateExport::Low => 1.0,
            TriosePhosphateExport::High => 3.0,
        }
    }

    /// The corresponding ceiling on net CO₂ uptake in µmol m⁻² s⁻¹ used by the
    /// surrogate model (each exported triose phosphate carries three fixed
    /// carbons; the conversion from volumetric to leaf-area units is part of
    /// the calibration described in `DESIGN.md`).
    pub fn uptake_ceiling(self) -> f64 {
        match self {
            TriosePhosphateExport::Low => 28.0,
            TriosePhosphateExport::High => 55.0,
        }
    }
}

impl fmt::Display for TriosePhosphateExport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "triose-P export {} mmol/l/s", self.rate())
    }
}

/// A complete environmental scenario: CO₂ era plus triose-phosphate export
/// regime. The paper's Figure 1 shows Pareto fronts for all six combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Atmospheric CO₂ era.
    pub era: CarbonDioxideEra,
    /// Triose-phosphate export regime.
    pub export: TriosePhosphateExport,
}

impl Scenario {
    /// Creates a scenario.
    pub fn new(era: CarbonDioxideEra, export: TriosePhosphateExport) -> Self {
        Scenario { era, export }
    }

    /// The paper's reference condition: present-day CO₂ with low export.
    pub fn present_low_export() -> Self {
        Scenario::new(CarbonDioxideEra::Present, TriosePhosphateExport::Low)
    }

    /// The condition used for the paper's Table 1 comparison: present-day CO₂
    /// with the high (3 mmol l⁻¹ s⁻¹) export rate.
    pub fn present_high_export() -> Self {
        Scenario::new(CarbonDioxideEra::Present, TriosePhosphateExport::High)
    }

    /// All six scenarios of Figure 1, eras outermost.
    pub fn all() -> Vec<Scenario> {
        let mut scenarios = Vec::with_capacity(6);
        for era in CarbonDioxideEra::ALL {
            for export in TriosePhosphateExport::ALL {
                scenarios.push(Scenario::new(era, export));
            }
        }
        scenarios
    }

    /// Intercellular CO₂ in µmol/mol.
    pub fn ci(&self) -> f64 {
        self.era.ci()
    }

    /// Ambient O₂ in mmol/mol (constant 210 across scenarios).
    pub fn o2(&self) -> f64 {
        210.0
    }

    /// Natural-leaf CO₂ uptake reported by the paper for the present-day,
    /// low-export operating point (µmol m⁻² s⁻¹).
    pub const NATURAL_UPTAKE: f64 = 15.486;
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}, {}", self.era, self.export)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn era_ci_values_match_the_paper() {
        assert_eq!(CarbonDioxideEra::Past.ci(), 165.0);
        assert_eq!(CarbonDioxideEra::Present.ci(), 270.0);
        assert_eq!(CarbonDioxideEra::Future.ci(), 490.0);
    }

    #[test]
    fn export_rates_match_the_paper() {
        assert_eq!(TriosePhosphateExport::Low.rate(), 1.0);
        assert_eq!(TriosePhosphateExport::High.rate(), 3.0);
        assert!(
            TriosePhosphateExport::Low.uptake_ceiling()
                < TriosePhosphateExport::High.uptake_ceiling()
        );
    }

    #[test]
    fn there_are_six_scenarios() {
        let all = Scenario::all();
        assert_eq!(all.len(), 6);
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn reference_scenarios() {
        let reference = Scenario::present_low_export();
        assert_eq!(reference.ci(), 270.0);
        assert_eq!(reference.export.rate(), 1.0);
        let table1 = Scenario::present_high_export();
        assert_eq!(table1.export.rate(), 3.0);
        assert_eq!(reference.o2(), 210.0);
    }

    #[test]
    fn display_mentions_ci_and_export() {
        let s = format!("{}", Scenario::present_low_export());
        assert!(s.contains("270"));
        assert!(s.contains('1'));
    }
}
