//! `pathway` — the command-line front-end for declarative run specs.
//!
//! Runs are *data* here: a [`RunSpec`] text file fully describes problem,
//! optimizer, seed, stopping rules and checkpoint cadence, so anything the
//! engine can do is launchable without recompiling:
//!
//! ```text
//! pathway run examples/quickstart.spec          # execute a spec end-to-end
//! pathway resume checkpoints/gen-50.ckpt        # continue a run, bit-identically
//! pathway sweep examples/benchmarks.sweep       # expand a grid, run every cell
//! pathway ledger-check BENCH_sweep.json         # validate a sweep ledger
//! pathway profile-check BENCH_profile.json      # validate a telemetry profile
//! pathway profile-diff old.json new.json        # per-phase perf deltas + gate
//! pathway inspect examples/quickstart.spec      # validate + show canonical form
//! pathway inspect checkpoints/gen-50.ckpt       # show checkpoint header + spec
//! pathway list-problems                         # the problem registry
//! pathway serve studies/                        # multi-tenant study daemon
//! pathway submit spec.spec --data-dir studies/  # schedule a job on the daemon
//! ```
//!
//! The `serve` family (`serve`, `submit`, `status`, `metrics`, `watch`,
//! `cancel`, `fetch-front`, `shutdown`) fronts the [`pathway_serve`] daemon: many
//! concurrent studies on one shared evaluation pool, durable under
//! `kill -9`, with per-generation telemetry streamed to any number of
//! watchers. Client commands find the daemon via `--addr <host:port>` or
//! `--data-dir <dir>` (which reads the address the daemon recorded in
//! `<dir>/endpoint`).
//!
//! `run` streams per-generation telemetry through a
//! [`ChannelObserver`] (the driver steps on a worker thread; this process's
//! main thread renders progress), writes durable checkpoints every
//! `checkpoint_every` generations plus one at the end, and `resume`
//! continues any of them to a final front that is bit-identical to the
//! uninterrupted run — rejecting, by spec content hash, checkpoints that
//! belong to a different spec. `sweep` scales the same guarantees to a
//! whole grid of runs sharing one persistent evaluation pool, with an
//! append-only results ledger that lets a killed sweep resume only its
//! incomplete cells.
//!
//! Arguments arrive as [`OsString`]s and stay that way until their meaning
//! is known: path-valued flags convert to [`PathBuf`] losslessly (non-UTF-8
//! file names work), numeric flags demand valid UTF-8 digits and fail
//! loudly instead of parsing a lossily converted string.

use std::ffi::OsString;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pathway_core::obs::{
    check_phase_balance, check_profile_regression, diff_profiles, validate_profile_json,
    write_profile_file, ProfileCheck, ProfileData,
};
use pathway_core::sweep::{
    run_sweep_with_metrics, validate_bench_json, write_front_file, SweepEvent, SweepReport,
};
use pathway_core::{
    resume_spec_driver_with_executor, spec_driver_with_executor, validate_spec_against_problem,
    AnyProblem, PROBLEM_CATALOG,
};
use pathway_moo::engine::telemetry::duration_us;
use pathway_moo::engine::{
    is_sweep_text, AnyOptimizer, ChannelObserver, CheckpointStore, Driver, GenerationReport,
    MetricsRegistry, RunSpec, StoredCheckpoint, SweepSpec,
};
use pathway_moo::exec::Executor;
use pathway_moo::{EvalBackend, Individual};
use pathway_serve::{read_endpoint, Client, JobSummary, ServeConfig, Server, WatchEvent};

const USAGE: &str = "\
pathway — declarative driver for robust-pathway-design runs

USAGE:
    pathway run <spec-file> [OPTIONS]       execute a run spec end-to-end
    pathway resume <checkpoint> [OPTIONS]   continue a checkpointed run
    pathway sweep <sweep-file> [OPTIONS]    expand a grid spec, run every cell,
                                            record results in a durable ledger
    pathway ledger-check <BENCH_sweep.json> validate a sweep ledger's schema
    pathway profile-check <profile.json>    validate a telemetry profile's
                                            schema and phase-timing balance
    pathway profile-diff <old.json> <new.json> [--threshold <ratio>]
                                            per-phase cost deltas between two
                                            profiles (normalized per
                                            evaluation); exits non-zero when a
                                            gated phase regresses past the
                                            threshold (default 4.0)
    pathway inspect <file>                  describe a spec, sweep or checkpoint
    pathway list-problems                   show the problem registry

    pathway serve <data-dir> [OPTIONS]      run the study daemon: concurrent
                                            jobs on one shared pool, durable
                                            under kill -9
    pathway submit <spec-file> [TARGET]     schedule a run or sweep on a daemon
    pathway status [TARGET]                 daemon jobs + executor health
    pathway metrics [TARGET]                live daemon telemetry snapshot as a
                                            pathway-profile document
                                            (--out <file> writes it)
    pathway watch <job> [TARGET]            stream a job's telemetry
    pathway cancel <job> [TARGET]           cancel a job
    pathway fetch-front <job> [TARGET]      fetch a job's front (--out <file>)
    pathway shutdown [TARGET]               checkpoint all jobs, stop the daemon

OPTIONS (run / resume):
    --checkpoint-dir <dir>   where checkpoints are written
                             (default: '<spec>.checkpoints' next to the spec,
                              or the checkpoint's own directory on resume)
    --stop-after <n>         stop (with a final checkpoint) once <n> total
                             generations are done — simulates interruption
    --threads <n>            evaluate on one persistent pool of <n> worker
                             threads for the whole invocation, overriding the
                             spec's backend (0 or 1 = serial); results are
                             bit-identical either way, only wall-clock changes
    --front-out <file>       write the final front, bit-exactly, to <file>
    --profile-out <file>     write a pathway-profile telemetry document
                             (phase timings, oracle + executor counters) when
                             the run finishes; telemetry is off otherwise and
                             never changes results either way
    --spec <file>            (resume) verify the checkpoint against this spec
    --quiet                  no per-generation progress output

OPTIONS (sweep):
    --out-dir <dir>          sweep output root — holds ledger.md,
                             BENCH_sweep.json, per-cell checkpoints and fronts
                             (default: '<sweep>.results' next to the sweep)
    --stop-after <n>         stop once <n> generations have run across the
                             grid in this invocation; re-running the same
                             sweep resumes only its incomplete cells
    --profile-out <file>     as above, aggregated across every cell
    --threads <n> / --quiet  as above

OPTIONS (serve):
    --listen <addr>          bind address (default 127.0.0.1:7757; port 0
                             picks a free port); the bound address is
                             recorded in <data-dir>/endpoint
    --threads <n>            shared evaluation pool width for all jobs
                             (0 or 1 = serial; default serial)
    --quiet                  no startup line

TARGET (daemon client commands):
    --addr <host:port>       daemon address, explicitly
    --data-dir <dir>         read the address from <dir>/endpoint
                             (exactly one of the two is required)
    --out <file>             (fetch-front) write the front to <file>
                             bit-exactly instead of stdout

SPEC KEYS ([run] section) controlling checkpoint retention:
    checkpoint_keep_last = <k>    keep only the newest <k> checkpoints
    checkpoint_keep_every = <m>   additionally keep every generation
                                  divisible by <m>
                             (default: unset — every checkpoint is kept)
";

fn main() -> ExitCode {
    // args_os, not args: the latter panics outright on non-UTF-8 argv
    // entries, which are legal on every Unix.
    let args: Vec<OsString> = std::env::args_os().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Failed(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

enum CliError {
    /// Bad invocation: print usage, exit 2.
    Usage(String),
    /// The command itself failed: print the message, exit 1.
    Failed(String),
}

impl CliError {
    fn failed(message: impl std::fmt::Display) -> Self {
        CliError::Failed(message.to_string())
    }
}

fn dispatch(args: &[OsString]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("no command given".to_string()));
    };
    match command.to_str() {
        Some("run") => command_run(&args[1..]),
        Some("resume") => command_resume(&args[1..]),
        Some("sweep") => command_sweep(&args[1..]),
        Some("ledger-check") => command_ledger_check(&args[1..]),
        Some("profile-check") => command_profile_check(&args[1..]),
        Some("profile-diff") => command_profile_diff(&args[1..]),
        Some("inspect") => command_inspect(&args[1..]),
        Some("list-problems") => command_list_problems(&args[1..]),
        Some("serve") => command_serve(&args[1..]),
        Some("submit") => command_submit(&args[1..]),
        Some("status") => command_status(&args[1..]),
        Some("metrics") => command_metrics(&args[1..]),
        Some("watch") => command_watch(&args[1..]),
        Some("cancel") => command_cancel(&args[1..]),
        Some("fetch-front") => command_fetch_front(&args[1..]),
        Some("shutdown") => command_shutdown(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            Ok(())
        }
        _ => Err(CliError::Usage(format!(
            "unknown command '{}'",
            command.to_string_lossy()
        ))),
    }
}

/// Parsed `run` / `resume` / `sweep` options.
struct Options {
    target: PathBuf,
    checkpoint_dir: Option<PathBuf>,
    out_dir: Option<PathBuf>,
    spec_override: Option<PathBuf>,
    stop_after: Option<usize>,
    threads: Option<usize>,
    front_out: Option<PathBuf>,
    profile_out: Option<PathBuf>,
    quiet: bool,
}

impl Options {
    /// The one executor this whole invocation evaluates on: `--threads`
    /// when given, otherwise whatever backend the spec's optimizer carries.
    /// Built exactly once per process, so every generation of a run — and
    /// of a resume, and of every cell of a sweep — reuses the same worker
    /// pool.
    fn executor(&self, spec: &RunSpec) -> Arc<Executor> {
        let backend = match self.threads {
            Some(threads) => EvalBackend::Threads(threads),
            None => spec.optimizer.backend(),
        };
        Executor::shared(backend)
    }

    /// The telemetry sink for `--profile-out`, or `None`: metrics are
    /// collected only when a profile was asked for, so the default
    /// invocation pays nothing.
    fn profile_sink(&self) -> Option<ProfileSink> {
        self.profile_out.as_ref().map(|path| ProfileSink {
            registry: MetricsRegistry::new(),
            path: path.clone(),
            started: Instant::now(),
        })
    }
}

/// Everything `--profile-out` needs: the registry the whole invocation
/// records into, the destination path, and the invocation's start time
/// (profiles report wall-clock, which is telemetry — it never enters
/// checkpoints or results).
struct ProfileSink {
    registry: MetricsRegistry,
    path: PathBuf,
    started: Instant,
}

impl ProfileSink {
    /// Snapshots the registry and writes the profile document atomically.
    fn write(
        &self,
        source: &str,
        label: &str,
        generations: u64,
        evaluations: u64,
    ) -> Result<(), String> {
        let snapshot = self.registry.snapshot();
        let data = ProfileData {
            source,
            label,
            generations,
            evaluations,
            wall_ms: duration_us(self.started.elapsed()) / 1000,
            snapshot: &snapshot,
        };
        write_profile_file(&self.path, &data)
            .map_err(|err| format!("profile write failed: {}: {err}", self.path.display()))?;
        println!("profile: {}", self.path.display());
        Ok(())
    }
}

/// A path-valued flag: the next raw argument, converted losslessly — a
/// checkpoint dir with non-UTF-8 bytes in its name stays intact.
fn path_value(iter: &mut std::slice::Iter<'_, OsString>, flag: &str) -> Result<PathBuf, CliError> {
    iter.next()
        .map(PathBuf::from)
        .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
}

/// A numeric flag: parsed from the raw argument, which must be valid UTF-8
/// digits. Anything else — including non-UTF-8 bytes that a lossy
/// conversion would silently replace with U+FFFD — is an explicit usage
/// error naming the flag and the offending value.
fn numeric_value(iter: &mut std::slice::Iter<'_, OsString>, flag: &str) -> Result<usize, CliError> {
    let raw = iter
        .next()
        .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
    let text = raw.to_str().ok_or_else(|| {
        CliError::Usage(format!(
            "{flag} needs a number, got non-UTF-8 value '{}'",
            raw.to_string_lossy()
        ))
    })?;
    text.parse()
        .map_err(|_| CliError::Usage(format!("{flag} needs a number, got '{text}'")))
}

fn parse_options(args: &[OsString], what: &str) -> Result<Options, CliError> {
    let mut target: Option<PathBuf> = None;
    let mut options = Options {
        target: PathBuf::new(),
        checkpoint_dir: None,
        out_dir: None,
        spec_override: None,
        stop_after: None,
        threads: None,
        front_out: None,
        profile_out: None,
        quiet: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.to_str() {
            Some("--checkpoint-dir") => {
                options.checkpoint_dir = Some(path_value(&mut iter, "--checkpoint-dir")?);
            }
            Some("--out-dir") => options.out_dir = Some(path_value(&mut iter, "--out-dir")?),
            Some("--spec") => options.spec_override = Some(path_value(&mut iter, "--spec")?),
            Some("--front-out") => options.front_out = Some(path_value(&mut iter, "--front-out")?),
            Some("--profile-out") => {
                options.profile_out = Some(path_value(&mut iter, "--profile-out")?);
            }
            Some("--stop-after") => {
                options.stop_after = Some(numeric_value(&mut iter, "--stop-after")?);
            }
            Some("--threads") => options.threads = Some(numeric_value(&mut iter, "--threads")?),
            Some("--quiet") => options.quiet = true,
            Some(other) if other.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown option '{other}'")));
            }
            // Positional arguments (including non-UTF-8 file names) become
            // the target path, losslessly.
            _ => {
                if target.replace(PathBuf::from(arg)).is_some() {
                    return Err(CliError::Usage(format!(
                        "more than one {what} given ('{}')",
                        arg.to_string_lossy()
                    )));
                }
            }
        }
    }
    options.target = target.ok_or_else(|| CliError::Usage(format!("missing {what}")))?;
    Ok(options)
}

fn read_spec_file(path: &Path) -> Result<RunSpec, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|err| CliError::failed(format!("cannot read {}: {err}", path.display())))?;
    RunSpec::from_text(&text).map_err(|err| CliError::failed(format!("{}: {err}", path.display())))
}

fn command_run(args: &[OsString]) -> Result<(), CliError> {
    let options = parse_options(args, "spec file")?;
    let spec = read_spec_file(&options.target)?;
    let problem = AnyProblem::from_spec(&spec.problem).map_err(CliError::failed)?;
    validate_spec_against_problem(&spec, &problem).map_err(CliError::failed)?;
    let checkpoint_dir = options.checkpoint_dir.clone().unwrap_or_else(|| {
        let mut dir = options.target.clone();
        dir.set_extension("checkpoints");
        dir
    });
    let store = CheckpointStore::create(&checkpoint_dir, &spec).map_err(CliError::failed)?;
    let executor = options.executor(&spec);
    println!(
        "run: {} on '{}' (seed {}, spec hash {:#018x}, {})",
        spec.optimizer.kind(),
        spec.problem.name,
        spec.seed,
        spec.content_hash(),
        describe_executor(&executor)
    );

    // The CLI renders progress itself (through the channel observer), so
    // the driver is built from a spec with the [observe] log sink stripped —
    // observers are telemetry-only and do not affect the trajectory or the
    // checkpoint hash, which is always taken from the original spec.
    let mut exec_spec = spec.clone();
    exec_spec.log_every = None;
    let profile = options.profile_sink();
    if let Some(sink) = &profile {
        executor.set_metrics(sink.registry.clone());
    }
    let mut driver = spec_driver_with_executor(&exec_spec, &problem, Arc::clone(&executor));
    if let Some(sink) = &profile {
        driver = driver.with_metrics(sink.registry.clone());
    }
    execute(
        driver, &spec, &store, &options, &problem, &executor, profile,
    )
}

fn describe_executor(executor: &Executor) -> String {
    if executor.is_pooled() {
        format!("{}-way persistent evaluation pool", executor.workers())
    } else {
        "serial evaluation".to_string()
    }
}

fn command_resume(args: &[OsString]) -> Result<(), CliError> {
    let options = parse_options(args, "checkpoint file")?;
    let stored = CheckpointStore::load(&options.target)
        .map_err(|err| CliError::failed(format!("{}: {err}", options.target.display())))?;
    // The embedded canonical spec makes the checkpoint self-describing; an
    // explicit --spec must hash-match it or the resume is refused.
    let spec = RunSpec::from_text(&stored.spec_text).map_err(|err| {
        CliError::failed(format!(
            "{}: embedded spec does not parse ({err})",
            options.target.display()
        ))
    })?;
    if let Some(override_path) = &options.spec_override {
        let override_spec = read_spec_file(override_path)?;
        stored
            .ensure_matches(&override_spec)
            .map_err(|err| CliError::failed(format!("{}: {err}", override_path.display())))?;
    }
    let problem = AnyProblem::from_spec(&spec.problem).map_err(CliError::failed)?;
    validate_spec_against_problem(&spec, &problem).map_err(CliError::failed)?;
    let checkpoint_dir = options
        .checkpoint_dir
        .clone()
        .or_else(|| options.target.parent().map(Path::to_path_buf))
        .unwrap_or_else(|| PathBuf::from("."));
    let store = CheckpointStore::create(&checkpoint_dir, &spec).map_err(CliError::failed)?;
    let executor = options.executor(&spec);
    println!(
        "resume: {} on '{}' from generation {} ({} evaluations so far, {})",
        spec.optimizer.kind(),
        spec.problem.name,
        stored.generation(),
        stored.evaluations(),
        describe_executor(&executor)
    );

    let mut exec_spec = spec.clone();
    exec_spec.log_every = None;
    let profile = options.profile_sink();
    if let Some(sink) = &profile {
        executor.set_metrics(sink.registry.clone());
    }
    let mut driver = resume_spec_driver_with_executor(
        &exec_spec,
        &problem,
        stored.checkpoint,
        Arc::clone(&executor),
    )
    .map_err(|err| CliError::failed(format!("cannot resume: {err}")))?;
    if let Some(sink) = &profile {
        driver = driver.with_metrics(sink.registry.clone());
    }
    execute(
        driver, &spec, &store, &options, &problem, &executor, profile,
    )
}

/// What a finished (or `--stop-after`-interrupted) generation loop leaves
/// behind. Plain data — the driver itself is dropped inside the worker so
/// its channel observer hangs up and the progress consumer terminates.
struct RunResult {
    checkpoint: pathway_moo::engine::RunCheckpoint,
    front: Vec<Individual>,
    generation: usize,
    evaluations: usize,
    checkpoint_error: Option<pathway_moo::engine::CheckpointError>,
}

/// Drives a run to completion (or to `--stop-after`), streaming telemetry
/// and writing periodic + final checkpoints.
fn execute(
    driver: Driver<&AnyProblem, AnyOptimizer>,
    spec: &RunSpec,
    store: &CheckpointStore,
    options: &Options,
    problem: &AnyProblem,
    executor: &Executor,
    profile: Option<ProfileSink>,
) -> Result<(), CliError> {
    let progress_every = spec
        .log_every
        .unwrap_or(spec.stopping.max_generations / 20)
        .max(1);
    let metrics = profile.as_ref().map(|sink| &sink.registry);

    let result = if options.quiet {
        drive(driver, spec, store, options.stop_after, metrics)
    } else {
        // The driver steps on a worker thread; the main thread renders the
        // generation reports streaming out of the channel observer.
        let (observer, reports) = ChannelObserver::channel();
        let driver = driver.with_observer(observer);
        std::thread::scope(|scope| {
            let worker = scope.spawn(|| drive(driver, spec, store, options.stop_after, metrics));
            // Ends when the worker finishes: `drive` drops the driver (and
            // with it the observer), which closes the channel.
            for report in reports {
                if report.generation == 1 || report.generation.is_multiple_of(progress_every) {
                    print_progress(&report, spec.stopping.max_generations);
                }
            }
            worker.join().expect("run worker thread must not panic")
        })
    };
    // The completed run's state lives only in memory now. Attempt every
    // output — final checkpoint AND front file — before reporting any write
    // failure, so one broken destination never discards what the other
    // could still persist.
    let final_saved = {
        let _span = metrics.map(|m| m.phase("checkpoint_write"));
        store.save(&result.checkpoint)
    };
    println!(
        "done: {} generations, {} evaluations, {} non-dominated solutions",
        result.generation,
        result.evaluations,
        result.front.len()
    );
    let stats = executor.stats();
    println!(
        "executor: {} worker lane{}, {} queued chunk{}, {} active",
        stats.workers,
        if stats.workers == 1 { "" } else { "s" },
        stats.queued_chunks,
        if stats.queued_chunks == 1 { "" } else { "s" },
        stats.active_workers
    );
    if let Ok(final_path) = &final_saved {
        println!("checkpoint: {}", final_path.display());
        if let Some(stop_after) = options.stop_after {
            if result.generation >= stop_after {
                println!("stopped early by --stop-after {stop_after}; resume with:");
                println!("    pathway resume {}", final_path.display());
            }
        }
    }
    let mut front_error = None;
    if let Some(front_out) = &options.front_out {
        match write_front_file(front_out, &result.front) {
            Ok(()) => println!(
                "front: {} ({} solutions)",
                front_out.display(),
                result.front.len()
            ),
            Err(err) => front_error = Some(format!("{}: {err}", front_out.display())),
        }
    }
    print_front_summary(&result.front);
    let mut profile_error = None;
    if let Some(sink) = &profile {
        // Oracle counters accumulate on the problem; dump them into the
        // registry once, now that evaluation is over.
        problem.record_oracle_metrics(&sink.registry);
        if let Err(message) = sink.write(
            "run",
            &options.target.display().to_string(),
            result.generation as u64,
            result.evaluations as u64,
        ) {
            profile_error = Some(message);
        }
    }
    if let Err(err) = final_saved {
        return Err(CliError::failed(format!(
            "final checkpoint write failed: {err}"
        )));
    }
    if let Some(message) = front_error {
        return Err(CliError::failed(message));
    }
    if let Some(message) = profile_error {
        return Err(CliError::failed(message));
    }
    if let Some(err) = result.checkpoint_error {
        return Err(CliError::failed(format!(
            "a periodic checkpoint write failed mid-run (the final checkpoint above was \
             written successfully): {err}"
        )));
    }
    Ok(())
}

/// The generation loop: advances in checkpoint-sized chunks until the
/// stopping rule (or `--stop-after`) fires, writing a checkpoint at every
/// `checkpoint_every` boundary.
///
/// Chunks run through [`Driver::run_for`], so a `--quiet` run with no
/// hypervolume-reading stopping rule skips per-generation telemetry
/// entirely; with the channel observer attached (the default), every
/// generation still produces a streamed report. A checkpoint-write failure
/// is warned about immediately and retried at the next boundary — one disk
/// hiccup must neither kill the run nor disable the durability it exists
/// to provide; the first error is carried in the result for the exit code.
fn drive(
    mut driver: Driver<&AnyProblem, AnyOptimizer>,
    spec: &RunSpec,
    store: &CheckpointStore,
    stop_after: Option<usize>,
    metrics: Option<&MetricsRegistry>,
) -> RunResult {
    let mut checkpoint_error = None;
    loop {
        let mut budget = usize::MAX;
        if spec.checkpoint_every > 0 {
            // Generations until the next checkpoint boundary.
            budget = spec.checkpoint_every - driver.generation() % spec.checkpoint_every;
        }
        if let Some(limit) = stop_after {
            if driver.generation() >= limit {
                break;
            }
            budget = budget.min(limit - driver.generation());
        }
        let ran = driver.run_for(budget);
        if ran == 0 {
            break; // the stopping rule fired before any generation ran
        }
        if spec.checkpoint_every > 0 && driver.generation().is_multiple_of(spec.checkpoint_every) {
            let _span = metrics.map(|m| m.phase("checkpoint_write"));
            if let Err(err) = store.save(&driver.checkpoint()) {
                eprintln!(
                    "warning: checkpoint write failed at generation {}: {err}",
                    driver.generation()
                );
                if checkpoint_error.is_none() {
                    checkpoint_error = Some(err);
                }
            }
        }
        if ran < budget {
            break; // the stopping rule fired mid-chunk
        }
    }
    RunResult {
        checkpoint: driver.checkpoint(),
        front: driver.front(),
        generation: driver.generation(),
        evaluations: driver.optimizer().evaluations(),
        checkpoint_error,
    }
}

fn print_progress(report: &GenerationReport, max_generations: usize) {
    println!(
        "[gen {:>6}/{max_generations}] evals {:>9}  front {:>4}  hv {:<13}  ({:.1?})",
        report.generation,
        report.evaluations,
        report.front_size,
        if report.hypervolume.is_nan() {
            "-".to_string()
        } else {
            format!("{:.6e}", report.hypervolume)
        },
        report.wall_clock
    );
}

fn print_front_summary(front: &[Individual]) {
    for individual in front.iter().take(5) {
        let objectives: Vec<String> = individual
            .objectives
            .iter()
            .map(|o| format!("{o:.6}"))
            .collect();
        println!("  f = [{}]", objectives.join(", "));
    }
    if front.len() > 5 {
        println!("  ... and {} more", front.len() - 5);
    }
}

/// Runs every incomplete cell of a grid sweep on one shared executor,
/// appending completed cells to the durable ledger under `--out-dir`.
fn command_sweep(args: &[OsString]) -> Result<(), CliError> {
    let options = parse_options(args, "sweep file")?;
    if options.checkpoint_dir.is_some()
        || options.spec_override.is_some()
        || options.front_out.is_some()
    {
        return Err(CliError::Usage(
            "sweep manages its own checkpoints and fronts under --out-dir; \
             --checkpoint-dir/--spec/--front-out do not apply"
                .to_string(),
        ));
    }
    let text = std::fs::read_to_string(&options.target).map_err(|err| {
        CliError::failed(format!("cannot read {}: {err}", options.target.display()))
    })?;
    let sweep = SweepSpec::from_text(&text)
        .map_err(|err| CliError::failed(format!("{}: {err}", options.target.display())))?;
    let out_dir = options.out_dir.clone().unwrap_or_else(|| {
        let mut dir = options.target.clone();
        dir.set_extension("results");
        dir
    });
    let executor = options.executor(&sweep.template);
    println!(
        "sweep: {} axes, {} cells (hash {:#018x}, {})",
        sweep.axes.len(),
        sweep.cell_count(),
        sweep.content_hash(),
        describe_executor(&executor)
    );
    for axis in &sweep.axes {
        println!("  axis {} = {}", axis.field, axis.values.join(" | "));
    }
    let quiet = options.quiet;
    let mut print_event = |event: SweepEvent<'_>| {
        if quiet {
            return;
        }
        match event {
            SweepEvent::CellSkipped { cell } => {
                println!("[{}] skip (already in the ledger)", cell.label());
            }
            SweepEvent::CellStarted { cell, resumed_from } => match resumed_from {
                Some(generation) => println!(
                    "[{}] resume from generation {generation} ({})",
                    cell.label(),
                    cell.coordinates_string()
                ),
                None => println!("[{}] run ({})", cell.label(), cell.coordinates_string()),
            },
            SweepEvent::CellCompleted { cell, row } => {
                println!(
                    "[{}] done: {} generations, {} evaluations, front {}, hv {}",
                    cell.label(),
                    row.generations,
                    row.evaluations,
                    row.front_size,
                    row.hypervolume
                        .map_or_else(|| "-".to_string(), |hv| format!("{hv:.6e}"))
                );
            }
            SweepEvent::SweepInterrupted { cell, generation } => {
                println!(
                    "[{}] interrupted at generation {generation} (checkpointed)",
                    cell.label()
                );
            }
        }
    };
    let profile = options.profile_sink();
    let report = run_sweep_with_metrics(
        &sweep,
        &out_dir,
        executor,
        options.stop_after,
        profile.as_ref().map(|sink| &sink.registry),
        &mut print_event,
    )
    .map_err(CliError::failed)?;
    print_sweep_report(&report, options.stop_after);
    if let Some(sink) = &profile {
        // A sweep has no single generation count; report what the registry
        // actually saw across every cell this invocation ran.
        let snapshot = sink.registry.snapshot();
        let generations = snapshot.counter("phase.generation.calls").unwrap_or(0);
        let evaluations = snapshot.counter("exec.candidates").unwrap_or(0);
        sink.write(
            "sweep",
            &options.target.display().to_string(),
            generations,
            evaluations,
        )
        .map_err(CliError::Failed)?;
    }
    Ok(())
}

fn print_sweep_report(report: &SweepReport, stop_after: Option<usize>) {
    println!(
        "sweep: {}/{} cells in the ledger ({} completed now, {} skipped)",
        report.rows_total, report.cells, report.completed, report.skipped
    );
    println!("ledger: {}", report.ledger_path.display());
    println!("        {}", report.json_path.display());
    if let Some(cell) = report.interrupted {
        let limit = stop_after.unwrap_or(0);
        println!("stopped early by --stop-after {limit} in cell {cell}; resume with:");
        println!("    pathway sweep <same sweep file and --out-dir>");
    }
}

/// Validates a `BENCH_sweep.json` against the ledger schema, listing every
/// problem found. CI runs this on freshly emitted and committed ledgers.
fn command_ledger_check(args: &[OsString]) -> Result<(), CliError> {
    let [path] = args else {
        return Err(CliError::Usage(
            "ledger-check takes exactly one BENCH_sweep.json argument".to_string(),
        ));
    };
    let path = Path::new(path);
    let text = std::fs::read_to_string(path)
        .map_err(|err| CliError::failed(format!("cannot read {}: {err}", path.display())))?;
    match validate_bench_json(&text) {
        Ok(check) => {
            println!(
                "{}: valid sweep ledger (sweep {}, {}/{} cells complete)",
                path.display(),
                check.sweep_hash,
                check.cells_complete,
                check.cells_total
            );
            Ok(())
        }
        Err(problems) => {
            for problem in &problems {
                eprintln!("{}: {problem}", path.display());
            }
            Err(CliError::failed(format!(
                "{} ledger schema violation(s)",
                problems.len()
            )))
        }
    }
}

/// Validates a telemetry profile (`--profile-out` output, a committed
/// `BENCH_profile.json`, or a saved `pathway metrics` snapshot) against the
/// `pathway-profile` schema, then checks that the per-phase timings are
/// plausible against the generation total. CI runs this on freshly emitted
/// and committed profiles.
fn command_profile_check(args: &[OsString]) -> Result<(), CliError> {
    let [path] = args else {
        return Err(CliError::Usage(
            "profile-check takes exactly one profile.json argument".to_string(),
        ));
    };
    let path = Path::new(path);
    let text = std::fs::read_to_string(path)
        .map_err(|err| CliError::failed(format!("cannot read {}: {err}", path.display())))?;
    let check = match validate_profile_json(&text) {
        Ok(check) => check,
        Err(problems) => {
            for problem in &problems {
                eprintln!("{}: {problem}", path.display());
            }
            return Err(CliError::failed(format!(
                "{} profile schema violation(s)",
                problems.len()
            )));
        }
    };
    check_phase_balance(&check)
        .map_err(|err| CliError::failed(format!("{}: {err}", path.display())))?;
    println!(
        "{}: valid {} profile for '{}' ({} generations, {} evaluations, \
         {} phases, {} ms wall clock)",
        path.display(),
        check.source,
        check.label,
        check.generations,
        check.evaluations,
        check.phases.len(),
        check.wall_ms
    );
    Ok(())
}

/// Default `--threshold` for `profile-diff`: generous enough to absorb a
/// baseline measured on different hardware, tight enough to catch a kernel
/// regressing by an order of magnitude.
const PROFILE_DIFF_DEFAULT_THRESHOLD: f64 = 4.0;

/// Compares two telemetry profiles phase by phase — per-evaluation costs
/// when both record evaluation counts, raw totals otherwise — and fails
/// (exit 1) when any gated phase's cost ratio exceeds the threshold. CI
/// runs this with a freshly regenerated profile against the committed
/// `BENCH_profile.json`, which is what turns the committed numbers into an
/// enforced performance contract instead of documentation.
fn command_profile_diff(args: &[OsString]) -> Result<(), CliError> {
    let mut paths: Vec<&OsString> = Vec::new();
    let mut threshold = PROFILE_DIFF_DEFAULT_THRESHOLD;
    let mut rest = args.iter();
    while let Some(arg) = rest.next() {
        if arg.to_str() == Some("--threshold") {
            let value = rest
                .next()
                .ok_or_else(|| CliError::Usage("--threshold needs a value".to_string()))?;
            threshold = value
                .to_str()
                .and_then(|text| text.parse::<f64>().ok())
                .filter(|t| t.is_finite() && *t > 0.0)
                .ok_or_else(|| {
                    CliError::Usage(format!(
                        "--threshold needs a positive number, got '{}'",
                        value.to_string_lossy()
                    ))
                })?;
        } else {
            paths.push(arg);
        }
    }
    let [old_path, new_path] = paths[..] else {
        return Err(CliError::Usage(
            "profile-diff takes exactly two profile.json arguments \
             (old baseline first, new profile second)"
                .to_string(),
        ));
    };
    let load = |path: &OsString| -> Result<ProfileCheck, CliError> {
        let path = Path::new(path);
        let text = std::fs::read_to_string(path)
            .map_err(|err| CliError::failed(format!("cannot read {}: {err}", path.display())))?;
        validate_profile_json(&text).map_err(|problems| {
            for problem in &problems {
                eprintln!("{}: {problem}", path.display());
            }
            CliError::failed(format!(
                "{}: {} profile schema violation(s)",
                path.display(),
                problems.len()
            ))
        })
    };
    let old = load(old_path)?;
    let new = load(new_path)?;
    let diff = diff_profiles(&old, &new);
    println!(
        "profile diff: {} ({} evaluations) -> {} ({} evaluations)",
        Path::new(old_path).display(),
        diff.old_evaluations,
        Path::new(new_path).display(),
        diff.new_evaluations,
    );
    println!(
        "  {:<20} {:>12} {:>12} {:>11} {:>11} {:>8}",
        "phase", "old µs", "new µs", "old/eval", "new/eval", "ratio"
    );
    let fmt_us = |us: Option<u64>| us.map_or_else(|| "-".to_string(), |us| us.to_string());
    let fmt_per = |per: Option<f64>| per.map_or_else(|| "-".to_string(), |p| format!("{p:.3}"));
    for delta in &diff.phases {
        println!(
            "  {:<20} {:>12} {:>12} {:>11} {:>11} {:>8}",
            delta.name,
            fmt_us(delta.old_total_us),
            fmt_us(delta.new_total_us),
            fmt_per(delta.old_per_eval_us),
            fmt_per(delta.new_per_eval_us),
            delta
                .ratio
                .map_or_else(|| "-".to_string(), |r| format!("{r:.2}x")),
        );
    }
    check_profile_regression(&diff, threshold).map_err(CliError::failed)?;
    println!("no gated phase regressed past {threshold:.2}x");
    Ok(())
}

fn command_inspect(args: &[OsString]) -> Result<(), CliError> {
    let [path] = args else {
        return Err(CliError::Usage(
            "inspect takes exactly one file argument".to_string(),
        ));
    };
    let path = Path::new(path);
    let bytes = std::fs::read(path)
        .map_err(|err| CliError::failed(format!("cannot read {}: {err}", path.display())))?;
    if bytes.starts_with(b"PWCK") {
        let stored = pathway_moo::engine::decode_checkpoint(&bytes)
            .map_err(|err| CliError::failed(format!("{}: {err}", path.display())))?;
        inspect_checkpoint(path, &stored);
        return Ok(());
    }
    let text = String::from_utf8(bytes).map_err(|_| {
        CliError::failed(format!(
            "{}: neither a checkpoint nor UTF-8 text",
            path.display()
        ))
    })?;
    if is_sweep_text(&text) {
        let sweep = SweepSpec::from_text(&text)
            .map_err(|err| CliError::failed(format!("{}: {err}", path.display())))?;
        inspect_sweep(path, &sweep);
        return Ok(());
    }
    let spec = RunSpec::from_text(&text)
        .map_err(|err| CliError::failed(format!("{}: {err}", path.display())))?;
    inspect_spec(path, &spec)
}

fn inspect_sweep(path: &Path, sweep: &SweepSpec) {
    println!("{}: valid pathway sweep", path.display());
    println!("  content hash: {:#018x}", sweep.content_hash());
    println!("  cells:        {}", sweep.cell_count());
    for axis in &sweep.axes {
        println!(
            "  axis:         {} = {}",
            axis.field,
            axis.values.join(" | ")
        );
    }
    println!("  canonical form:");
    for line in sweep.to_text().lines() {
        println!("    {line}");
    }
}

fn inspect_checkpoint(path: &Path, stored: &StoredCheckpoint) {
    println!("{}: pathway checkpoint v1", path.display());
    println!("  spec hash:   {:#018x}", stored.spec_hash);
    println!("  generation:  {}", stored.generation());
    println!("  evaluations: {}", stored.evaluations());
    println!("  optimizer:   {}", stored.checkpoint.optimizer.kind());
    println!(
        "  hypervolume: {} tracked generations",
        stored.checkpoint.hypervolume_history.len()
    );
    println!("  embedded spec:");
    for line in stored.spec_text.lines() {
        println!("    {line}");
    }
}

fn inspect_spec(path: &Path, spec: &RunSpec) -> Result<(), CliError> {
    let problem = AnyProblem::from_spec(&spec.problem).map_err(CliError::failed)?;
    validate_spec_against_problem(spec, &problem).map_err(CliError::failed)?;
    use pathway_moo::MultiObjectiveProblem;
    println!("{}: valid pathway spec", path.display());
    println!("  content hash: {:#018x}", spec.content_hash());
    println!(
        "  problem:      {} ({} variables, {} objectives)",
        spec.problem.name,
        problem.num_variables(),
        problem.num_objectives()
    );
    println!("  optimizer:    {}", spec.optimizer.kind());
    println!(
        "  budget:       {} generations",
        spec.stopping.max_generations
    );
    println!("  canonical form:");
    for line in spec.to_text().lines() {
        println!("    {line}");
    }
    Ok(())
}

fn command_list_problems(args: &[OsString]) -> Result<(), CliError> {
    if !args.is_empty() {
        return Err(CliError::Usage(
            "list-problems takes no arguments".to_string(),
        ));
    }
    println!("problems known to the registry ([problem] name = ...):\n");
    for info in PROBLEM_CATALOG {
        println!("  {:<12} {}", info.name, info.summary);
        for (param, description) in info.params {
            println!("      {param:<14} {description}");
        }
    }
    Ok(())
}

/// A string-valued flag (daemon addresses); must be valid UTF-8.
fn string_value(iter: &mut std::slice::Iter<'_, OsString>, flag: &str) -> Result<String, CliError> {
    let raw = iter
        .next()
        .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
    raw.to_str().map(str::to_string).ok_or_else(|| {
        CliError::Usage(format!(
            "{flag} needs UTF-8 text, got '{}'",
            raw.to_string_lossy()
        ))
    })
}

/// Runs the study daemon over a data directory until a client shuts it
/// down. Restart-safe: every job found under the data dir resumes from its
/// latest checkpoint before the socket starts accepting.
fn command_serve(args: &[OsString]) -> Result<(), CliError> {
    let mut data_dir: Option<PathBuf> = None;
    let mut listen = "127.0.0.1:7757".to_string();
    let mut threads: Option<usize> = None;
    let mut quiet = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.to_str() {
            Some("--listen") => listen = string_value(&mut iter, "--listen")?,
            Some("--threads") => threads = Some(numeric_value(&mut iter, "--threads")?),
            Some("--quiet") => quiet = true,
            Some(other) if other.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown option '{other}'")));
            }
            _ => {
                if data_dir.replace(PathBuf::from(arg)).is_some() {
                    return Err(CliError::Usage("more than one data dir given".to_string()));
                }
            }
        }
    }
    let data_dir = data_dir.ok_or_else(|| CliError::Usage("missing data dir".to_string()))?;
    let backend = match threads {
        Some(threads) => EvalBackend::Threads(threads),
        None => EvalBackend::Serial,
    };
    let server = Server::start(ServeConfig {
        listen,
        data_dir,
        executor: Executor::shared(backend),
        quiet,
    })
    .map_err(CliError::Failed)?;
    server.join();
    Ok(())
}

/// Where a client command should connect, from `--addr` / `--data-dir`.
struct ClientTarget {
    positional: Option<OsString>,
    addr: Option<String>,
    data_dir: Option<PathBuf>,
    out: Option<PathBuf>,
}

/// Parses client-command arguments: at most one positional (the spec file
/// or job id, when `what` names one) plus the TARGET flags.
fn parse_client_target(args: &[OsString], what: Option<&str>) -> Result<ClientTarget, CliError> {
    let mut target = ClientTarget {
        positional: None,
        addr: None,
        data_dir: None,
        out: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.to_str() {
            Some("--addr") => target.addr = Some(string_value(&mut iter, "--addr")?),
            Some("--data-dir") => target.data_dir = Some(path_value(&mut iter, "--data-dir")?),
            Some("--out") => target.out = Some(path_value(&mut iter, "--out")?),
            Some(other) if other.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown option '{other}'")));
            }
            _ => {
                let Some(what) = what else {
                    return Err(CliError::Usage(format!(
                        "unexpected argument '{}'",
                        arg.to_string_lossy()
                    )));
                };
                if target.positional.replace(arg.clone()).is_some() {
                    return Err(CliError::Usage(format!("more than one {what} given")));
                }
            }
        }
    }
    Ok(target)
}

impl ClientTarget {
    /// Opens the connection: `--addr` wins, otherwise the address is read
    /// from the data dir's endpoint file.
    fn connect(&self) -> Result<Client, CliError> {
        let addr = match (&self.addr, &self.data_dir) {
            (Some(addr), _) => addr.clone(),
            (None, Some(dir)) => read_endpoint(dir).map_err(|err| {
                CliError::failed(format!(
                    "no daemon endpoint under {} ({err}); is `pathway serve` running?",
                    dir.display()
                ))
            })?,
            (None, None) => {
                return Err(CliError::Usage(
                    "daemon client commands need --addr <host:port> or --data-dir <dir>"
                        .to_string(),
                ))
            }
        };
        Client::connect(&addr).map_err(CliError::failed)
    }

    /// The positional argument as a job id (UTF-8 demanded).
    fn job_id(&self, what: &str) -> Result<String, CliError> {
        let raw = self
            .positional
            .as_ref()
            .ok_or_else(|| CliError::Usage(format!("missing {what}")))?;
        raw.to_str().map(str::to_string).ok_or_else(|| {
            CliError::Usage(format!(
                "{what} must be UTF-8 text, got '{}'",
                raw.to_string_lossy()
            ))
        })
    }
}

fn print_job_row(job: &JobSummary) {
    let budget = if job.max_generations > 0 {
        format!("{}/{}", job.generation, job.max_generations)
    } else {
        format!("{}", job.generation)
    };
    println!(
        "  {:<10} {:<10} {:<14} {:<12} gen {:>9}  evals {:>9}  front {:>4}  watchers {}",
        job.id,
        job.state.as_str(),
        job.problem,
        job.optimizer,
        budget,
        job.evaluations,
        job.front_size,
        job.watchers
    );
    if let Some(error) = &job.error {
        println!("             error: {error}");
    }
}

fn command_submit(args: &[OsString]) -> Result<(), CliError> {
    let target = parse_client_target(args, Some("spec file"))?;
    let path = target
        .positional
        .as_ref()
        .map(PathBuf::from)
        .ok_or_else(|| CliError::Usage("missing spec file".to_string()))?;
    let text = std::fs::read_to_string(&path)
        .map_err(|err| CliError::failed(format!("cannot read {}: {err}", path.display())))?;
    let mut client = target.connect()?;
    let jobs = client.submit(&text).map_err(CliError::failed)?;
    println!(
        "submitted {} job{} from {}:",
        jobs.len(),
        if jobs.len() == 1 { "" } else { "s" },
        path.display()
    );
    for job in &jobs {
        print_job_row(job);
    }
    Ok(())
}

fn command_status(args: &[OsString]) -> Result<(), CliError> {
    let target = parse_client_target(args, None)?;
    let mut client = target.connect()?;
    let status = client.status().map_err(CliError::failed)?;
    println!(
        "executor: {} worker lane{}, {} queued chunk{}, {} active",
        status.executor.workers,
        if status.executor.workers == 1 {
            ""
        } else {
            "s"
        },
        status.executor.queued_chunks,
        if status.executor.queued_chunks == 1 {
            ""
        } else {
            "s"
        },
        status.executor.active_workers
    );
    if status.jobs.is_empty() {
        println!("no jobs");
        return Ok(());
    }
    println!("jobs:");
    for job in &status.jobs {
        print_job_row(job);
    }
    Ok(())
}

/// Fetches the daemon's live telemetry snapshot — the same
/// `pathway-profile` document `--profile-out` writes, with `source`
/// `"serve"` — and prints it, or writes it with `--out`.
fn command_metrics(args: &[OsString]) -> Result<(), CliError> {
    let target = parse_client_target(args, None)?;
    let mut client = target.connect()?;
    let profile = client.metrics().map_err(CliError::failed)?;
    let text = profile.to_pretty();
    match &target.out {
        Some(path) => {
            std::fs::write(path, &text)
                .map_err(|err| CliError::failed(format!("{}: {err}", path.display())))?;
            println!("profile: {}", path.display());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn command_watch(args: &[OsString]) -> Result<(), CliError> {
    let target = parse_client_target(args, Some("job id"))?;
    let job = target.job_id("job id")?;
    let mut client = target.connect()?;
    let end = client
        .watch(&job, |event| {
            if let WatchEvent::Generation {
                generation,
                evaluations,
                front_size,
                hypervolume,
                duration_us,
                ..
            } = event
            {
                println!(
                    "[{job} gen {generation:>6}] evals {evaluations:>9}  front {front_size:>4}  hv {:<13}  ({:.1?})",
                    if hypervolume.is_nan() {
                        "-".to_string()
                    } else {
                        format!("{hypervolume:.6e}")
                    },
                    Duration::from_micros(*duration_us)
                );
            }
        })
        .map_err(CliError::failed)?;
    if let WatchEvent::End {
        state, generation, ..
    } = end
    {
        println!("{job}: {} at generation {generation}", state.as_str());
    }
    Ok(())
}

fn command_cancel(args: &[OsString]) -> Result<(), CliError> {
    let target = parse_client_target(args, Some("job id"))?;
    let job = target.job_id("job id")?;
    let mut client = target.connect()?;
    let summary = client.cancel(&job).map_err(CliError::failed)?;
    print_job_row(&summary);
    Ok(())
}

fn command_fetch_front(args: &[OsString]) -> Result<(), CliError> {
    let target = parse_client_target(args, Some("job id"))?;
    let job = target.job_id("job id")?;
    let mut client = target.connect()?;
    let (summary, front) = client.fetch_front(&job).map_err(CliError::failed)?;
    match &target.out {
        Some(path) => {
            // Bit-exact: these are the same bytes `pathway run --front-out`
            // would have written for the job's spec.
            std::fs::write(path, &front)
                .map_err(|err| CliError::failed(format!("{}: {err}", path.display())))?;
            println!(
                "front: {} ({} solutions, job {} {})",
                path.display(),
                summary.front_size,
                summary.id,
                summary.state.as_str()
            );
        }
        None => print!("{front}"),
    }
    Ok(())
}

fn command_shutdown(args: &[OsString]) -> Result<(), CliError> {
    let target = parse_client_target(args, None)?;
    let mut client = target.connect()?;
    client.shutdown().map_err(CliError::failed)?;
    println!("daemon shut down (all running jobs checkpointed)");
    Ok(())
}
