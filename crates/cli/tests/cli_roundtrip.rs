//! Cross-process CLI tests.
//!
//! The acceptance bar for durable checkpoints: `pathway run <spec>`, kill
//! the process part-way (simulated deterministically with `--stop-after`,
//! which exits after writing a checkpoint exactly like a kill between
//! generations would leave one), then `pathway resume <checkpoint>` in a
//! *fresh process* — and the final front must be byte-identical to the
//! uninterrupted run's, for the Serial and the Threads(2) evaluation
//! backend alike. Fronts are compared through `--front-out` files, which
//! render every f64 as its IEEE-754 bits.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn pathway() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pathway"))
}

fn run_ok(args: &[&str]) -> Output {
    let output = pathway().args(args).output().expect("spawn pathway");
    assert!(
        output.status.success(),
        "pathway {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pathway-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn write_spec(dir: &Path, backend: &str) -> PathBuf {
    let text = format!(
        "pathway-spec v1\n\n\
         [problem]\nname = zdt1\nvariables = 6\n\n\
         [optimizer]\nkind = archipelago\nislands = 2\npopulation = 16\n\
         backend = {backend}\nmigration_interval = 4\ntopology = ring\n\n\
         [run]\nseed = 99\ncheckpoint_every = 3\n\n\
         [stop]\nmax_generations = 12\n"
    );
    let path = dir.join("run.spec");
    std::fs::write(&path, text).expect("write spec");
    path
}

fn assert_identical(a: &Path, b: &Path) {
    let left = std::fs::read(a).expect("front file a");
    let right = std::fs::read(b).expect("front file b");
    assert!(
        !left.is_empty() && left == right,
        "fronts differ between {} and {}",
        a.display(),
        b.display()
    );
}

fn kill_resume_roundtrip(backend: &str, tag: &str) {
    let dir = temp_dir(tag);
    let spec = write_spec(&dir, backend);
    let spec = spec.to_str().unwrap();

    // Uninterrupted run.
    let full_front = dir.join("full.front");
    let full_ckpt = dir.join("full-ckpt");
    run_ok(&[
        "run",
        spec,
        "--checkpoint-dir",
        full_ckpt.to_str().unwrap(),
        "--front-out",
        full_front.to_str().unwrap(),
        "--quiet",
    ]);

    // The same run, killed after 5 generations...
    let split_ckpt = dir.join("split-ckpt");
    run_ok(&[
        "run",
        spec,
        "--checkpoint-dir",
        split_ckpt.to_str().unwrap(),
        "--stop-after",
        "5",
        "--quiet",
    ]);
    // ... and resumed in a fresh process from the checkpoint alone (the
    // spec is embedded — no spec file is passed).
    let resumed_front = dir.join("resumed.front");
    run_ok(&[
        "resume",
        split_ckpt.join("gen-5.ckpt").to_str().unwrap(),
        "--front-out",
        resumed_front.to_str().unwrap(),
        "--quiet",
    ]);

    assert_identical(&full_front, &resumed_front);

    // The periodic checkpoints (every 3 generations) also resume to the
    // same front: resume from gen-3 of the *full* run's checkpoint dir.
    let periodic_front = dir.join("periodic.front");
    run_ok(&[
        "resume",
        full_ckpt.join("gen-3.ckpt").to_str().unwrap(),
        "--front-out",
        periodic_front.to_str().unwrap(),
        "--quiet",
    ]);
    assert_identical(&full_front, &periodic_front);

    // `--threads` swaps the executor (one pool for the whole invocation)
    // without touching the run state or the spec hash, so resuming the same
    // checkpoint under an explicit pool is still byte-identical.
    let pooled_front = dir.join("pooled.front");
    run_ok(&[
        "resume",
        split_ckpt.join("gen-5.ckpt").to_str().unwrap(),
        "--threads",
        "2",
        "--front-out",
        pooled_front.to_str().unwrap(),
        "--quiet",
    ]);
    assert_identical(&full_front, &pooled_front);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_and_resume_is_bit_identical_serial() {
    kill_resume_roundtrip("serial", "serial");
}

#[test]
fn kill_and_resume_is_bit_identical_threaded() {
    kill_resume_roundtrip("threads:2", "threads");
}

#[test]
fn resume_refuses_a_divergent_spec() {
    let dir = temp_dir("mismatch");
    let spec = write_spec(&dir, "serial");
    run_ok(&[
        "run",
        spec.to_str().unwrap(),
        "--checkpoint-dir",
        dir.join("ckpt").to_str().unwrap(),
        "--stop-after",
        "4",
        "--quiet",
    ]);
    // A spec that differs in one semantic field (the seed).
    let divergent = dir.join("divergent.spec");
    let text = std::fs::read_to_string(&spec)
        .unwrap()
        .replace("seed = 99", "seed = 100");
    std::fs::write(&divergent, text).unwrap();

    let output = pathway()
        .args([
            "resume",
            dir.join("ckpt/gen-4.ckpt").to_str().unwrap(),
            "--spec",
            divergent.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("spawn pathway");
    assert!(!output.status.success(), "divergent spec must be refused");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("different run spec"), "stderr: {stderr}");

    // The matching spec passed explicitly is accepted.
    run_ok(&[
        "resume",
        dir.join("ckpt/gen-4.ckpt").to_str().unwrap(),
        "--spec",
        spec.to_str().unwrap(),
        "--quiet",
    ]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_checkpoints_fail_loudly() {
    let dir = temp_dir("corrupt");
    let spec = write_spec(&dir, "serial");
    run_ok(&[
        "run",
        spec.to_str().unwrap(),
        "--checkpoint-dir",
        dir.join("ckpt").to_str().unwrap(),
        "--stop-after",
        "3",
        "--quiet",
    ]);
    let ckpt = dir.join("ckpt/gen-3.ckpt");
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&ckpt, &bytes).unwrap();

    let output = pathway()
        .args(["resume", ckpt.to_str().unwrap(), "--quiet"])
        .output()
        .expect("spawn pathway");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("integrity") || stderr.contains("corrupted"),
        "stderr: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn inspect_describes_specs_and_checkpoints() {
    let dir = temp_dir("inspect");
    let spec = write_spec(&dir, "serial");
    let output = run_ok(&["inspect", spec.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("valid pathway spec"), "{stdout}");
    assert!(stdout.contains("zdt1"), "{stdout}");

    run_ok(&[
        "run",
        spec.to_str().unwrap(),
        "--checkpoint-dir",
        dir.join("ckpt").to_str().unwrap(),
        "--stop-after",
        "2",
        "--quiet",
    ]);
    let output = run_ok(&["inspect", dir.join("ckpt/gen-2.ckpt").to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("pathway checkpoint v1"), "{stdout}");
    assert!(stdout.contains("generation:  2"), "{stdout}");
    assert!(stdout.contains("name = zdt1"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn list_problems_prints_the_registry() {
    let output = run_ok(&["list-problems"]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    for name in ["leaf-design", "geobacter", "schaffer", "zdt1", "dtlz2"] {
        assert!(stdout.contains(name), "missing '{name}' in:\n{stdout}");
    }
}

#[test]
fn usage_errors_exit_with_code_two() {
    let output = pathway().arg("frobnicate").output().expect("spawn pathway");
    assert_eq!(output.status.code(), Some(2));
    let output = pathway().output().expect("spawn pathway");
    assert_eq!(output.status.code(), Some(2));
    let output = pathway()
        .args(["run", "a.spec", "b.spec"])
        .output()
        .expect("spawn pathway");
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn wrong_dimension_reference_points_are_rejected_up_front() {
    // 3 components against a bi-objective problem would panic inside the
    // hypervolume computation mid-run; the CLI must refuse before running.
    let dir = temp_dir("refpoint");
    let bad = dir.join("bad-ref.spec");
    std::fs::write(
        &bad,
        "pathway-spec v1\n[problem]\nname = zdt1\n[optimizer]\nkind = nsga2\n\
         [run]\nreference_point = 30, 30, 30\n[stop]\nmax_generations = 3\n",
    )
    .unwrap();
    let output = pathway()
        .args(["run", bad.to_str().unwrap()])
        .output()
        .expect("spawn pathway");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("reference_point"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parse_errors_report_file_and_line() {
    let dir = temp_dir("parse-error");
    let bad = dir.join("bad.spec");
    std::fs::write(
        &bad,
        "pathway-spec v1\n[problem]\nname = zdt1\n[optimizer]\nkind = quantum\n",
    )
    .unwrap();
    let output = pathway()
        .args(["run", bad.to_str().unwrap()])
        .output()
        .expect("spawn pathway");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("bad.spec"), "{stderr}");
    assert!(stderr.contains("line 5"), "{stderr}");
    assert!(stderr.contains("quantum"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Grid sweeps: kill mid-grid, resume only the incomplete cells, and land on
// fronts byte-identical to an uninterrupted sweep — with completed cells
// never re-run (their ledger bytes stay a strict prefix).
// ---------------------------------------------------------------------------

fn write_sweep(dir: &Path) -> PathBuf {
    let text = "pathway-sweep v1\n\n\
        [sweep]\nproblem.name = schaffer | zdt1\nrun.seed = 1 | 2\n\n\
        [problem]\nname = schaffer\n\n\
        [optimizer]\nkind = nsga2\npopulation = 16\n\n\
        [run]\nseed = 1\ncheckpoint_every = 2\nreference_point = 25, 25\n\n\
        [stop]\nmax_generations = 6\n";
    let path = dir.join("grid.sweep");
    std::fs::write(&path, text).expect("write sweep");
    path
}

#[test]
fn sweep_kill_and_resume_is_bit_identical_and_skips_completed_cells() {
    let dir = temp_dir("sweep");
    let sweep = write_sweep(&dir);
    let sweep = sweep.to_str().unwrap();

    // Uninterrupted sweep: 4 cells x 6 generations.
    let full = dir.join("full");
    run_ok(&[
        "sweep",
        sweep,
        "--out-dir",
        full.to_str().unwrap(),
        "--quiet",
    ]);

    // The same sweep, killed 9 generations in: cell 0 completes (6), cell 1
    // is interrupted at generation 3 with a checkpoint.
    let split = dir.join("split");
    let output = run_ok(&[
        "sweep",
        sweep,
        "--out-dir",
        split.to_str().unwrap(),
        "--stop-after",
        "9",
    ]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("interrupted"), "{stdout}");
    let ledger_after_kill = std::fs::read(split.join("ledger.md")).expect("ledger exists");

    // Resume in a fresh process: completed cells are skipped, the
    // interrupted cell continues from its checkpoint.
    let output = run_ok(&["sweep", sweep, "--out-dir", split.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("[cell-0000] skip"), "{stdout}");
    assert!(stdout.contains("resume from generation 3"), "{stdout}");

    // Every front is byte-identical to the uninterrupted sweep's.
    for cell in 0..4 {
        assert_identical(
            &full.join(format!("fronts/cell-000{cell}.front")),
            &split.join(format!("fronts/cell-000{cell}.front")),
        );
    }

    // Completed cells were not re-run: the ledger is append-only, so the
    // bytes written before the kill are a strict prefix of the resumed
    // ledger (a re-run would have rewritten or duplicated cell 0's row).
    let ledger_after_resume = std::fs::read(split.join("ledger.md")).unwrap();
    assert!(
        ledger_after_resume.starts_with(&ledger_after_kill),
        "resume rewrote earlier ledger bytes"
    );
    assert!(ledger_after_resume.len() > ledger_after_kill.len());
    let text = String::from_utf8_lossy(&ledger_after_resume);
    assert_eq!(
        text.lines()
            .filter(|line| line.starts_with("| 000"))
            .count(),
        4,
        "expected exactly one row per cell:\n{text}"
    );

    // A third pass over a complete ledger runs nothing and changes nothing.
    let before = std::fs::read(split.join("BENCH_sweep.json")).unwrap();
    let output = run_ok(&[
        "sweep",
        sweep,
        "--out-dir",
        split.to_str().unwrap(),
        "--quiet",
    ]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("0 completed now, 4 skipped"), "{stdout}");
    assert_eq!(
        before,
        std::fs::read(split.join("BENCH_sweep.json")).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_under_a_thread_pool_is_bit_identical_to_serial() {
    let dir = temp_dir("sweep-pool");
    let sweep = write_sweep(&dir);
    let sweep = sweep.to_str().unwrap();
    let serial = dir.join("serial");
    let pooled = dir.join("pooled");
    run_ok(&[
        "sweep",
        sweep,
        "--out-dir",
        serial.to_str().unwrap(),
        "--quiet",
    ]);
    run_ok(&[
        "sweep",
        sweep,
        "--out-dir",
        pooled.to_str().unwrap(),
        "--threads",
        "2",
        "--quiet",
    ]);
    for cell in 0..4 {
        assert_identical(
            &serial.join(format!("fronts/cell-000{cell}.front")),
            &pooled.join(format!("fronts/cell-000{cell}.front")),
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ledger_check_validates_and_rejects() {
    let dir = temp_dir("ledger-check");
    let sweep = write_sweep(&dir);
    let out = dir.join("out");
    // Even an immediately interrupted sweep leaves a valid all-placeholder
    // ledger behind.
    run_ok(&[
        "sweep",
        sweep.to_str().unwrap(),
        "--out-dir",
        out.to_str().unwrap(),
        "--stop-after",
        "0",
        "--quiet",
    ]);
    let json = out.join("BENCH_sweep.json");
    let output = run_ok(&["ledger-check", json.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("valid sweep ledger"), "{stdout}");
    assert!(stdout.contains("0/4 cells complete"), "{stdout}");

    // Drift the format tag: ledger-check must fail with exit 1 and say why.
    let text = std::fs::read_to_string(&json).unwrap();
    std::fs::write(&json, text.replace("pathway-bench-sweep", "renamed")).unwrap();
    let output = pathway()
        .args(["ledger-check", json.to_str().unwrap()])
        .output()
        .expect("spawn pathway");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("'format'"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `profile-diff` reports per-phase deltas between two profiles and gates
/// regressions: identical profiles pass, a 5x `eval` blow-up fails the
/// default 4x threshold with exit 1, and a loosened `--threshold` lets the
/// same pair pass again.
#[test]
fn profile_diff_reports_deltas_and_gates_regressions() {
    let dir = temp_dir("profile-diff");
    let profile = |label: &str, eval_us: u64| {
        format!(
            "{{\n  \"format\": \"pathway-profile\",\n  \"version\": 1,\n  \
             \"source\": \"run\",\n  \"label\": \"{label}\",\n  \
             \"generations\": 4,\n  \"evaluations\": 100,\n  \"wall_ms\": 10,\n  \
             \"phases\": [\n    \
             {{\"name\": \"eval\", \"calls\": 4, \"total_us\": {eval_us}}},\n    \
             {{\"name\": \"generation\", \"calls\": 4, \"total_us\": {}}}\n  ],\n  \
             \"counters\": [],\n  \"gauges\": [],\n  \"histograms\": []\n}}\n",
            eval_us + 20_000
        )
    };
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(&old, profile("baseline", 100_000)).unwrap();
    std::fs::write(&new, profile("regressed", 500_000)).unwrap();

    // Identical profiles: every ratio is 1.00x and the gate passes.
    let output = run_ok(&["profile-diff", old.to_str().unwrap(), old.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("1.00x"), "{stdout}");
    assert!(stdout.contains("no gated phase regressed"), "{stdout}");

    // A 5x eval regression trips the default 4x gate with exit 1.
    let output = pathway()
        .args(["profile-diff", old.to_str().unwrap(), new.to_str().unwrap()])
        .output()
        .expect("spawn pathway");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("'eval'") && stderr.contains("5.00x"),
        "{stderr}"
    );

    // The same pair passes a loosened threshold.
    run_ok(&[
        "profile-diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--threshold",
        "6.0",
    ]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn inspect_describes_sweeps() {
    let dir = temp_dir("inspect-sweep");
    let sweep = write_sweep(&dir);
    let output = run_ok(&["inspect", sweep.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("valid pathway sweep"), "{stdout}");
    assert!(stdout.contains("cells:        4"), "{stdout}");
    assert!(
        stdout.contains("problem.name = schaffer | zdt1"),
        "{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `--profile-out` is a pure observer: the metered run's front is
/// byte-identical to an unmetered run of the same spec, and the profile it
/// leaves behind survives `profile-check` (schema + phase-timing balance).
#[test]
fn profile_out_is_observational_and_passes_profile_check() {
    let dir = temp_dir("profile");
    let spec = write_spec(&dir, "serial");
    let plain_front = dir.join("plain.front");
    let metered_front = dir.join("metered.front");
    let profile = dir.join("profile.json");
    run_ok(&[
        "run",
        spec.to_str().unwrap(),
        "--checkpoint-dir",
        dir.join("ckpt-plain").to_str().unwrap(),
        "--front-out",
        plain_front.to_str().unwrap(),
        "--quiet",
    ]);
    let output = run_ok(&[
        "run",
        spec.to_str().unwrap(),
        "--checkpoint-dir",
        dir.join("ckpt-metered").to_str().unwrap(),
        "--front-out",
        metered_front.to_str().unwrap(),
        "--profile-out",
        profile.to_str().unwrap(),
        "--quiet",
    ]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("executor: 1 worker lane"), "{stdout}");
    assert!(stdout.contains("profile: "), "{stdout}");
    assert_identical(&plain_front, &metered_front);

    let output = run_ok(&["profile-check", profile.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("valid run profile"), "{stdout}");
    assert!(stdout.contains("12 generations"), "{stdout}");

    // Corruption fails loudly with exit 1, like ledger-check.
    let text = std::fs::read_to_string(&profile).unwrap();
    std::fs::write(&profile, text.replace("pathway-profile", "renamed")).unwrap();
    let output = pathway()
        .args(["profile-check", profile.to_str().unwrap()])
        .output()
        .expect("spawn pathway");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("'format'"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
