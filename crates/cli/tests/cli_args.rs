//! Argument-parsing regression tests.
//!
//! The CLI once routed every flag value through `PathBuf` →
//! `to_string_lossy`, which mangled non-UTF-8 numeric arguments into
//! U+FFFD soup before parsing (yielding a confusing "needs a number, got
//! '1�'" at best) and would have panicked outright in `env::args()` before
//! parsing even started. These tests pin the fixed behavior: numeric flags
//! reject malformed and non-UTF-8 values explicitly with exit code 2,
//! while path-valued arguments pass through byte-for-byte.

use std::ffi::OsString;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn pathway() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pathway"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pathway-args-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn write_tiny_spec(dir: &Path) -> PathBuf {
    let path = dir.join("tiny.spec");
    std::fs::write(
        &path,
        "pathway-spec v1\n\n[problem]\nname = schaffer\n\n\
         [optimizer]\nkind = nsga2\npopulation = 8\n\n\
         [run]\nseed = 5\n\n[stop]\nmax_generations = 2\n",
    )
    .expect("write spec");
    path
}

fn usage_error(output: &Output) -> String {
    assert_eq!(
        output.status.code(),
        Some(2),
        "expected a usage error (exit 2), stderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn malformed_numeric_flags_fail_loudly() {
    for (flag, value) in [
        ("--stop-after", "12abc"),
        ("--stop-after", ""),
        ("--threads", "two"),
        ("--threads", "-3"),
    ] {
        let output = pathway()
            .args(["run", "whatever.spec", flag, value])
            .output()
            .expect("spawn pathway");
        let stderr = usage_error(&output);
        assert!(
            stderr.contains(flag) && stderr.contains("needs a number"),
            "{flag} {value:?}: {stderr}"
        );
        assert!(stderr.contains(value), "{flag} {value:?}: {stderr}");
    }
}

#[test]
fn numeric_flags_missing_their_value_fail_loudly() {
    for flag in ["--stop-after", "--threads"] {
        let output = pathway()
            .args(["run", "whatever.spec", flag])
            .output()
            .expect("spawn pathway");
        let stderr = usage_error(&output);
        assert!(stderr.contains("needs a value"), "{flag}: {stderr}");
    }
}

#[cfg(unix)]
#[test]
fn non_utf8_numeric_values_are_rejected_not_mangled() {
    use std::os::unix::ffi::OsStringExt;
    // b"12\xFF" lossily converts to "12\u{FFFD}" — the old code parsed
    // that (and failed with a garbled message); the fix must name the flag
    // and call out the encoding explicitly.
    let bad = OsString::from_vec(b"12\xFF".to_vec());
    for flag in ["--stop-after", "--threads"] {
        let output = pathway()
            .args([OsString::from("run"), OsString::from("whatever.spec")])
            .arg(flag)
            .arg(&bad)
            .output()
            .expect("spawn pathway");
        let stderr = usage_error(&output);
        assert!(
            stderr.contains(flag) && stderr.contains("non-UTF-8"),
            "{flag}: {stderr}"
        );
    }
}

#[cfg(unix)]
#[test]
fn non_utf8_paths_pass_through_byte_for_byte() {
    use std::os::unix::ffi::OsStringExt;
    let dir = temp_dir("bytes");
    let spec = write_tiny_spec(&dir);
    // A front-out path with a non-UTF-8 byte in its file name: the CLI
    // must create exactly this file, not a lossily renamed one.
    let mut raw = dir.clone().into_os_string().into_vec();
    raw.extend_from_slice(b"/fr\xF6nt.out");
    let front_out = PathBuf::from(OsString::from_vec(raw));
    let output = pathway()
        .arg("run")
        .arg(&spec)
        .args(["--checkpoint-dir"])
        .arg(dir.join("ckpt"))
        .arg("--front-out")
        .arg(&front_out)
        .arg("--quiet")
        .output()
        .expect("spawn pathway");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        front_out.exists(),
        "front file was not written at the byte-exact path"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn non_utf8_commands_report_a_usage_error_instead_of_panicking() {
    use std::os::unix::ffi::OsStringExt;
    // `env::args()` would have panicked before dispatch ever saw this.
    let output = pathway()
        .arg(OsString::from_vec(b"r\xFFn".to_vec()))
        .output()
        .expect("spawn pathway");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown command"), "{stderr}");
}
