//! The daemon acceptance test, cross-process and kill-hardened.
//!
//! Three studies are submitted to one `pathway serve` daemon sharing a
//! single evaluation executor. The daemon is throttled (via the
//! `PATHWAY_SERVE_STEP_SLEEP_MS` test knob) so the test can observe it
//! genuinely mid-flight, then killed with SIGKILL — no shutdown hook, no
//! final checkpoint — and restarted. Every job must resume and finish with
//! a front byte-identical to an uninterrupted `pathway run` of the same
//! spec, proving the durability contract end to end. Along the way the
//! test asserts the fairness contract (all three concurrent jobs progress
//! in lockstep on a *serial* executor — strictly more jobs than worker
//! threads) and exercises the client subcommands (`submit`, `status` via
//! the library client, `fetch-front`, `shutdown`).

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output};
use std::time::{Duration, Instant};

use pathway_serve::{read_endpoint, Client, JobState};

fn pathway() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pathway"))
}

fn run_ok(args: &[&str]) -> Output {
    let output = pathway().args(args).output().expect("spawn pathway");
    assert!(
        output.status.success(),
        "pathway {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pathway-serve-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Kills the daemon process on drop so a failing assertion never leaks a
/// background `pathway serve`.
struct DaemonGuard(Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Starts `pathway serve` on a free port and waits until it answers pings.
fn start_daemon(data_dir: &Path, step_sleep_ms: &str) -> (DaemonGuard, String) {
    let child = pathway()
        .args([
            "serve",
            data_dir.to_str().unwrap(),
            "--listen",
            "127.0.0.1:0",
            "--quiet",
        ])
        .env("PATHWAY_SERVE_STEP_SLEEP_MS", step_sleep_ms)
        .spawn()
        .expect("spawn daemon");
    let mut guard = DaemonGuard(child);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(
            guard.0.try_wait().expect("poll daemon").is_none(),
            "daemon exited during startup"
        );
        if let Ok(addr) = read_endpoint(data_dir) {
            if let Ok(mut client) = Client::connect(&addr) {
                if client.ping().is_ok() {
                    return (guard, addr);
                }
            }
        }
        assert!(Instant::now() < deadline, "daemon never became reachable");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn write_spec(dir: &Path, name: &str, seed: u64) -> PathBuf {
    let text = format!(
        "pathway-spec v1\n\n\
         [problem]\nname = schaffer\n\n\
         [optimizer]\nkind = nsga2\npopulation = 16\n\n\
         [run]\nseed = {seed}\ncheckpoint_every = 2\nreference_point = 25, 25\n\n\
         [stop]\nmax_generations = 8\n"
    );
    let path = dir.join(name);
    std::fs::write(&path, text).expect("write spec");
    path
}

#[test]
fn killed_daemon_resumes_every_job_byte_identically() {
    let dir = temp_dir("kill");
    let data = dir.join("studies");
    std::fs::create_dir_all(&data).expect("data dir");
    let seeds = [21u64, 22, 23];

    // Uninterrupted baselines: one `pathway run` per spec, fronts written
    // bit-exactly via --front-out.
    let mut specs = Vec::new();
    let mut baselines = Vec::new();
    for (index, seed) in seeds.iter().enumerate() {
        let spec = write_spec(&dir, &format!("study-{index}.spec"), *seed);
        let front = dir.join(format!("baseline-{index}.front"));
        let ckpt = dir.join(format!("baseline-{index}.ckpt"));
        run_ok(&[
            "run",
            spec.to_str().unwrap(),
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
            "--front-out",
            front.to_str().unwrap(),
            "--quiet",
        ]);
        specs.push(spec);
        baselines.push(front);
    }

    // Daemon round 1, throttled to ~40ms per generation step so there is a
    // wide window in which all three jobs are genuinely in flight.
    let (daemon, addr) = start_daemon(&data, "40");
    for spec in &specs {
        run_ok(&[
            "submit",
            spec.to_str().unwrap(),
            "--data-dir",
            data.to_str().unwrap(),
        ]);
    }

    // Wait until every job has at least one checkpointed generation (the
    // spec checkpoints every 2) but none can have finished, then SIGKILL.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mid_flight = loop {
        let mut client = Client::connect(&addr).expect("connect");
        let status = client.status().expect("status");
        assert_eq!(status.jobs.len(), 3);
        let generations: Vec<usize> = status.jobs.iter().map(|j| j.generation).collect();
        if generations.iter().all(|&g| (2..8).contains(&g)) {
            break status;
        }
        assert!(Instant::now() < deadline, "jobs never reached mid-flight");
        std::thread::sleep(Duration::from_millis(15));
    };
    // Fairness while more jobs than worker lanes (3 jobs, serial executor):
    // every job is running and within one generation of every other.
    assert_eq!(mid_flight.executor.workers, 1);
    assert!(mid_flight
        .jobs
        .iter()
        .all(|job| job.state == JobState::Running));
    let gens: Vec<usize> = mid_flight.jobs.iter().map(|j| j.generation).collect();
    let (min, max) = (gens.iter().min().unwrap(), gens.iter().max().unwrap());
    assert!(
        max - min <= 1,
        "round-robin keeps concurrent jobs in lockstep, got {gens:?}"
    );
    drop(daemon); // SIGKILL, mid-generation for at least one job

    // Daemon round 2, unthrottled: every job must come back running from
    // its last checkpoint and finish on its own.
    let (mut daemon, addr) = start_daemon(&data, "0");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let mut client = Client::connect(&addr).expect("connect");
        let status = client.status().expect("status");
        assert!(
            status
                .jobs
                .iter()
                .all(|j| matches!(j.state, JobState::Running | JobState::Completed)),
            "restore must not fail or cancel any job: {status:?}"
        );
        if status.jobs.iter().all(|j| j.state == JobState::Completed) {
            for job in &status.jobs {
                assert_eq!(job.generation, 8);
            }
            break;
        }
        assert!(Instant::now() < deadline, "resumed jobs never completed");
        std::thread::sleep(Duration::from_millis(15));
    }

    // The acceptance bar: every front fetched from the kill-restarted
    // daemon is byte-identical to its uninterrupted baseline.
    for (index, baseline) in baselines.iter().enumerate() {
        let fetched = dir.join(format!("fetched-{index}.front"));
        run_ok(&[
            "fetch-front",
            &format!("job-{:04}", index + 1),
            "--data-dir",
            data.to_str().unwrap(),
            "--out",
            fetched.to_str().unwrap(),
        ]);
        let want = std::fs::read(baseline).expect("baseline front");
        let got = std::fs::read(&fetched).expect("fetched front");
        assert!(
            !want.is_empty() && want == got,
            "front {index} diverged after kill + resume"
        );
    }

    // Clean shutdown via the CLI; the daemon process must exit by itself.
    run_ok(&["shutdown", "--data-dir", data.to_str().unwrap()]);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if daemon.0.try_wait().expect("poll daemon").is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "daemon ignored shutdown");
        std::thread::sleep(Duration::from_millis(20));
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// `watch` streams generations in order over the CLI and ends with the
/// job's terminal state; `status` before any submit shows an empty daemon.
#[test]
fn watch_streams_until_completion() {
    let dir = temp_dir("watch");
    let data = dir.join("studies");
    std::fs::create_dir_all(&data).expect("data dir");
    let spec = write_spec(&dir, "watched.spec", 31);

    let (daemon, addr) = start_daemon(&data, "150");
    let output = run_ok(&["status", "--data-dir", data.to_str().unwrap()]);
    assert!(String::from_utf8_lossy(&output.stdout).contains("no jobs"));

    run_ok(&["submit", spec.to_str().unwrap(), "--addr", &addr]);
    let output = run_ok(&["watch", "job-0001", "--addr", &addr]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    let streamed: Vec<&str> = stdout
        .lines()
        .filter(|line| line.starts_with("[job-0001"))
        .collect();
    assert!(
        !streamed.is_empty(),
        "watch should stream generation lines, got:\n{stdout}"
    );
    assert!(
        stdout.contains("job-0001: completed at generation 8"),
        "watch should report the terminal state, got:\n{stdout}"
    );
    assert!(
        streamed.iter().all(|line| line.ends_with(')')),
        "each generation line should end with its duration, got:\n{stdout}"
    );

    // The daemon's live telemetry snapshot round-trips through
    // `metrics --out` and passes profile-check.
    let profile = dir.join("daemon-profile.json");
    run_ok(&[
        "metrics",
        "--addr",
        &addr,
        "--out",
        profile.to_str().unwrap(),
    ]);
    let output = run_ok(&["profile-check", profile.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("valid serve profile"), "{stdout}");

    run_ok(&["shutdown", "--addr", &addr]);
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}
