use pathway_linalg::Vector;

use crate::system::validate_inputs;
use crate::{IntegrationResult, IntegrationStats, Integrator, OdeError, OdeSystem};

/// The classical fixed-step fourth-order Runge–Kutta method.
///
/// A good default for smooth, non-stiff systems where a safe step size is
/// known in advance. The photosynthesis steady-state driver uses it with a
/// small step as the reference integrator.
///
/// # Example
///
/// ```
/// use pathway_ode::{OdeSystem, Rk4, Integrator};
/// use pathway_linalg::Vector;
///
/// struct Decay;
/// impl OdeSystem for Decay {
///     fn dim(&self) -> usize { 1 }
///     fn rhs(&self, _t: f64, y: &Vector, dydt: &mut Vector) { dydt[0] = -y[0]; }
/// }
///
/// # fn main() -> Result<(), pathway_ode::OdeError> {
/// let result = Rk4::new(0.01).integrate(&Decay, 0.0, Vector::from(vec![2.0]), 1.0)?;
/// assert!((result.state[0] - 2.0 * (-1.0f64).exp()).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rk4 {
    step: f64,
}

impl Rk4 {
    /// Creates a solver with the given fixed step size.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive and finite.
    pub fn new(step: f64) -> Self {
        assert!(
            step.is_finite() && step > 0.0,
            "step size must be positive and finite"
        );
        Rk4 { step }
    }

    /// The configured step size.
    pub fn step(&self) -> f64 {
        self.step
    }
}

impl Integrator for Rk4 {
    fn integrate<S: OdeSystem>(
        &self,
        system: &S,
        t0: f64,
        y0: Vector,
        t_end: f64,
    ) -> crate::Result<IntegrationResult> {
        validate_inputs(system, &y0, t0, t_end)?;
        let dim = system.dim();
        let mut stats = IntegrationStats::new();
        let mut t = t0;
        let mut y = y0;

        let mut k1 = Vector::zeros(dim);
        let mut k2 = Vector::zeros(dim);
        let mut k3 = Vector::zeros(dim);
        let mut k4 = Vector::zeros(dim);
        let mut scratch = Vector::zeros(dim);

        while t < t_end {
            let h = self.step.min(t_end - t);

            system.rhs(t, &y, &mut k1);
            for i in 0..dim {
                scratch[i] = y[i] + 0.5 * h * k1[i];
            }
            system.rhs(t + 0.5 * h, &scratch, &mut k2);
            for i in 0..dim {
                scratch[i] = y[i] + 0.5 * h * k2[i];
            }
            system.rhs(t + 0.5 * h, &scratch, &mut k3);
            for i in 0..dim {
                scratch[i] = y[i] + h * k3[i];
            }
            system.rhs(t + h, &scratch, &mut k4);
            stats.rhs_evaluations += 4;

            for i in 0..dim {
                y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
            }
            t += h;
            system.project(t, &mut y);

            if !y.is_finite() {
                return Err(OdeError::NonFiniteState { time: t });
            }
            stats.steps_accepted += 1;
        }

        Ok(IntegrationResult {
            time: t_end,
            state: y,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::test_systems::{Decay, Harmonic, Logistic};
    use proptest::prelude::*;

    #[test]
    fn decay_matches_analytic_solution() {
        let result = Rk4::new(1e-3)
            .integrate(&Decay { k: 2.0 }, 0.0, Vector::from(vec![1.0]), 1.0)
            .unwrap();
        assert!((result.state[0] - (-2.0f64).exp()).abs() < 1e-8);
    }

    #[test]
    fn harmonic_oscillator_conserves_energy_approximately() {
        let result = Rk4::new(1e-3)
            .integrate(&Harmonic, 0.0, Vector::from(vec![1.0, 0.0]), 10.0)
            .unwrap();
        let energy = result.state[0].powi(2) + result.state[1].powi(2);
        assert!((energy - 1.0).abs() < 1e-6);
    }

    #[test]
    fn final_time_is_hit_exactly_even_with_non_divisible_step() {
        let result = Rk4::new(0.3)
            .integrate(&Decay { k: 1.0 }, 0.0, Vector::from(vec![1.0]), 1.0)
            .unwrap();
        assert_eq!(result.time, 1.0);
        assert!((result.state[0] - (-1.0f64).exp()).abs() < 1e-4);
    }

    #[test]
    fn zero_length_span_returns_initial_state() {
        let y0 = Vector::from(vec![3.0]);
        let result = Rk4::new(0.1)
            .integrate(&Decay { k: 1.0 }, 2.0, y0.clone(), 2.0)
            .unwrap();
        assert_eq!(result.state, y0);
        assert_eq!(result.stats.steps_accepted, 0);
    }

    #[test]
    fn projection_is_applied_after_each_step() {
        let result = Rk4::new(0.5)
            .integrate(&Logistic { r: 10.0 }, 0.0, Vector::from(vec![0.5]), 5.0)
            .unwrap();
        assert!(result.state[0] <= 1.0 && result.state[0] >= 0.0);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let err = Rk4::new(0.1)
            .integrate(&Harmonic, 0.0, Vector::from(vec![1.0]), 1.0)
            .unwrap_err();
        assert!(matches!(err, OdeError::DimensionMismatch { .. }));
    }

    #[test]
    #[should_panic(expected = "step size must be positive")]
    fn non_positive_step_panics() {
        let _ = Rk4::new(0.0);
    }

    #[test]
    fn stats_count_rhs_evaluations() {
        let result = Rk4::new(0.1)
            .integrate(&Decay { k: 1.0 }, 0.0, Vector::from(vec![1.0]), 1.0)
            .unwrap();
        // 10 full steps, plus possibly one tiny closing step caused by
        // floating-point accumulation of 0.1.
        assert!(result.stats.steps_accepted >= 10 && result.stats.steps_accepted <= 11);
        assert_eq!(
            result.stats.rhs_evaluations,
            4 * result.stats.steps_accepted
        );
    }

    proptest! {
        #[test]
        fn prop_decay_error_is_fourth_order(k in 0.1f64..3.0, y0 in 0.1f64..10.0) {
            let exact = y0 * (-k).exp();
            let coarse = Rk4::new(0.1)
                .integrate(&Decay { k }, 0.0, Vector::from(vec![y0]), 1.0)
                .unwrap()
                .state[0];
            let fine = Rk4::new(0.05)
                .integrate(&Decay { k }, 0.0, Vector::from(vec![y0]), 1.0)
                .unwrap()
                .state[0];
            let err_coarse = (coarse - exact).abs();
            let err_fine = (fine - exact).abs();
            // Halving the step should reduce the error by roughly 2^4 = 16;
            // allow generous slack for round-off on very accurate cases.
            prop_assert!(err_fine <= err_coarse / 8.0 + 1e-12);
        }
    }
}
