/// Counters accumulated while integrating an ODE system.
///
/// These are useful both for diagnosing solver behaviour (how many steps were
/// rejected by the adaptive controller?) and for the benchmark harness, which
/// reports right-hand-side evaluation counts per steady-state evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntegrationStats {
    /// Number of accepted steps.
    pub steps_accepted: usize,
    /// Number of rejected (retried) steps.
    pub steps_rejected: usize,
    /// Number of right-hand-side evaluations.
    pub rhs_evaluations: usize,
    /// Number of Jacobian evaluations (implicit solvers only).
    pub jacobian_evaluations: usize,
    /// Number of Newton iterations (implicit solvers only).
    pub newton_iterations: usize,
}

impl IntegrationStats {
    /// Creates a zeroed statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of attempted steps (accepted + rejected).
    pub fn steps_attempted(&self) -> usize {
        self.steps_accepted + self.steps_rejected
    }

    /// Fraction of attempted steps that were accepted, or 1.0 if no steps were
    /// attempted.
    pub fn acceptance_rate(&self) -> f64 {
        let attempted = self.steps_attempted();
        if attempted == 0 {
            1.0
        } else {
            self.steps_accepted as f64 / attempted as f64
        }
    }

    /// Merges counters from another record into this one.
    pub fn merge(&mut self, other: &IntegrationStats) {
        self.steps_accepted += other.steps_accepted;
        self.steps_rejected += other.steps_rejected;
        self.rhs_evaluations += other.rhs_evaluations;
        self.jacobian_evaluations += other.jacobian_evaluations;
        self.newton_iterations += other.newton_iterations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_rate_handles_zero_steps() {
        assert_eq!(IntegrationStats::new().acceptance_rate(), 1.0);
    }

    #[test]
    fn acceptance_rate_counts_rejections() {
        let stats = IntegrationStats {
            steps_accepted: 3,
            steps_rejected: 1,
            ..Default::default()
        };
        assert_eq!(stats.steps_attempted(), 4);
        assert!((stats.acceptance_rate() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = IntegrationStats {
            steps_accepted: 1,
            steps_rejected: 2,
            rhs_evaluations: 3,
            jacobian_evaluations: 4,
            newton_iterations: 5,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.steps_accepted, 2);
        assert_eq!(a.steps_rejected, 4);
        assert_eq!(a.rhs_evaluations, 6);
        assert_eq!(a.jacobian_evaluations, 8);
        assert_eq!(a.newton_iterations, 10);
    }
}
