use pathway_linalg::Vector;

use crate::{IntegrationStats, Integrator, OdeError, OdeSystem};

/// Options for the steady-state driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyStateOptions {
    /// Length of each integration window between convergence checks.
    pub window: f64,
    /// Convergence threshold on the infinity norm of the derivative, scaled by
    /// `1 + |y|`.
    pub derivative_tol: f64,
    /// Convergence threshold on the relative state change across a window.
    pub state_change_tol: f64,
    /// Maximum simulated time before giving up.
    pub max_time: f64,
}

impl Default for SteadyStateOptions {
    fn default() -> Self {
        SteadyStateOptions {
            window: 10.0,
            derivative_tol: 1e-6,
            state_change_tol: 1e-7,
            max_time: 10_000.0,
        }
    }
}

/// A steady-state point of an ODE system.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyState {
    /// Steady-state state vector.
    pub state: Vector,
    /// Simulated time needed to reach the steady state.
    pub simulated_time: f64,
    /// Infinity norm of the derivative at the reported state.
    pub residual: f64,
    /// Accumulated integration statistics.
    pub stats: IntegrationStats,
}

/// Repeatedly integrates a system in windows until the state stops changing.
///
/// This is how the photosynthesis model is evaluated: enzyme concentrations
/// define the system, the driver finds the metabolic steady state, and the
/// CO₂ uptake rate is read from that state.
///
/// # Example
///
/// ```
/// use pathway_ode::{OdeSystem, Rk4, SteadyStateDriver, SteadyStateOptions};
/// use pathway_linalg::Vector;
///
/// /// Relaxation towards y = 3.
/// struct Relax;
/// impl OdeSystem for Relax {
///     fn dim(&self) -> usize { 1 }
///     fn rhs(&self, _t: f64, y: &Vector, dydt: &mut Vector) { dydt[0] = 3.0 - y[0]; }
/// }
///
/// # fn main() -> Result<(), pathway_ode::OdeError> {
/// let driver = SteadyStateDriver::new(Rk4::new(0.01), SteadyStateOptions::default());
/// let steady = driver.run(&Relax, Vector::from(vec![0.0]))?;
/// assert!((steady.state[0] - 3.0).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SteadyStateDriver<I> {
    integrator: I,
    options: SteadyStateOptions,
}

impl<I: Integrator> SteadyStateDriver<I> {
    /// Creates a driver around an integrator.
    pub fn new(integrator: I, options: SteadyStateOptions) -> Self {
        SteadyStateDriver {
            integrator,
            options,
        }
    }

    /// The configured options.
    pub fn options(&self) -> &SteadyStateOptions {
        &self.options
    }

    /// Runs the system to steady state starting from `y0`.
    ///
    /// # Errors
    ///
    /// * [`OdeError::InvalidParameter`] if the options are inconsistent.
    /// * [`OdeError::SteadyStateNotReached`] if `max_time` is exhausted.
    /// * Any error produced by the underlying integrator.
    pub fn run<S: OdeSystem>(&self, system: &S, y0: Vector) -> crate::Result<SteadyState> {
        if !crate::is_strictly_positive(self.options.window) {
            return Err(OdeError::InvalidParameter(
                "steady-state window must be positive".into(),
            ));
        }
        if !crate::is_at_least(self.options.max_time, self.options.window) {
            return Err(OdeError::InvalidParameter(
                "max_time must be at least one window".into(),
            ));
        }

        let dim = system.dim();
        let mut stats = IntegrationStats::new();
        let mut t = 0.0;
        let mut y = y0;
        let mut dydt = Vector::zeros(dim);

        while t < self.options.max_time {
            let window_end = (t + self.options.window).min(self.options.max_time);
            let before = y.clone();
            let result = self.integrator.integrate(system, t, y, window_end)?;
            stats.merge(&result.stats);
            y = result.state;
            t = result.time;

            system.rhs(t, &y, &mut dydt);
            stats.rhs_evaluations += 1;
            let residual = dydt.norm_inf() / (1.0 + y.norm_inf());
            let change = {
                let diff = &y - &before;
                diff.norm_inf() / (1.0 + y.norm_inf())
            };
            if residual <= self.options.derivative_tol || change <= self.options.state_change_tol {
                return Ok(SteadyState {
                    state: y,
                    simulated_time: t,
                    residual,
                    stats,
                });
            }
        }

        system.rhs(t, &y, &mut dydt);
        Err(OdeError::SteadyStateNotReached {
            simulated_time: t,
            residual: dydt.norm_inf(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::test_systems::{Decay, Logistic};
    use crate::{BackwardEuler, Rk4, Rkf45};

    struct Relax {
        target: f64,
    }

    impl OdeSystem for Relax {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, _t: f64, y: &Vector, dydt: &mut Vector) {
            dydt[0] = self.target - y[0];
        }
    }

    #[test]
    fn relaxation_reaches_its_target() {
        let driver = SteadyStateDriver::new(Rk4::new(0.01), SteadyStateOptions::default());
        let steady = driver
            .run(&Relax { target: 5.0 }, Vector::from(vec![0.0]))
            .unwrap();
        assert!((steady.state[0] - 5.0).abs() < 1e-4);
        assert!(steady.simulated_time > 0.0);
    }

    #[test]
    fn decay_reaches_zero() {
        let driver = SteadyStateDriver::new(Rkf45::default(), SteadyStateOptions::default());
        let steady = driver
            .run(&Decay { k: 0.7 }, Vector::from(vec![10.0]))
            .unwrap();
        assert!(steady.state[0].abs() < 1e-3);
    }

    #[test]
    fn logistic_growth_saturates_at_carrying_capacity() {
        let driver = SteadyStateDriver::new(Rk4::new(0.01), SteadyStateOptions::default());
        let steady = driver
            .run(&Logistic { r: 2.0 }, Vector::from(vec![0.01]))
            .unwrap();
        assert!((steady.state[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn implicit_integrator_also_reaches_steady_state() {
        let driver = SteadyStateDriver::new(BackwardEuler::new(0.1), SteadyStateOptions::default());
        let steady = driver
            .run(&Relax { target: -2.0 }, Vector::from(vec![4.0]))
            .unwrap();
        assert!((steady.state[0] + 2.0).abs() < 1e-3);
    }

    #[test]
    fn oscillating_system_never_converges_and_reports_failure() {
        use crate::system::test_systems::Harmonic;
        let options = SteadyStateOptions {
            window: 5.0,
            max_time: 50.0,
            derivative_tol: 1e-12,
            state_change_tol: 1e-12,
        };
        let driver = SteadyStateDriver::new(Rk4::new(0.01), options);
        let err = driver
            .run(&Harmonic, Vector::from(vec![1.0, 0.0]))
            .unwrap_err();
        assert!(matches!(err, OdeError::SteadyStateNotReached { .. }));
    }

    #[test]
    fn invalid_options_are_rejected() {
        let options = SteadyStateOptions {
            window: 0.0,
            ..Default::default()
        };
        let driver = SteadyStateDriver::new(Rk4::new(0.01), options);
        assert!(matches!(
            driver.run(&Decay { k: 1.0 }, Vector::from(vec![1.0])),
            Err(OdeError::InvalidParameter(_))
        ));
        let options = SteadyStateOptions {
            window: 10.0,
            max_time: 1.0,
            ..Default::default()
        };
        let driver = SteadyStateDriver::new(Rk4::new(0.01), options);
        assert!(matches!(
            driver.run(&Decay { k: 1.0 }, Vector::from(vec![1.0])),
            Err(OdeError::InvalidParameter(_))
        ));
    }

    #[test]
    fn stats_accumulate_across_windows() {
        let driver = SteadyStateDriver::new(
            Rk4::new(0.01),
            SteadyStateOptions {
                window: 1.0,
                derivative_tol: 1e-9,
                state_change_tol: 1e-10,
                max_time: 100.0,
            },
        );
        let steady = driver
            .run(&Relax { target: 1.0 }, Vector::from(vec![0.0]))
            .unwrap();
        assert!(steady.stats.steps_accepted >= 100);
        assert!(steady.stats.rhs_evaluations > steady.stats.steps_accepted);
    }
}
