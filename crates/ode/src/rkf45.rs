use pathway_linalg::Vector;

use crate::system::validate_inputs;
use crate::{
    is_strictly_positive, IntegrationResult, IntegrationStats, Integrator, OdeError, OdeSystem,
};

/// Options shared by the adaptive embedded Runge–Kutta solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveOptions {
    /// Absolute error tolerance per step.
    pub abs_tol: f64,
    /// Relative error tolerance per step.
    pub rel_tol: f64,
    /// Initial step size guess.
    pub initial_step: f64,
    /// Smallest step size the controller may use before giving up.
    pub min_step: f64,
    /// Largest step size the controller may take.
    pub max_step: f64,
    /// Hard cap on the number of accepted + rejected steps.
    pub max_steps: usize,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            abs_tol: 1e-8,
            rel_tol: 1e-6,
            initial_step: 1e-3,
            min_step: 1e-12,
            max_step: 1.0,
            max_steps: 10_000_000,
        }
    }
}

impl AdaptiveOptions {
    fn validate(&self) -> crate::Result<()> {
        if !is_strictly_positive(self.abs_tol) || !is_strictly_positive(self.rel_tol) {
            return Err(OdeError::InvalidParameter(
                "tolerances must be positive".into(),
            ));
        }
        if !is_strictly_positive(self.initial_step)
            || !is_strictly_positive(self.min_step)
            || !is_strictly_positive(self.max_step)
        {
            return Err(OdeError::InvalidParameter(
                "step sizes must be positive".into(),
            ));
        }
        if self.min_step > self.max_step {
            return Err(OdeError::InvalidParameter(
                "minimum step exceeds maximum step".into(),
            ));
        }
        Ok(())
    }
}

/// Butcher tableau of an embedded 4(5) pair.
struct EmbeddedTableau {
    /// Node fractions `c`.
    c: [f64; 6],
    /// Stage coefficients, row `i` holds `a[i][0..i]`.
    a: [[f64; 5]; 6],
    /// 5th-order weights.
    b5: [f64; 6],
    /// 4th-order weights (error estimator).
    b4: [f64; 6],
}

const FEHLBERG: EmbeddedTableau = EmbeddedTableau {
    c: [0.0, 0.25, 3.0 / 8.0, 12.0 / 13.0, 1.0, 0.5],
    a: [
        [0.0, 0.0, 0.0, 0.0, 0.0],
        [0.25, 0.0, 0.0, 0.0, 0.0],
        [3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0],
        [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0, 0.0, 0.0],
        [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0, 0.0],
        [
            -8.0 / 27.0,
            2.0,
            -3544.0 / 2565.0,
            1859.0 / 4104.0,
            -11.0 / 40.0,
        ],
    ],
    b5: [
        16.0 / 135.0,
        0.0,
        6656.0 / 12825.0,
        28561.0 / 56430.0,
        -9.0 / 50.0,
        2.0 / 55.0,
    ],
    b4: [
        25.0 / 216.0,
        0.0,
        1408.0 / 2565.0,
        2197.0 / 4104.0,
        -1.0 / 5.0,
        0.0,
    ],
};

const CASH_KARP: EmbeddedTableau = EmbeddedTableau {
    c: [0.0, 0.2, 0.3, 0.6, 1.0, 7.0 / 8.0],
    a: [
        [0.0, 0.0, 0.0, 0.0, 0.0],
        [0.2, 0.0, 0.0, 0.0, 0.0],
        [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0],
        [0.3, -0.9, 1.2, 0.0, 0.0],
        [-11.0 / 54.0, 2.5, -70.0 / 27.0, 35.0 / 27.0, 0.0],
        [
            1631.0 / 55296.0,
            175.0 / 512.0,
            575.0 / 13824.0,
            44275.0 / 110592.0,
            253.0 / 4096.0,
        ],
    ],
    b5: [
        37.0 / 378.0,
        0.0,
        250.0 / 621.0,
        125.0 / 594.0,
        0.0,
        512.0 / 1771.0,
    ],
    b4: [
        2825.0 / 27648.0,
        0.0,
        18575.0 / 48384.0,
        13525.0 / 55296.0,
        277.0 / 14336.0,
        0.25,
    ],
};

fn integrate_embedded<S: OdeSystem>(
    tableau: &EmbeddedTableau,
    options: &AdaptiveOptions,
    system: &S,
    t0: f64,
    y0: Vector,
    t_end: f64,
) -> crate::Result<IntegrationResult> {
    options.validate()?;
    validate_inputs(system, &y0, t0, t_end)?;
    let dim = system.dim();
    let mut stats = IntegrationStats::new();
    let mut t = t0;
    let mut y = y0;
    let mut h = options.initial_step.min(options.max_step);

    let mut k = vec![Vector::zeros(dim); 6];
    let mut stage = Vector::zeros(dim);

    while t < t_end {
        if stats.steps_attempted() >= options.max_steps {
            return Err(OdeError::MaxStepsExceeded {
                time: t,
                steps: stats.steps_attempted(),
            });
        }
        // Underflow is only an error when the *controller* drives the step
        // below `min_step`; test before clamping to the interval end so the
        // final sliver (`t_end - t < min_step`) integrates instead of
        // spuriously failing.
        h = h.min(options.max_step);
        if h < options.min_step {
            return Err(OdeError::StepSizeUnderflow { time: t, step: h });
        }
        h = h.min(t_end - t);

        // Evaluate the six stages.
        for s in 0..6 {
            for i in 0..dim {
                let mut acc = y[i];
                for (j, kj) in k.iter().enumerate().take(s) {
                    acc += h * tableau.a[s][j] * kj[i];
                }
                stage[i] = acc;
            }
            let (head, tail) = k.split_at_mut(s);
            let _ = head;
            system.rhs(t + tableau.c[s] * h, &stage, &mut tail[0]);
            stats.rhs_evaluations += 1;
        }

        // 5th-order solution and embedded error estimate.
        let mut error_norm: f64 = 0.0;
        let mut y_new = y.clone();
        for i in 0..dim {
            let mut high = 0.0;
            let mut low = 0.0;
            for (s, ks) in k.iter().enumerate() {
                high += tableau.b5[s] * ks[i];
                low += tableau.b4[s] * ks[i];
            }
            y_new[i] = y[i] + h * high;
            let err = h * (high - low);
            let scale = options.abs_tol + options.rel_tol * y[i].abs().max(y_new[i].abs());
            error_norm = error_norm.max((err / scale).abs());
        }

        if !y_new.is_finite() {
            // Treat a blow-up inside a trial step as a rejection and shrink.
            stats.steps_rejected += 1;
            h *= 0.25;
            if h < options.min_step {
                return Err(OdeError::NonFiniteState { time: t });
            }
            continue;
        }

        if error_norm <= 1.0 {
            t += h;
            y = y_new;
            system.project(t, &mut y);
            stats.steps_accepted += 1;
        } else {
            stats.steps_rejected += 1;
        }

        // Standard step controller with safety factor and growth limits.
        let factor = if error_norm > 0.0 {
            0.9 * error_norm.powf(-0.2)
        } else {
            5.0
        };
        h *= factor.clamp(0.2, 5.0);
    }

    Ok(IntegrationResult {
        time: t_end,
        state: y,
        stats,
    })
}

/// Adaptive Runge–Kutta–Fehlberg 4(5) integrator.
///
/// # Example
///
/// ```
/// use pathway_ode::{OdeSystem, Rkf45, Integrator, AdaptiveOptions};
/// use pathway_linalg::Vector;
///
/// struct Decay;
/// impl OdeSystem for Decay {
///     fn dim(&self) -> usize { 1 }
///     fn rhs(&self, _t: f64, y: &Vector, dydt: &mut Vector) { dydt[0] = -y[0]; }
/// }
///
/// # fn main() -> Result<(), pathway_ode::OdeError> {
/// let solver = Rkf45::new(AdaptiveOptions::default());
/// let result = solver.integrate(&Decay, 0.0, Vector::from(vec![1.0]), 5.0)?;
/// assert!((result.state[0] - (-5.0f64).exp()).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rkf45 {
    options: AdaptiveOptions,
}

impl Rkf45 {
    /// Creates a solver with the given adaptive options.
    pub fn new(options: AdaptiveOptions) -> Self {
        Rkf45 { options }
    }

    /// The configured options.
    pub fn options(&self) -> &AdaptiveOptions {
        &self.options
    }
}

impl Default for Rkf45 {
    fn default() -> Self {
        Rkf45::new(AdaptiveOptions::default())
    }
}

impl Integrator for Rkf45 {
    fn integrate<S: OdeSystem>(
        &self,
        system: &S,
        t0: f64,
        y0: Vector,
        t_end: f64,
    ) -> crate::Result<IntegrationResult> {
        integrate_embedded(&FEHLBERG, &self.options, system, t0, y0, t_end)
    }
}

/// Adaptive Cash–Karp 4(5) integrator.
///
/// Uses the same step controller as [`Rkf45`] but the Cash–Karp coefficients,
/// which tend to behave better on mildly stiff kinetics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CashKarp {
    options: AdaptiveOptions,
}

impl CashKarp {
    /// Creates a solver with the given adaptive options.
    pub fn new(options: AdaptiveOptions) -> Self {
        CashKarp { options }
    }

    /// The configured options.
    pub fn options(&self) -> &AdaptiveOptions {
        &self.options
    }
}

impl Default for CashKarp {
    fn default() -> Self {
        CashKarp::new(AdaptiveOptions::default())
    }
}

impl Integrator for CashKarp {
    fn integrate<S: OdeSystem>(
        &self,
        system: &S,
        t0: f64,
        y0: Vector,
        t_end: f64,
    ) -> crate::Result<IntegrationResult> {
        integrate_embedded(&CASH_KARP, &self.options, system, t0, y0, t_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::test_systems::{Decay, Harmonic, StiffLinear};

    #[test]
    fn rkf45_decay_matches_analytic_solution() {
        let result = Rkf45::default()
            .integrate(&Decay { k: 1.5 }, 0.0, Vector::from(vec![2.0]), 2.0)
            .unwrap();
        assert!((result.state[0] - 2.0 * (-3.0f64).exp()).abs() < 1e-6);
    }

    #[test]
    fn cash_karp_decay_matches_analytic_solution() {
        let result = CashKarp::default()
            .integrate(&Decay { k: 1.5 }, 0.0, Vector::from(vec![2.0]), 2.0)
            .unwrap();
        assert!((result.state[0] - 2.0 * (-3.0f64).exp()).abs() < 1e-6);
    }

    #[test]
    fn adaptive_solver_takes_fewer_steps_on_smooth_problems_than_tiny_rk4() {
        let result = Rkf45::default()
            .integrate(&Decay { k: 0.1 }, 0.0, Vector::from(vec![1.0]), 10.0)
            .unwrap();
        // A fixed-step RK4 at h=1e-3 would need 10_000 steps.
        assert!(result.stats.steps_accepted < 1_000);
    }

    #[test]
    fn harmonic_oscillator_stays_accurate_over_many_periods() {
        let result = Rkf45::new(AdaptiveOptions {
            rel_tol: 1e-9,
            abs_tol: 1e-12,
            ..Default::default()
        })
        .integrate(&Harmonic, 0.0, Vector::from(vec![1.0, 0.0]), 20.0)
        .unwrap();
        assert!((result.state[0] - 20.0f64.cos()).abs() < 1e-5);
        assert!((result.state[1] + 20.0f64.sin()).abs() < 1e-5);
    }

    #[test]
    fn stiff_problem_is_solved_with_small_steps() {
        let result = Rkf45::default()
            .integrate(&StiffLinear, 0.0, Vector::from(vec![1.0, 1.0]), 0.1)
            .unwrap();
        // Fast mode decays almost instantly; slow mode barely moves.
        assert!(result.state[0].abs() < 1e-2);
        assert!((result.state[1] - (-0.05f64).exp()).abs() < 1e-4);
        // The controller is forced into many steps by the fast mode.
        assert!(result.stats.steps_accepted > 10);
    }

    #[test]
    fn rejected_steps_are_counted() {
        let options = AdaptiveOptions {
            initial_step: 10.0,
            max_step: 10.0,
            ..Default::default()
        };
        let result = Rkf45::new(options)
            .integrate(&Decay { k: 5.0 }, 0.0, Vector::from(vec![1.0]), 1.0)
            .unwrap();
        assert!(result.stats.steps_rejected > 0);
    }

    #[test]
    fn invalid_options_are_rejected() {
        let options = AdaptiveOptions {
            abs_tol: -1.0,
            ..Default::default()
        };
        assert!(matches!(
            Rkf45::new(options).integrate(&Decay { k: 1.0 }, 0.0, Vector::from(vec![1.0]), 1.0),
            Err(OdeError::InvalidParameter(_))
        ));
        let options = AdaptiveOptions {
            min_step: 1.0,
            max_step: 0.5,
            ..Default::default()
        };
        assert!(matches!(
            Rkf45::new(options).integrate(&Decay { k: 1.0 }, 0.0, Vector::from(vec![1.0]), 1.0),
            Err(OdeError::InvalidParameter(_))
        ));
    }

    #[test]
    fn max_steps_cap_reports_max_steps_exceeded() {
        let options = AdaptiveOptions {
            max_steps: 3,
            initial_step: 1e-6,
            max_step: 1e-6,
            ..Default::default()
        };
        assert!(matches!(
            Rkf45::new(options).integrate(&Decay { k: 1.0 }, 0.0, Vector::from(vec![1.0]), 1.0),
            Err(OdeError::MaxStepsExceeded { steps: 3, .. })
        ));
    }

    #[test]
    fn a_single_step_budget_is_reported_as_exhausted() {
        let options = AdaptiveOptions {
            max_steps: 1,
            ..Default::default()
        };
        let err = Rkf45::new(options)
            .integrate(&Decay { k: 1.0 }, 0.0, Vector::from(vec![1.0]), 1.0)
            .unwrap_err();
        assert!(matches!(err, OdeError::MaxStepsExceeded { steps: 1, .. }));
    }

    #[test]
    fn final_sliver_shorter_than_min_step_integrates() {
        // The interval end lands inside the last half of `min_step`: the
        // clamped final step must be taken, not reported as an underflow.
        let options = AdaptiveOptions::default();
        let t_end = 0.5 * options.min_step;
        for solver_result in [
            Rkf45::new(options).integrate(&Decay { k: 1.0 }, 0.0, Vector::from(vec![1.0]), t_end),
            CashKarp::new(options).integrate(
                &Decay { k: 1.0 },
                0.0,
                Vector::from(vec![1.0]),
                t_end,
            ),
        ] {
            let result = solver_result.expect("the clamped final step is allowed");
            assert!((result.state[0] - 1.0).abs() < 1e-9);
            assert_eq!(result.time, t_end);
        }
    }

    #[test]
    fn sliver_at_the_end_of_a_long_integration_is_allowed() {
        // An interval that is many steps long but ends `0.5 * min_step` past
        // a representable point must also succeed.
        let options = AdaptiveOptions::default();
        let t_end = 1.0 + 0.5 * options.min_step;
        let result = Rkf45::new(options)
            .integrate(&Decay { k: 1.0 }, 0.0, Vector::from(vec![1.0]), t_end)
            .expect("trailing sliver must not underflow");
        assert!((result.state[0] - (-t_end).exp()).abs() < 1e-6);
    }

    #[test]
    fn fehlberg_and_cash_karp_agree() {
        let a = Rkf45::default()
            .integrate(&Harmonic, 0.0, Vector::from(vec![0.0, 1.0]), 3.0)
            .unwrap();
        let b = CashKarp::default()
            .integrate(&Harmonic, 0.0, Vector::from(vec![0.0, 1.0]), 3.0)
            .unwrap();
        assert!((a.state[0] - b.state[0]).abs() < 1e-5);
        assert!((a.state[1] - b.state[1]).abs() < 1e-5);
    }
}
