use pathway_linalg::{LuDecomposition, Matrix, Vector};

use crate::system::validate_inputs;
use crate::{IntegrationResult, IntegrationStats, Integrator, OdeError, OdeSystem};

/// A backward-Euler integrator with a damped Newton corrector.
///
/// Backward Euler is only first-order accurate, but it is L-stable: on stiff
/// kinetic systems it can march to steady state with step sizes thousands of
/// times larger than an explicit method would tolerate. The Jacobian is
/// approximated by forward finite differences.
///
/// The Newton loop is allocation-free after the first step: the Jacobian,
/// Newton matrix, residual and update share one workspace across all steps,
/// solves go through [`LuDecomposition::solve_into`], and the first Newton
/// iteration of each step runs a full partial-pivoting refactorization whose
/// pivot order later iterations of the same step *reuse*
/// ([`LuDecomposition::refactor_reusing_pivots`]) — the Newton matrix drifts
/// only slightly between iterations, so the old pivot order stays valid and
/// the pivot search and row swaps are skipped (with an automatic fall back
/// to a full refactorization if it does not).
///
/// # Example
///
/// ```
/// use pathway_ode::{OdeSystem, BackwardEuler, Integrator};
/// use pathway_linalg::Vector;
///
/// /// A stiff decay: dy/dt = -1000 (y - cos(t)).
/// struct StiffRelaxation;
/// impl OdeSystem for StiffRelaxation {
///     fn dim(&self) -> usize { 1 }
///     fn rhs(&self, t: f64, y: &Vector, dydt: &mut Vector) {
///         dydt[0] = -1000.0 * (y[0] - t.cos());
///     }
/// }
///
/// # fn main() -> Result<(), pathway_ode::OdeError> {
/// let solver = BackwardEuler::new(0.05);
/// let result = solver.integrate(&StiffRelaxation, 0.0, Vector::from(vec![0.0]), 2.0)?;
/// // The solution relaxes onto cos(t) despite the large step.
/// assert!((result.state[0] - 2.0f64.cos()).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackwardEuler {
    step: f64,
    newton_tol: f64,
    max_newton_iterations: usize,
    jacobian_epsilon: f64,
}

impl BackwardEuler {
    /// Creates a solver with the given step size and default Newton settings
    /// (tolerance `1e-10`, at most 25 iterations per step).
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive and finite.
    pub fn new(step: f64) -> Self {
        assert!(
            step.is_finite() && step > 0.0,
            "step size must be positive and finite"
        );
        BackwardEuler {
            step,
            newton_tol: 1e-10,
            max_newton_iterations: 25,
            jacobian_epsilon: 1e-7,
        }
    }

    /// Overrides the Newton convergence tolerance.
    #[must_use]
    pub fn with_newton_tolerance(mut self, tol: f64) -> Self {
        self.newton_tol = tol;
        self
    }

    /// Overrides the maximum number of Newton iterations per step.
    #[must_use]
    pub fn with_max_newton_iterations(mut self, iterations: usize) -> Self {
        self.max_newton_iterations = iterations;
        self
    }

    /// The configured step size.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Finite-difference Jacobian of the right-hand side at `(t, y)`,
    /// written into the workspace's `jac` (no allocation).
    fn numerical_jacobian_into<S: OdeSystem>(
        &self,
        system: &S,
        t: f64,
        y: &Vector,
        f0: &Vector,
        ws: &mut NewtonWorkspace,
        stats: &mut IntegrationStats,
    ) {
        let dim = system.dim();
        ws.perturbed.as_mut_slice().copy_from_slice(y.as_slice());
        for j in 0..dim {
            let h = self.jacobian_epsilon * (1.0 + y[j].abs());
            ws.perturbed[j] = y[j] + h;
            system.rhs(t, &ws.perturbed, &mut ws.f1);
            stats.rhs_evaluations += 1;
            let jac = ws.jac.as_mut_slice();
            for i in 0..dim {
                jac[i * dim + j] = (ws.f1[i] - f0[i]) / h;
            }
            ws.perturbed[j] = y[j];
        }
        stats.jacobian_evaluations += 1;
    }
}

/// Buffers reused across every Newton iteration of every step.
struct NewtonWorkspace {
    jac: Matrix,
    newton_matrix: Matrix,
    residual: Vector,
    delta: Vector,
    candidate: Vector,
    perturbed: Vector,
    f1: Vector,
    /// The LU storage (and, within a step, the pivot order) carried from
    /// solve to solve; `None` until the first factorization.
    lu: Option<LuDecomposition>,
}

impl NewtonWorkspace {
    fn new(dim: usize) -> Self {
        NewtonWorkspace {
            jac: Matrix::zeros(dim, dim),
            newton_matrix: Matrix::zeros(dim, dim),
            residual: Vector::zeros(dim),
            delta: Vector::zeros(dim),
            candidate: Vector::zeros(dim),
            perturbed: Vector::zeros(dim),
            f1: Vector::zeros(dim),
            lu: None,
        }
    }
}

impl Integrator for BackwardEuler {
    fn integrate<S: OdeSystem>(
        &self,
        system: &S,
        t0: f64,
        y0: Vector,
        t_end: f64,
    ) -> crate::Result<IntegrationResult> {
        validate_inputs(system, &y0, t0, t_end)?;
        let dim = system.dim();
        let mut stats = IntegrationStats::new();
        let mut t = t0;
        let mut y = y0;
        let mut f = Vector::zeros(dim);
        let mut ws = NewtonWorkspace::new(dim);

        while t < t_end {
            let h = self.step.min(t_end - t);
            let t_new = t + h;

            // Newton iteration for y_new solving: G(y_new) = y_new - y - h f(t_new, y_new) = 0.
            let mut y_new = y.clone();
            // Predictor: explicit Euler.
            system.rhs(t, &y, &mut f);
            stats.rhs_evaluations += 1;
            y_new
                .axpy_mut(h, &f)
                .expect("dimensions match by construction");

            let mut converged = false;
            for iteration in 0..self.max_newton_iterations {
                system.rhs(t_new, &y_new, &mut f);
                stats.rhs_evaluations += 1;
                stats.newton_iterations += 1;

                // Residual G = y_new - y - h f.
                for i in 0..dim {
                    ws.residual[i] = y_new[i] - y[i] - h * f[i];
                }
                if ws.residual.norm_inf() <= self.newton_tol * (1.0 + y_new.norm_inf()) {
                    converged = true;
                    break;
                }

                // Jacobian of G: I - h J, built in place.
                self.numerical_jacobian_into(system, t_new, &y_new, &f, &mut ws, &mut stats);
                let nm = ws.newton_matrix.as_mut_slice();
                for (dst, &src) in nm.iter_mut().zip(ws.jac.as_slice()) {
                    *dst = -h * src;
                }
                for i in 0..dim {
                    nm[i * dim + i] += 1.0;
                }
                // Factor: full pivoting on the first iteration of the step,
                // pivot reuse afterwards (the Newton matrix drifts slowly
                // within a step), full refactorization as the fallback.
                let factored = match &mut ws.lu {
                    None => LuDecomposition::new(&ws.newton_matrix).map(|lu| ws.lu = Some(lu)),
                    Some(lu) if iteration == 0 => lu.refactor(&ws.newton_matrix),
                    Some(lu) => lu
                        .refactor_reusing_pivots(&ws.newton_matrix)
                        .or_else(|_| lu.refactor(&ws.newton_matrix)),
                };
                let solved = factored.and_then(|()| {
                    ws.lu
                        .as_ref()
                        .expect("factorization success stores the decomposition")
                        .solve_into(&ws.residual, &mut ws.delta)
                });
                if solved.is_err() {
                    return Err(OdeError::NewtonDivergence {
                        time: t_new,
                        iterations: stats.newton_iterations,
                    });
                }
                // Damped update: full step unless it would blow up.
                let mut damping = 1.0;
                loop {
                    ws.candidate
                        .as_mut_slice()
                        .copy_from_slice(y_new.as_slice());
                    ws.candidate
                        .axpy_mut(-damping, &ws.delta)
                        .expect("dimensions match");
                    if ws.candidate.is_finite() {
                        std::mem::swap(&mut y_new, &mut ws.candidate);
                        break;
                    }
                    damping *= 0.5;
                    if damping < 1e-4 {
                        return Err(OdeError::NewtonDivergence {
                            time: t_new,
                            iterations: stats.newton_iterations,
                        });
                    }
                }
            }

            if !converged {
                return Err(OdeError::NewtonDivergence {
                    time: t_new,
                    iterations: stats.newton_iterations,
                });
            }
            if !y_new.is_finite() {
                return Err(OdeError::NonFiniteState { time: t_new });
            }

            y = y_new;
            t = t_new;
            system.project(t, &mut y);
            stats.steps_accepted += 1;
        }

        Ok(IntegrationResult {
            time: t_end,
            state: y,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::test_systems::{Decay, StiffLinear};

    #[test]
    fn decay_converges_to_analytic_solution_with_small_steps() {
        let result = BackwardEuler::new(1e-3)
            .integrate(&Decay { k: 1.0 }, 0.0, Vector::from(vec![1.0]), 1.0)
            .unwrap();
        assert!((result.state[0] - (-1.0f64).exp()).abs() < 1e-3);
    }

    #[test]
    fn stiff_system_is_stable_with_large_steps() {
        // Explicit RK4 with h = 0.01 would blow up (eigenvalue -1000).
        let result = BackwardEuler::new(0.01)
            .integrate(&StiffLinear, 0.0, Vector::from(vec![1.0, 1.0]), 10.0)
            .unwrap();
        assert!(result.state[0].abs() < 1e-2);
        assert!((result.state[1] - (-5.0f64).exp()).abs() < 1e-2);
    }

    #[test]
    fn newton_counters_are_populated() {
        let result = BackwardEuler::new(0.1)
            .integrate(&Decay { k: 1.0 }, 0.0, Vector::from(vec![1.0]), 1.0)
            .unwrap();
        assert!(result.stats.newton_iterations >= result.stats.steps_accepted);
        assert!(result.stats.jacobian_evaluations > 0);
    }

    #[test]
    fn builder_overrides_are_applied() {
        let solver = BackwardEuler::new(0.1)
            .with_newton_tolerance(1e-6)
            .with_max_newton_iterations(3);
        assert_eq!(solver.step(), 0.1);
        // Still solves an easy problem with the reduced iteration budget.
        let result = solver
            .integrate(&Decay { k: 1.0 }, 0.0, Vector::from(vec![1.0]), 0.5)
            .unwrap();
        assert!(result.state[0] > 0.0);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let err = BackwardEuler::new(0.1)
            .integrate(&StiffLinear, 0.0, Vector::from(vec![1.0]), 1.0)
            .unwrap_err();
        assert!(matches!(err, OdeError::DimensionMismatch { .. }));
    }

    #[test]
    #[should_panic(expected = "step size must be positive")]
    fn non_positive_step_panics() {
        let _ = BackwardEuler::new(-0.5);
    }
}
