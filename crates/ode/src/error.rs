use std::fmt;

/// Error type for ODE integration failures.
#[derive(Debug, Clone, PartialEq)]
pub enum OdeError {
    /// A solver parameter was invalid (non-positive step, negative tolerance, ...).
    InvalidParameter(String),
    /// The state or its derivative became NaN or infinite during integration.
    NonFiniteState {
        /// Time at which the non-finite value was first observed.
        time: f64,
    },
    /// The adaptive step controller shrank the step below its minimum without
    /// meeting the error tolerance.
    StepSizeUnderflow {
        /// Time at which the controller gave up.
        time: f64,
        /// The step size at which the controller gave up.
        step: f64,
    },
    /// The hard cap on attempted steps was exhausted before reaching the end
    /// of the integration interval.
    MaxStepsExceeded {
        /// Time reached when the budget ran out.
        time: f64,
        /// Number of steps attempted (accepted + rejected).
        steps: usize,
    },
    /// The implicit corrector failed to converge.
    NewtonDivergence {
        /// Time of the failed step.
        time: f64,
        /// Number of Newton iterations attempted.
        iterations: usize,
    },
    /// The steady-state driver exhausted its horizon without converging.
    SteadyStateNotReached {
        /// Total simulated time at give-up.
        simulated_time: f64,
        /// The residual norm at give-up.
        residual: f64,
    },
    /// The initial state had a different dimension from the system.
    DimensionMismatch {
        /// Dimension declared by the system.
        expected: usize,
        /// Dimension of the supplied state.
        found: usize,
    },
}

impl fmt::Display for OdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OdeError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            OdeError::NonFiniteState { time } => {
                write!(f, "state became non-finite at t = {time}")
            }
            OdeError::StepSizeUnderflow { time, step } => {
                write!(f, "step size underflow ({step:e}) at t = {time}")
            }
            OdeError::MaxStepsExceeded { time, steps } => {
                write!(f, "exhausted the budget of {steps} steps at t = {time}")
            }
            OdeError::NewtonDivergence { time, iterations } => {
                write!(
                    f,
                    "newton corrector diverged at t = {time} after {iterations} iterations"
                )
            }
            OdeError::SteadyStateNotReached {
                simulated_time,
                residual,
            } => write!(
                f,
                "steady state not reached after {simulated_time} time units (residual {residual:e})"
            ),
            OdeError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "state dimension {found} does not match system dimension {expected}"
                )
            }
        }
    }
}

impl std::error::Error for OdeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OdeError::NonFiniteState { time: 1.5 };
        assert!(e.to_string().contains("1.5"));
        let e = OdeError::MaxStepsExceeded {
            time: 0.25,
            steps: 42,
        };
        assert!(e.to_string().contains("42") && e.to_string().contains("0.25"));
        let e = OdeError::DimensionMismatch {
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<OdeError>();
    }
}
