use pathway_linalg::Vector;

use crate::{IntegrationStats, OdeError};

/// A first-order ODE system `dy/dt = f(t, y)`.
///
/// Implementors describe the right-hand side of the system; the solvers in
/// this crate do the stepping. The photosynthesis model in
/// `pathway-photosynthesis` implements this trait for its metabolite pools.
///
/// # Example
///
/// ```
/// use pathway_ode::OdeSystem;
/// use pathway_linalg::Vector;
///
/// /// A damped harmonic oscillator: y'' = -y - 0.1 y'.
/// struct Oscillator;
///
/// impl OdeSystem for Oscillator {
///     fn dim(&self) -> usize { 2 }
///     fn rhs(&self, _t: f64, y: &Vector, dydt: &mut Vector) {
///         dydt[0] = y[1];
///         dydt[1] = -y[0] - 0.1 * y[1];
///     }
/// }
/// ```
pub trait OdeSystem {
    /// Number of state variables.
    fn dim(&self) -> usize;

    /// Evaluates the derivative `dydt = f(t, y)`.
    ///
    /// `dydt` has length [`OdeSystem::dim`] and may contain stale values on
    /// entry; implementations must overwrite every component.
    fn rhs(&self, t: f64, y: &Vector, dydt: &mut Vector);

    /// Optional projection applied after every accepted step.
    ///
    /// The default implementation does nothing. Models with physical
    /// positivity constraints (metabolite concentrations cannot go negative)
    /// override this to clamp the state.
    fn project(&self, _t: f64, _y: &mut Vector) {}
}

impl<T: OdeSystem + ?Sized> OdeSystem for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn rhs(&self, t: f64, y: &Vector, dydt: &mut Vector) {
        (**self).rhs(t, y, dydt)
    }

    fn project(&self, t: f64, y: &mut Vector) {
        (**self).project(t, y)
    }
}

/// Outcome of an integration over a time span.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegrationResult {
    /// Final time reached (equal to the requested end time on success).
    pub time: f64,
    /// State vector at [`IntegrationResult::time`].
    pub state: Vector,
    /// Bookkeeping counters accumulated during the run.
    pub stats: IntegrationStats,
}

/// A time integrator for [`OdeSystem`]s.
///
/// All solvers in this crate implement this trait so callers (notably the
/// [`crate::SteadyStateDriver`]) can be generic over the stepping scheme.
pub trait Integrator {
    /// Integrates `system` from `t0` with initial state `y0` until `t_end`.
    ///
    /// # Errors
    ///
    /// * [`OdeError::DimensionMismatch`] if `y0.len() != system.dim()`.
    /// * [`OdeError::NonFiniteState`] if the state blows up.
    /// * Solver-specific errors such as [`OdeError::StepSizeUnderflow`].
    fn integrate<S: OdeSystem>(
        &self,
        system: &S,
        t0: f64,
        y0: Vector,
        t_end: f64,
    ) -> crate::Result<IntegrationResult>;
}

/// Validates that the initial state matches the system dimension and the time
/// span is sensible. Shared by every solver.
pub(crate) fn validate_inputs<S: OdeSystem>(
    system: &S,
    y0: &Vector,
    t0: f64,
    t_end: f64,
) -> crate::Result<()> {
    if y0.len() != system.dim() {
        return Err(OdeError::DimensionMismatch {
            expected: system.dim(),
            found: y0.len(),
        });
    }
    if !t0.is_finite() || !t_end.is_finite() {
        return Err(OdeError::InvalidParameter(
            "integration time span must be finite".into(),
        ));
    }
    if t_end < t0 {
        return Err(OdeError::InvalidParameter(format!(
            "end time {t_end} precedes start time {t0}"
        )));
    }
    if !y0.is_finite() {
        return Err(OdeError::NonFiniteState { time: t0 });
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod test_systems {
    //! Reference systems with known solutions, shared by solver tests.
    use super::*;

    /// `dy/dt = -k y`, solution `y0 * exp(-k t)`.
    pub struct Decay {
        pub k: f64,
    }

    impl OdeSystem for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, _t: f64, y: &Vector, dydt: &mut Vector) {
            dydt[0] = -self.k * y[0];
        }
    }

    /// Undamped harmonic oscillator with unit angular frequency.
    pub struct Harmonic;

    impl OdeSystem for Harmonic {
        fn dim(&self) -> usize {
            2
        }
        fn rhs(&self, _t: f64, y: &Vector, dydt: &mut Vector) {
            dydt[0] = y[1];
            dydt[1] = -y[0];
        }
    }

    /// A stiff linear system: one fast mode (rate 1000) and one slow mode.
    pub struct StiffLinear;

    impl OdeSystem for StiffLinear {
        fn dim(&self) -> usize {
            2
        }
        fn rhs(&self, _t: f64, y: &Vector, dydt: &mut Vector) {
            dydt[0] = -1000.0 * y[0] + y[1];
            dydt[1] = -0.5 * y[1];
        }
    }

    /// Logistic growth towards a carrying capacity of 1.
    pub struct Logistic {
        pub r: f64,
    }

    impl OdeSystem for Logistic {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, _t: f64, y: &Vector, dydt: &mut Vector) {
            dydt[0] = self.r * y[0] * (1.0 - y[0]);
        }
        fn project(&self, _t: f64, y: &mut Vector) {
            y.clamp_mut(0.0, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_systems::*;
    use super::*;

    #[test]
    fn validate_inputs_accepts_good_arguments() {
        let y0 = Vector::from(vec![1.0]);
        assert!(validate_inputs(&Decay { k: 1.0 }, &y0, 0.0, 1.0).is_ok());
    }

    #[test]
    fn validate_inputs_rejects_bad_dimension() {
        let y0 = Vector::from(vec![1.0, 2.0]);
        assert!(matches!(
            validate_inputs(&Decay { k: 1.0 }, &y0, 0.0, 1.0),
            Err(OdeError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn validate_inputs_rejects_reversed_span_and_nan() {
        let y0 = Vector::from(vec![1.0]);
        assert!(validate_inputs(&Decay { k: 1.0 }, &y0, 1.0, 0.0).is_err());
        assert!(validate_inputs(&Decay { k: 1.0 }, &y0, 0.0, f64::NAN).is_err());
        let bad = Vector::from(vec![f64::NAN]);
        assert!(matches!(
            validate_inputs(&Decay { k: 1.0 }, &bad, 0.0, 1.0),
            Err(OdeError::NonFiniteState { .. })
        ));
    }

    #[test]
    fn reference_to_system_also_implements_trait() {
        fn takes_system<S: OdeSystem>(s: &S) -> usize {
            s.dim()
        }
        let decay = Decay { k: 1.0 };
        assert_eq!(takes_system(&&decay), 1);
    }

    #[test]
    fn project_default_is_noop_and_logistic_clamps() {
        let mut y = Vector::from(vec![1.7]);
        Decay { k: 1.0 }.project(0.0, &mut y);
        assert_eq!(y[0], 1.7);
        Logistic { r: 1.0 }.project(0.0, &mut y);
        assert_eq!(y[0], 1.0);
    }
}
